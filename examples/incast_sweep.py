#!/usr/bin/env python3
"""Incast sweep: goodput vs concurrent-flow count for chosen protocols.

The programmable version of the paper's Fig. 1 / Fig. 7 axes — pick
protocols, flow counts and repetition counts from the command line.

Run:  python examples/incast_sweep.py --protocols dctcp dctcp+ --flows 20 60 120 --rounds 10
"""

import argparse

from repro import IncastConfig, IncastWorkload, Simulator, build_two_tier, spec_for
from repro.metrics import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=["tcp", "dctcp", "dctcp+"],
        choices=["tcp", "dctcp", "dctcp+", "dctcp+norand"],
    )
    parser.add_argument("--flows", nargs="+", type=int, default=[10, 40, 80, 160])
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rows = []
    for n in args.flows:
        row: list = [n]
        for protocol in args.protocols:
            sim = Simulator(seed=args.seed)
            tree = build_two_tier(sim)
            workload = IncastWorkload(
                sim,
                tree,
                spec_for(protocol),
                IncastConfig(n_flows=n, n_rounds=args.rounds),
            )
            workload.run_to_completion()
            row.append(round(workload.mean_goodput_bps / 1e6, 1))
            row.append(workload.total_timeouts)
            workload.close()
        rows.append(row)
    headers = ["N"]
    for protocol in args.protocols:
        headers += [f"{protocol} Mbps", f"{protocol} TOs"]
    print(format_table(headers, rows, title="Incast goodput sweep"))


if __name__ == "__main__":
    main()
