#!/usr/bin/env python3
"""Partition/aggregate service under realistic datacenter traffic.

Models a web-search-style tier: Poisson query arrivals fan out over 200
persistent worker connections (2 KB responses each) while heavy-tailed
background flows share the fabric — the paper's Section VI.D benchmark at
a laptop-friendly scale.  Prints the query and background FCT statistics
(mean / 95th / 99th percentile), the metric Fig. 13 reports.

Run:  python examples/partition_aggregate.py [--queries 200] [--fanout 200]
"""

import argparse

from repro import BenchmarkConfig, BenchmarkWorkload, Simulator, build_two_tier
from repro.experiments.common import make_spec
from repro.metrics import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--background", type=int, default=200)
    parser.add_argument("--fanout", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rows = []
    for protocol in ("dctcp+", "dctcp"):
        sim = Simulator(seed=args.seed)
        tree = build_two_tier(sim)
        # Paper setup for this benchmark: RTO_min = 10 ms on both stacks.
        spec = make_spec(protocol, rto_min_ms=10.0, min_cwnd_mss=1.0)
        config = BenchmarkConfig(
            n_queries=args.queries,
            n_background=args.background,
            n_short_messages=args.background // 5,
            query_fanout=args.fanout,
            max_flow_bytes=4 * 1024 * 1024,
        )
        workload = BenchmarkWorkload(sim, tree, spec, config)
        workload.run_to_completion()
        for category in ("query", "background"):
            s = workload.fct_summary_ms(category)
            rows.append(
                [
                    protocol,
                    category,
                    s.count,
                    round(s.mean, 2),
                    round(s.p95, 2),
                    round(s.p99, 2),
                    workload.timeout_total(category),
                ]
            )
        workload.close()
    print(
        format_table(
            ["protocol", "category", "flows", "mean ms", "p95 ms", "p99 ms", "timeouts"],
            rows,
            title="Partition/aggregate benchmark (RTO_min = 10 ms)",
        )
    )
    print(
        "\nEach query is a micro-incast over the fan-out connections; DCTCP+\n"
        "pays hundreds of microseconds of pacing to avoid 10 ms timeouts —\n"
        "'slowing little quickens more'."
    )


if __name__ == "__main__":
    main()
