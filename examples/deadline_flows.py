#!/usr/bin/env python3
"""Deadline-aware transport: D²TCP and D²TCP⁺ under incast (Section VII).

The paper proposes coalescing the slow_time enhancement with D²TCP.  This
example runs a deadline-bound incast (every response must arrive within a
budget) and reports the missed-deadline fraction for DCTCP, DCTCP⁺, D²TCP
and D²TCP⁺ — showing that the enhancement, not just deadline awareness,
is what rescues tight deadlines at high fan-in (a 200 ms timeout blows
any tens-of-ms budget).

Run:  python examples/deadline_flows.py [--flows 60] [--deadline-ms 40]
"""

import argparse

from repro import IncastConfig, IncastWorkload, Simulator, build_two_tier, spec_for
from repro.metrics import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=60)
    parser.add_argument("--deadline-ms", type=float, default=40.0)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=5)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    deadline_ns = int(args.deadline_ms * 1e6)
    rows = []
    for protocol in ("dctcp", "d2tcp", "dctcp+", "d2tcp+"):
        sim = Simulator(seed=args.seed)
        tree = build_two_tier(sim)
        config = IncastConfig(
            n_flows=args.flows,
            n_rounds=args.rounds,
            flow_deadline_ns=deadline_ns,
        )
        workload = IncastWorkload(sim, tree, spec_for(protocol), config)
        workload.run_to_completion()
        rows.append(
            [
                protocol,
                round(workload.mean_goodput_bps / 1e6, 1),
                round(workload.mean_fct_ns / 1e6, 2),
                workload.total_missed_deadlines,
                f"{workload.missed_deadline_fraction * 100:.1f}%",
            ]
        )
        workload.close()
    print(
        format_table(
            ["protocol", "goodput (Mbps)", "mean FCT (ms)", "missed", "miss rate"],
            rows,
            title=(
                f"Deadline incast: N={args.flows}, "
                f"deadline={args.deadline_ms:.0f} ms per round"
            ),
        )
    )


if __name__ == "__main__":
    main()
