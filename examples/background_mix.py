#!/usr/bin/env python3
"""Short/long flow isolation: incast sharing a bottleneck with long flows.

Reproduces the paper's Fig. 10 scenario at example scale: two persistent
background flows stream through the aggregator's link while incast rounds
run.  Shows that DCTCP+ keeps its incast goodput near the no-background
level while the long flows still share the leftover bandwidth fairly.

Run:  python examples/background_mix.py [--flows 80] [--rounds 10]
"""

import argparse

from repro import (
    BackgroundTraffic,
    IncastConfig,
    IncastWorkload,
    Simulator,
    build_two_tier,
    spec_for,
)
from repro.metrics import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=80)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    return parser.parse_args()


def run_one(protocol: str, n_flows: int, rounds: int, seed: int, background: bool):
    sim = Simulator(seed=seed)
    tree = build_two_tier(sim)
    bg = None
    if background:
        bg = BackgroundTraffic(sim, tree, spec_for(protocol))
        bg.start()
    workload = IncastWorkload(
        sim, tree, spec_for(protocol), IncastConfig(n_flows=n_flows, n_rounds=rounds)
    )
    workload.run_to_completion()
    goodput = workload.mean_goodput_bps / 1e6
    fct = workload.mean_fct_ns / 1e6
    long_tput = bg.mean_throughput_bps() / 1e6 if bg else 0.0
    if bg:
        bg.stop()
    workload.close()
    return goodput, fct, long_tput


def main() -> None:
    args = parse_args()
    rows = []
    for protocol in ("dctcp+", "dctcp", "tcp"):
        g0, f0, _ = run_one(protocol, args.flows, args.rounds, args.seed, background=False)
        g1, f1, lt = run_one(protocol, args.flows, args.rounds, args.seed, background=True)
        rows.append(
            [
                protocol,
                round(g0, 1),
                round(g1, 1),
                round(f0, 2),
                round(f1, 2),
                round(lt, 1),
            ]
        )
    print(
        format_table(
            [
                "protocol",
                "incast Mbps (no bg)",
                "incast Mbps (with bg)",
                "FCT ms (no bg)",
                "FCT ms (with bg)",
                "long-flow Mbps",
            ],
            rows,
            title=f"Incast (N={args.flows}) with 2 persistent background flows",
        )
    )


if __name__ == "__main__":
    main()
