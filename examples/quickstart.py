#!/usr/bin/env python3
"""Quickstart: run one incast experiment and compare DCTCP vs DCTCP+.

Builds the paper's two-tier testbed, points 80 concurrent response flows
at one aggregator (the regime where DCTCP collapses), and prints goodput,
flow-completion time and timeout counts for both protocols.

Run:  python examples/quickstart.py
"""

from repro import IncastConfig, IncastWorkload, Simulator, build_two_tier, spec_for
from repro.metrics import format_table

N_FLOWS = 80
ROUNDS = 15


def run_protocol(protocol: str) -> list:
    sim = Simulator(seed=7)
    tree = build_two_tier(sim)
    spec = spec_for(protocol)
    workload = IncastWorkload(
        sim, tree, spec, IncastConfig(n_flows=N_FLOWS, n_rounds=ROUNDS)
    )
    workload.run_to_completion()
    row = [
        spec.label,
        round(workload.mean_goodput_bps / 1e6, 1),
        round(workload.mean_fct_ns / 1e6, 2),
        workload.total_timeouts,
        sum(1 for r in workload.rounds if r.timeouts > 0),
    ]
    workload.close()
    return row


def main() -> None:
    print(f"Basic incast: {N_FLOWS} concurrent flows, 1 MB per round, {ROUNDS} rounds\n")
    rows = [run_protocol(p) for p in ("tcp", "dctcp", "dctcp+")]
    print(
        format_table(
            ["protocol", "goodput (Mbps)", "mean FCT (ms)", "timeouts", "bad rounds"],
            rows,
        )
    )
    print(
        "\nDCTCP+ regulates the sending interval once cwnd pins at its floor,\n"
        "so the fan-in burst no longer overflows the 128 KB switch buffer."
    )


if __name__ == "__main__":
    main()
