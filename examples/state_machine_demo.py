#!/usr/bin/env python3
"""Anatomy of the DCTCP+ state machine (Fig. 4 / Algorithm 1).

Drives a :class:`SlowTimeStateMachine` directly with a scripted sequence
of congestion signals and prints every transition, so you can see the
AIMD law without running a network: additive, randomized growth per
ECE/retrans event; multiplicative decay per clean period; return to
DCTCP_NORMAL once slow_time falls below threshold_T.

Run:  python examples/state_machine_demo.py
"""

import random

from repro import DctcpPlusConfig, SlowTimeStateMachine
from repro.sim.units import US


def main() -> None:
    config = DctcpPlusConfig(
        backoff_time_unit_ns=100 * US,
        divisor_factor=2.0,
        threshold_t_ns=25 * US,
        decay_interval_mode="fixed",
        decay_interval_ns=0,  # decay on every clean ACK, for readability
    )
    machine = SlowTimeStateMachine(config, random.Random(2015))

    script = (
        [("ECE", True)] * 6  # sustained congestion at the cwnd floor
        + [("clean", False)] * 2  # queue dips below K
        + [("ECE", True)] * 3  # congestion returns
        + [("clean", False)] * 8  # flow drains, recovery to NORMAL
    )

    print(f"{'event':>7} | {'state':<16} | slow_time (us)")
    print("-" * 45)
    now = 0
    for label, congested in script:
        if congested:
            machine.on_congestion_event()
        else:
            machine.on_clean_ack(now)
        now += 100_000  # one ACK per ~100 us
        print(f"{label:>7} | {machine.state.value:<16} | {machine.slow_time_ns / 1000:.1f}")

    print(
        f"\npeak slow_time: {machine.peak_slow_time_ns / 1000:.1f} us; "
        f"transitions to Inc/Des/Normal: "
        f"{machine.transitions_to_inc}/{machine.transitions_to_des}/{machine.transitions_to_normal}"
    )
    print(
        "\nEach ECE event adds random(backoff_time_unit) — different flows draw\n"
        "different increments, which is what desynchronizes the fan-in burst."
    )


if __name__ == "__main__":
    main()
