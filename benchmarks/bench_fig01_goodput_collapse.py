"""Bench: Fig. 1 — DCTCP/TCP goodput collapse vs concurrent flows."""

from repro.experiments.fig01_goodput_collapse import run


def test_fig1_goodput_collapse(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(10, 40, 60), rounds=8, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    rows = {row[0]: row for row in result.rows}
    benchmark.extra_info["table"] = result.to_csv()
    # Shape: DCTCP healthy at N=10, collapsed by N=60; TCP collapsed by N=40.
    assert rows[10][1] > 500  # DCTCP Mbps at N=10
    assert rows[60][1] < 200  # DCTCP collapsed
    assert rows[40][2] < 200  # TCP collapsed
