"""Ablation: backoff_time_unit (paper §V.D).

The paper advises the baseline RTT (~100 us): "neither to use the large
time unit since it could reduce the sending rate too much ... nor to use
the small time unit because it could not help relieve the severe
congestion".  We sweep the unit an order of magnitude in both directions
at a fan-in where DCTCP+ must work.
"""

import pytest

from repro.experiments.common import run_incast_batch, run_incast_point

N = 80
ROUNDS = 8
UNITS_US = (10, 100, 1000)


@pytest.mark.parametrize("unit_us", UNITS_US)
def test_backoff_unit(benchmark, unit_us):
    point = benchmark.pedantic(
        run_incast_point,
        args=("dctcp+", N),
        kwargs=dict(
            rounds=ROUNDS,
            seeds=(1,),
            plus_overrides={"backoff_time_unit_ns": unit_us * 1000},
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["goodput_mbps"] = point.goodput_mbps
    benchmark.extra_info["timeouts"] = point.timeouts
    assert point.goodput_mbps > 0


def test_baseline_rtt_unit_beats_tiny_unit(benchmark):
    def compare():
        return run_incast_batch(
            [
                dict(
                    protocol="dctcp+", n_flows=N, rounds=ROUNDS, seeds=(1,),
                    plus_overrides={"backoff_time_unit_ns": 5_000},
                ),
                dict(
                    protocol="dctcp+", n_flows=N, rounds=ROUNDS, seeds=(1,),
                    plus_overrides={"backoff_time_unit_ns": 100_000},
                ),
            ]
        )

    tiny, rtt = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["tiny_unit_mbps"] = tiny.goodput_mbps
    benchmark.extra_info["rtt_unit_mbps"] = rtt.goodput_mbps
    # A 5 us unit cannot relieve the fan-in congestion (paper's warning).
    assert rtt.goodput_mbps > tiny.goodput_mbps
