"""Extension bench: static per-port vs dynamically shared switch buffers.

The paper (and DCTCP before it) pins its analysis on *static* 128 KB
per-port buffers.  This bench quantifies how much of DCTCP's incast wall
is attributable to that choice by replaying the same synchronized burst
into a shared-pool switch.
"""

from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.net.shared_buffer import SharedBufferSwitch
from repro.net.switch import Switch
from repro.sim.engine import Simulator

BURST_PACKETS = 150  # 225 KB synchronized fan-in burst


def _drops(make_switch):
    sim = Simulator()
    switch = make_switch(sim)
    dst = Host(sim, "dst")
    dst.attach_link(Link(switch))
    port = switch.add_port(Link(dst))
    switch.add_route(dst.node_id, port)
    for i in range(BURST_PACKETS):
        port.send(make_data_packet(1, 0, dst.node_id, seq=i * 1460, payload_len=1460))
    sim.run_until_idle()
    return port.queue.dropped_packets + getattr(sim, "pool_drops", 0)


def test_static_vs_shared_buffer_burst(benchmark):
    def compare():
        static = _drops(lambda sim: Switch(sim, buffer_bytes=128 * 1024))
        shared = _drops(lambda sim: SharedBufferSwitch(sim, shared_pool_bytes=4 * 128 * 1024))
        return static, shared

    static, shared = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["static_drops"] = static
    benchmark.extra_info["shared_drops"] = shared
    # The same burst that tail-drops on a static port is absorbed by the
    # 4-port shared pool.
    assert static > 0
    assert shared == 0
