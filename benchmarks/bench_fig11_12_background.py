"""Bench: Fig. 11 & 12 — incast goodput/FCT with background long flows."""

from repro.experiments.fig11_12_background import run


def test_fig11_fig12_background_mix(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(40, 80), rounds=4, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    rows = {row[0]: row for row in result.rows}
    # With background traffic consuming buffer, DCTCP+ still beats DCTCP
    # and TCP on goodput and on FCT at high fan-in.
    assert rows[80][1] > rows[80][2]
    assert rows[80][1] > rows[80][3]
    assert rows[80][4] < rows[80][5]
