"""Bench: Fig. 14 — DCTCP+ convergence: initial-round overflow."""

from repro.experiments.fig14_initial_rounds import run


def test_fig14_initial_round_overflow(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_flows=50, bytes_per_flow=1024 * 1024, rounds=2),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    peaks = [row[1] for row in result.rows]
    # The first window(s) hit the buffer limit before slow_time converges...
    assert max(peaks[:4]) > 120.0
    # ...then the regulated queue stays clearly below it.
    steady = peaks[len(peaks) // 2 :]
    assert sum(steady) / len(steady) < 110.0
