"""Bench: Fig. 6 — partial DCTCP+ (no desynchronization)."""

from repro.experiments.fig06_partial_dctcp_plus import run


def test_fig6_partial_dctcp_plus(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(40, 80), rounds=8, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    rows = {row[0]: row for row in result.rows}
    # Partial DCTCP+ clears DCTCP's wall at N=80 (where DCTCP is collapsed).
    assert rows[80][1] > rows[80][2]
    assert rows[40][1] > 400
