"""Bench: Fig. 7 — full DCTCP+ vs DCTCP vs TCP (goodput + FCT)."""

from repro.experiments.fig07_full_dctcp_plus import run


def test_fig7_full_dctcp_plus(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(40, 80, 120), rounds=8, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    rows = {row[0]: row for row in result.rows}
    # DCTCP+ sustains high goodput while DCTCP/TCP hit the RTO floor.
    # Note: with footnote 3's 1 MSS floor our DCTCP's knee sits at ~95
    # flows (pipeline capacity / 1 MSS — see EXPERIMENTS.md), so the
    # collapse checks anchor at N=120.
    assert rows[80][1] > 400 and rows[120][1] > 400  # DCTCP+
    assert rows[120][2] < 200  # DCTCP collapsed
    assert rows[80][3] < 200   # TCP collapsed well before
    assert rows[120][4] < 100  # DCTCP+ FCT ms
    assert rows[120][5] > 100  # DCTCP FCT ms
