"""Bench: Table I — incapable state share and timeout taxonomy."""

from repro.experiments.table1_timeout_taxonomy import run
from repro.experiments.common import run_incast_point
from repro.metrics.cwnd_tracker import stack_state_shares


def test_table1_report(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(20, 40), rounds=8, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    assert len(result.rows) == 2


def test_table1_shape(benchmark):
    """The quantitative shape behind Table I at N=40."""

    def measure():
        point = run_incast_point("dctcp", 40, rounds=8, seeds=(1,))
        return stack_state_shares(point.flow_stats)

    shares = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cwnd2_ece1_share"] = shares.cwnd2_ece1_share
    benchmark.extra_info["timeout_share"] = shares.timeout_share
    benchmark.extra_info["floss_share"] = shares.floss_share
    # Paper N=40: the incapable state is common (50.2%) and timeouts exist
    # with both kinds present.
    assert shares.cwnd2_ece1_share > 0.10
    assert shares.timeout_share > 0.0
    assert 0.0 < shares.floss_share <= 1.0
