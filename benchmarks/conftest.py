"""Shared configuration for the reproduction benches.

Each bench regenerates one paper table/figure at a reduced scale (fewer
rounds/seeds/flow counts than the paper's 1000 repetitions) and records
the measured values in ``benchmark.extra_info`` so that
``pytest benchmarks/ --benchmark-only`` doubles as a results report.
Paper-scale runs go through ``python -m repro.experiments <id> --paper``.

Every simulation is deterministic given its seed, so a single measurement
round per bench is meaningful; we use ``benchmark.pedantic`` to avoid
re-running multi-second simulations five times.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
