"""Bench: Fig. 9 — CDF of the bottleneck queue occupancy."""

from repro.experiments.fig09_queue_cdf import run


def test_fig9_queue_cdf(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(50,), rounds=6, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    headers = result.headers
    plus_col = headers.index("dctcp+/N=50")
    by_kb = {row[0]: row for row in result.rows}
    # Valid CDFs: monotone in the threshold and closed at the buffer size.
    for col in range(1, len(headers)):
        probs = [row[col] for row in result.rows]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0
    # DCTCP+ keeps the regulated queue below ~96 KB for almost every
    # 100 us sample (the only excursions are the round-0 convergence
    # spike of Fig. 14).  Cross-protocol comparisons at low thresholds
    # are not meaningful here because collapsed protocols idle at zero
    # queue between RTOs; the drop-count comparison lives in
    # tests/test_integration.py.
    assert by_kb[96][plus_col] > 0.9
