"""Bench: Fig. 8 — DCTCP+ (200 ms RTO) vs DCTCP/TCP tuned to 10 ms RTO."""

from repro.experiments.fig08_rto_10ms import run


def test_fig8_rto_comparison(benchmark):
    # N=120: past DCTCP's collapse knee even with footnote 3's 1 MSS floor
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(120,), rounds=8, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    row = result.rows[0]
    plus, dctcp10, tcp10 = row[1], row[2], row[3]
    # The 10 ms RTO lifts DCTCP well above the 200 ms floor (~41 Mbps)...
    assert dctcp10 > 100
    # ...but DCTCP+ without any RTO tuning still wins.
    assert plus > dctcp10
    assert plus > tcp10
