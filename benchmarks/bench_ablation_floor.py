"""Ablation: cwnd floor 1 MSS vs 2 MSS (paper footnote 3).

The paper lowers the DCTCP+ floor to 1 MSS "for the smoother change of
the sending rate" and notes that doing the same for plain DCTCP does
*not* rescue it.  Both claims are checked here.
"""

from repro.experiments.common import run_incast_batch

N = 80
ROUNDS = 8


def test_floor_one_mss_for_plus(benchmark):
    def compare():
        return run_incast_batch(
            [
                dict(
                    protocol="dctcp+", n_flows=N, rounds=ROUNDS, seeds=(1,),
                    plus_overrides={"min_cwnd_mss": 1.0},
                ),
                dict(
                    protocol="dctcp+", n_flows=N, rounds=ROUNDS, seeds=(1,),
                    plus_overrides={"min_cwnd_mss": 2.0},
                ),
            ]
        )

    floor1, floor2 = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["floor1_mbps"] = floor1.goodput_mbps
    benchmark.extra_info["floor2_mbps"] = floor2.goodput_mbps
    assert floor1.goodput_mbps > 300


def test_floor_one_mss_shifts_but_does_not_remove_dctcp_collapse(benchmark):
    """Footnote 3's control, with our substrate's honest refinement: a
    1 MSS floor halves DCTCP's per-flow footprint, so its collapse knee
    moves from ~pipeline/2MSS (~47) to ~pipeline/1MSS (~95) — but beyond
    that the collapse is unchanged.  The window floor cannot rescue DCTCP,
    only postpone it (see EXPERIMENTS.md)."""

    def measure():
        return run_incast_batch(
            [
                dict(
                    protocol="dctcp", n_flows=80, rounds=ROUNDS, seeds=(1,),
                    min_cwnd_mss=1.0,
                ),
                dict(
                    protocol="dctcp", n_flows=120, rounds=ROUNDS, seeds=(1,),
                    min_cwnd_mss=1.0,
                ),
            ]
        )

    survives, collapses = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["floor1_n80_mbps"] = survives.goodput_mbps
    benchmark.extra_info["floor1_n120_mbps"] = collapses.goodput_mbps
    assert collapses.goodput_mbps < 200
    assert collapses.timeouts > 0
