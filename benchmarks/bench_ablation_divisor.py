"""Ablation: divisor_factor (paper §V.D).

"the divisor factor is suggested neither to be too big for the premature
recovery from the congestion state ... nor too conservative for retarding
sending rate regulation" — we sweep 1.25 / 2 / 8.
"""

import pytest

from repro.experiments.common import run_incast_point

N = 80
ROUNDS = 8


@pytest.mark.parametrize("divisor", (1.25, 2.0, 8.0))
def test_divisor_factor(benchmark, divisor):
    point = benchmark.pedantic(
        run_incast_point,
        args=("dctcp+", N),
        kwargs=dict(
            rounds=ROUNDS,
            seeds=(1,),
            plus_overrides={"divisor_factor": divisor},
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["goodput_mbps"] = point.goodput_mbps
    benchmark.extra_info["timeouts"] = point.timeouts
    benchmark.extra_info["fct_ms"] = point.fct_ms
    assert point.goodput_mbps > 0
