"""Bench: Fig. 2 — cwnd-size frequency distribution at rising fan-in."""

from repro.experiments.fig02_cwnd_distribution import run


def test_fig2_cwnd_distribution(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_values=(10, 40), rounds=8, seeds=(1,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    headers = result.headers
    dctcp40 = headers.index("dctcp/N=40")
    by_cwnd = {row[0]: row for row in result.rows}
    # Paper: at N=40, 60%+ of DCTCP transmissions happen at cwnd 1-2 MSS.
    low_mass = by_cwnd[1][dctcp40] + by_cwnd[2][dctcp40]
    assert low_mass > 0.6
    dctcp10 = headers.index("dctcp/N=10")
    low_mass_10 = by_cwnd[1][dctcp10] + by_cwnd[2][dctcp10]
    assert low_mass_10 < low_mass  # floor pinning grows with fan-in
