"""Ablation: the desynchronization mechanism (randomized backoff draws).

The paper's core second idea: without randomizing the slow_time
increments, synchronized senders keep bursting in lockstep (Fig. 6's
"partial DCTCP+").  This bench compares randomize on/off at the same
fan-in and reports the gap.
"""

from repro.experiments.common import run_incast_batch

N = 120
ROUNDS = 10


def test_desync_vs_lockstep(benchmark):
    def compare():
        return run_incast_batch(
            [
                dict(protocol="dctcp+", n_flows=N, rounds=ROUNDS, seeds=(1, 2)),
                dict(protocol="dctcp+norand", n_flows=N, rounds=ROUNDS, seeds=(1, 2)),
            ]
        )

    full, norand = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["randomized_mbps"] = full.goodput_mbps
    benchmark.extra_info["lockstep_mbps"] = norand.goodput_mbps
    benchmark.extra_info["randomized_timeouts"] = full.timeouts
    benchmark.extra_info["lockstep_timeouts"] = norand.timeouts
    # Both regulate the rate; the randomized variant must at least match
    # the lockstep one (the paper finds it strictly better past ~100 flows).
    assert full.goodput_mbps > 300
