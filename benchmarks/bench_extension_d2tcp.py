"""Extension bench (Section VII): D²TCP carrying the slow_time enhancement.

A deadline-bound incast at a fan-in where un-enhanced protocols take
200 ms timeouts: any timeout blows a 50 ms budget, so the enhancement —
not deadline gamma-correction alone — determines the miss rate.
"""

from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import spec_for

N = 80
ROUNDS = 8
DEADLINE_NS = 50_000_000  # 50 ms


def _run(protocol: str):
    sim = Simulator(seed=5)
    tree = build_two_tier(sim)
    wl = IncastWorkload(
        sim,
        tree,
        spec_for(protocol),
        IncastConfig(n_flows=N, n_rounds=ROUNDS, flow_deadline_ns=DEADLINE_NS),
    )
    wl.run_to_completion(max_events=200_000_000)
    return wl


def test_d2tcp_plus_meets_deadlines(benchmark):
    def compare():
        return {p: _run(p) for p in ("d2tcp", "d2tcp+")}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    for protocol, wl in results.items():
        benchmark.extra_info[f"{protocol}_miss_rate"] = wl.missed_deadline_fraction
        benchmark.extra_info[f"{protocol}_goodput_mbps"] = wl.mean_goodput_bps / 1e6
    # Un-enhanced D2TCP suffers DCTCP's incast timeouts -> missed
    # deadlines; the enhanced variant meets (nearly) all of its deadlines.
    assert results["d2tcp"].missed_deadline_fraction > 0.1
    assert results["d2tcp+"].missed_deadline_fraction < 0.05
    assert results["d2tcp+"].missed_deadline_fraction < results["d2tcp"].missed_deadline_fraction
