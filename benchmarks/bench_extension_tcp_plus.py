"""Extension bench (Section VII): the enhancement coalesced with plain TCP.

Without ECN the state machine only hears the loss channel, so TCP+ cannot
match DCTCP+; this bench records how much of the benefit survives.
"""

from repro.experiments.common import run_incast_batch

N = 40
ROUNDS = 8


def test_tcp_plus_vs_tcp(benchmark):
    def compare():
        return run_incast_batch(
            [
                dict(protocol="tcp", n_flows=N, rounds=ROUNDS, seeds=(1, 2)),
                dict(protocol="tcp+", n_flows=N, rounds=ROUNDS, seeds=(1, 2)),
            ]
        )

    tcp, tcp_plus = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["tcp_mbps"] = tcp.goodput_mbps
    benchmark.extra_info["tcp_plus_mbps"] = tcp_plus.goodput_mbps
    benchmark.extra_info["tcp_timeouts"] = tcp.timeouts
    benchmark.extra_info["tcp_plus_timeouts"] = tcp_plus.timeouts
    # The loss-channel enhancement must not hurt, and typically trims the
    # timeout count by pacing post-RTO recoveries.
    assert tcp_plus.goodput_mbps >= 0.8 * tcp.goodput_mbps
