"""Ablation: threshold_T — the unspecified Des->NORMAL exit guard.

DESIGN.md §6 flags threshold_T as a reproduction choice (the paper never
gives a value); this bench sweeps it to show results are not brittle in
its vicinity.
"""

import pytest

from repro.experiments.common import run_incast_point

N = 80
ROUNDS = 8


@pytest.mark.parametrize("threshold_us", (5, 25, 100))
def test_threshold_t(benchmark, threshold_us):
    point = benchmark.pedantic(
        run_incast_point,
        args=("dctcp+", N),
        kwargs=dict(
            rounds=ROUNDS,
            seeds=(1,),
            plus_overrides={"threshold_t_ns": threshold_us * 1000},
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["goodput_mbps"] = point.goodput_mbps
    benchmark.extra_info["timeouts"] = point.timeouts
    # The mechanism must keep working across a 20x threshold range.
    assert point.goodput_mbps > 300
