"""Micro-benchmarks of the simulation substrate itself.

These are true pytest-benchmark timing benches (multiple rounds): the
event-queue pump and the packet path are the hot loops every experiment
pays for, so regressions here show up as wall-clock multipliers on all
reproduction runs.
"""

from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import spec_for


def test_event_queue_pump(benchmark):
    """Schedule + dispatch 20k timer events."""

    def pump():
        sim = Simulator()
        for t in range(20_000):
            sim.schedule(t, _noop)
        sim.run_until_idle()
        return sim.events_processed

    processed = benchmark(pump)
    assert processed == 20_000


def _noop():
    pass


def test_packet_path_throughput(benchmark):
    """End-to-end incast round: packets/second through the full stack."""

    def one_round():
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), IncastConfig(n_flows=10, n_rounds=1))
        wl.run_to_completion(max_events=5_000_000)
        return sim.events_processed

    events = benchmark(one_round)
    assert events > 1000


def test_incast_n64_engine_throughput(benchmark):
    """The headline engine scenario: 64-flow DCTCP incast, 10 rounds.

    Mirrors ``python -m repro.bench``'s ``incast-dctcp-n64`` scenario (the
    one the PR-level >=1.3x speedup claim is measured on), via the same
    :func:`run_scenario` entry point the bench harness times.
    """
    from repro.bench import SCENARIOS
    from repro.exec.scenario import run_scenario

    spec = next(s for s in SCENARIOS if s.name == "incast-dctcp-n64").spec

    result = benchmark(lambda: run_scenario(spec))
    # Deterministic invariant (also pinned by BENCH_engine.json): a change
    # here is a behaviour change, not a performance change.
    assert result.events_processed == 98_679
