"""Bench: Fig. 13 — production-cluster benchmark FCT statistics."""

from repro.experiments.fig13_benchmark import run


def test_fig13_benchmark_traffic(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_queries=120, n_background=120, n_short=24, query_fanout=120),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.to_csv()
    by_key = {(row[0], row[1]): row for row in result.rows}
    plus = by_key[("query", "dctcp+")]
    dctcp = by_key[("query", "dctcp")]
    # DCTCP+ should not lose on mean query FCT, and takes fewer timeouts.
    assert plus[3] <= dctcp[3] * 1.15
    assert plus[6] <= dctcp[6]
    # Background traffic barely differs (< 35% at the mean).
    bg_plus = by_key[("background", "dctcp+")]
    bg_dctcp = by_key[("background", "dctcp")]
    assert abs(bg_plus[3] - bg_dctcp[3]) <= 0.35 * max(bg_plus[3], bg_dctcp[3])
