"""Golden JSONL trace for one small incast scenario.

Pins the *byte-exact* telemetry output of a tiny DCTCP+ incast: record
ordering, flow labelling (per-run ordinals, so the bytes are stable
across processes), field serialization and the JSONL framing.  Any
change to what the tracer emits — new record kinds, different subjects,
reordered hooks — shows up here as a diff against the committed file.

Regenerate on an intentional telemetry change with::

    PYTHONPATH=src python tests/regen_goldens.py --trace
"""

from __future__ import annotations

import os

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.telemetry import records_to_jsonl

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "trace_small_incast.jsonl")

#: The pinned scenario: small enough for a sub-second run and a reviewable
#: golden file, busy enough to emit marks, watermarks and slow_time records.
GOLDEN_SPEC = dict(protocol="dctcp+", n_flows=4, rounds=2, seed=2, trace=True)


def golden_trace_jsonl() -> str:
    result = run_scenario(ScenarioSpec.create(**GOLDEN_SPEC))
    return records_to_jsonl(result.trace_events)


def test_trace_matches_committed_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8", newline="") as fh:
        committed = fh.read()
    assert golden_trace_jsonl() == committed, (
        "telemetry output changed.  If intentional, regenerate with "
        "`PYTHONPATH=src python tests/regen_goldens.py --trace`."
    )
