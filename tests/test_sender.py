"""Controlled-ACK tests for the TCP New Reno sender.

Harness: the sender transmits into a dumbbell whose receiver side has no
registered endpoint (data is swallowed), and the test injects crafted
ACKs directly via ``sender.on_packet`` — full control over dupACK
sequences, ECE bits and timing.
"""

import pytest

from repro.net.packet import make_ack_packet
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.sender import TcpSender
from repro.tcp.timeouts import TimeoutKind
from repro.workloads.ids import next_flow_id

from .helpers import intern

MSS = 1460


def harness(total=20 * MSS, **cfg_overrides):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS, **cfg_overrides)
    flow = next_flow_id()
    sender = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow, cfg)
    sender.send(total)
    sim.run(until=sim.now + 1)  # let initial transmissions depart
    return sim, sender


def ack(sender, ack_seq, ece=False):
    pkt = make_ack_packet(sender.flow_id, sender.dst_node_id, sender.host.node_id, ack_seq, ece=ece)
    sender.on_packet(intern(sender.sim, pkt))


class TestWindowAndSending:
    def test_initial_window_limits_flight(self):
        sim, s = harness()
        assert s.snd_nxt == 2 * MSS  # init cwnd 2
        assert s.bytes_in_flight == 2 * MSS

    def test_slow_start_doubles_per_rtt(self):
        sim, s = harness()
        ack(s, MSS)
        ack(s, 2 * MSS)
        assert s.cwnd == 4 * MSS
        assert s.snd_nxt == 6 * MSS  # 4 in flight beyond snd_una=2MSS

    def test_congestion_avoidance_is_integer_stepped(self):
        sim, s = harness(init_ssthresh_mss=2.0)  # start in CA
        ack(s, MSS)
        assert s.cwnd == 2 * MSS  # not yet a full window's worth acked
        ack(s, 2 * MSS)
        assert s.cwnd == 3 * MSS  # one MSS step after cwnd bytes acked

    def test_rwnd_caps_cwnd(self):
        sim, s = harness(rwnd_bytes=3 * MSS)
        for i in range(1, 7):
            ack(s, i * MSS)
        assert s.cwnd <= 3 * MSS

    def test_effective_window_floor_one_segment(self):
        sim, s = harness()
        s.cwnd = 0.5 * MSS
        assert s.effective_window_bytes == MSS

    def test_send_rejects_nonpositive(self):
        sim, s = harness()
        with pytest.raises(ValueError):
            s.send(0)

    def test_partial_last_segment(self):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        cfg = TcpConfig(seed_rtt_ns=100 * US)
        s = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), cfg)
        s.send(MSS + 300)
        sim.run(until=1)
        assert s.snd_nxt == MSS + 300


class TestFastRetransmit:
    def test_third_dupack_triggers(self):
        sim, s = harness()
        before = s.stats.data_packets_sent
        for _ in range(3):
            ack(s, 0)
        assert s.stats.fast_retransmits == 1
        assert s.in_fast_recovery
        assert s.stats.retransmitted_packets == 1
        # retransmit plus any new data the inflated window (ssthresh + 3)
        # permits
        assert s.stats.data_packets_sent > before

    def test_two_dupacks_do_not_trigger(self):
        sim, s = harness()
        ack(s, 0)
        ack(s, 0)
        assert not s.in_fast_recovery

    def test_ssthresh_halves_flight(self):
        sim, s = harness()
        # grow the window first
        for i in range(1, 5):
            ack(s, i * MSS)
        flight = s.bytes_in_flight
        for _ in range(3):
            ack(s, 4 * MSS)
        assert s.ssthresh == pytest.approx(max((flight // 2) // MSS * MSS, 2 * MSS))

    def test_window_inflation_per_extra_dupack(self):
        sim, s = harness()
        for _ in range(3):
            ack(s, 0)
        cwnd_after_fr = s.cwnd
        ack(s, 0)
        assert s.cwnd == cwnd_after_fr + MSS

    def test_full_ack_exits_recovery_and_deflates(self):
        sim, s = harness()
        for _ in range(3):
            ack(s, 0)
        recover = s.recover
        ack(s, recover)
        assert not s.in_fast_recovery
        assert s.cwnd == s.ssthresh

    def test_partial_ack_retransmits_next_hole(self):
        sim, s = harness()
        ack(s, MSS)
        ack(s, 2 * MSS)  # cwnd now 4, snd_nxt 6*MSS
        for _ in range(3):
            ack(s, 2 * MSS)
        retx_before = s.stats.retransmitted_packets
        ack(s, 3 * MSS)  # partial: below recover point (6*MSS)
        assert s.in_fast_recovery
        assert s.stats.retransmitted_packets == retx_before + 1


class TestTimeout:
    def test_rto_fires_and_resets(self):
        sim, s = harness()
        sim.run(until=sim.now + 20 * MS)
        assert s.stats.timeout_count >= 1
        # after RTO: go-back-N from snd_una with cwnd = 1 MSS
        assert s.cwnd == 1 * MSS or s.stats.timeout_count > 1

    def test_floss_classification_when_silent(self):
        sim, s = harness()
        sim.run(until=sim.now + 20 * MS)
        kinds = {k for _, k in s.stats.timeouts}
        assert kinds == {TimeoutKind.FLOSS}

    def test_lack_classification_with_dupacks(self):
        sim, s = harness()
        ack(s, 0)  # one dupACK, not enough for fast retransmit
        sim.run(until=sim.now + 20 * MS)
        assert s.stats.timeouts[0][1] is TimeoutKind.LACK

    def test_backoff_doubles(self):
        sim, s = harness()
        sim.run(until=sim.now + 9 * MS)   # first RTO at ~5 ms
        assert s.stats.timeout_count == 1
        sim.run(until=sim.now + 12 * MS)  # second RTO needs ~10 ms more
        assert s.stats.timeout_count == 2
        t1, t2 = s.stats.timeouts[0][0], s.stats.timeouts[1][0]
        assert t2 - t1 >= 2 * (5 * MS) - 1 * MS

    def test_ack_resets_backoff(self):
        sim, s = harness()
        sim.run(until=sim.now + 6 * MS)
        assert s.rto_backoff == 1
        ack(s, MSS)
        assert s.rto_backoff == 0

    def test_in_rto_recovery_flag(self):
        sim, s = harness()
        high_water = s.snd_nxt
        sim.run(until=sim.now + 6 * MS)
        assert s.in_rto_recovery
        ack(s, high_water)
        assert not s.in_rto_recovery


class TestRttSampling:
    def test_clean_segments_sampled(self):
        sim, s = harness()
        before = s.rtt.samples
        ack(s, MSS)
        assert s.rtt.samples == before + 1

    def test_karn_skips_retransmitted(self):
        sim, s = harness()
        sim.run(until=sim.now + 6 * MS)  # RTO -> everything marked retransmit
        before = s.rtt.samples
        ack(s, MSS)
        assert s.rtt.samples == before  # no sample from a retransmitted segment


class TestCompletionAndClose:
    def test_completion_callback_and_timer_stop(self):
        done = []
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS)
        s = TcpSender(
            sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), cfg,
            on_complete=done.append,
        )
        s.send(2 * MSS)
        sim.run(until=1)
        ack(s, 2 * MSS)
        assert done == [s]
        assert s.completed
        sim.run_until_idle()
        assert s.stats.timeout_count == 0  # timer was cancelled

    def test_close_cancels_timers_and_unregisters(self):
        sim, s = harness()
        s.close()
        sim.run_until_idle()
        assert s.stats.timeout_count == 0
        with pytest.raises(RuntimeError):
            s.send(100)

    def test_send_after_completion_restarts(self):
        sim, s = harness(total=2 * MSS)
        ack(s, 2 * MSS)
        assert s.completed
        s.send(MSS)
        assert not s.completed
        sim.run(until=sim.now + 1)
        assert s.snd_nxt == 3 * MSS


class TestCwndRestart:
    def test_idle_decay(self):
        sim, s = harness(total=4 * MSS)
        for i in range(1, 5):
            ack(s, i * MSS)
        assert s.completed
        cwnd_before = s.cwnd
        assert cwnd_before >= 4 * MSS
        # idle far beyond the RTO, then new data
        sim.run(until=sim.now + 500 * MS)
        s.send(2 * MSS)
        assert s.cwnd <= TcpConfig().init_cwnd_bytes

    def test_no_decay_when_active(self):
        sim, s = harness(total=4 * MSS)
        for i in range(1, 3):
            ack(s, i * MSS)
        cwnd_before = s.cwnd
        s.send(MSS)  # no idle gap
        assert s.cwnd == cwnd_before

    def test_disabled_by_config(self):
        sim, s = harness(total=4 * MSS, slow_start_after_idle=False)
        for i in range(1, 5):
            ack(s, i * MSS)
        cwnd_before = s.cwnd
        sim.run(until=sim.now + 500 * MS)
        s.send(2 * MSS)
        assert s.cwnd == cwnd_before


class TestSnapshots:
    def test_send_snapshots_record_cwnd_and_ece(self):
        sim, s = harness()
        assert (2, False) in s.stats.send_snapshots
        ack(s, MSS, ece=True)
        assert s.last_ack_ece
        # next transmissions are recorded with ECE pending
        assert any(key[1] for key in s.stats.send_snapshots)
