"""Tests for the DCTCP+ slow_time state machine (Fig. 4 / Algorithm 1)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.config import DctcpPlusConfig
from repro.core.state_machine import SlowTimeStateMachine
from repro.core.states import DctcpPlusState
from repro.sim.units import US


def make(randomize=True, divisor=2.0, threshold=25 * US, unit=100 * US,
         decay_interval=0, decay_mode="fixed", seed=1):
    cfg = DctcpPlusConfig(
        backoff_time_unit_ns=unit,
        divisor_factor=divisor,
        threshold_t_ns=threshold,
        randomize=randomize,
        decay_interval_ns=decay_interval,
        decay_interval_mode=decay_mode,
    )
    return SlowTimeStateMachine(cfg, random.Random(seed))


class TestConfigValidation:
    def test_rejects_bad_unit(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(backoff_time_unit_ns=0)

    def test_rejects_divisor_at_or_below_one(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(divisor_factor=1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(threshold_t_ns=-1)

    def test_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(min_cwnd_mss=0)

    def test_rejects_bad_unit_mode(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(backoff_unit_mode="wrong")

    def test_rejects_negative_decay_interval(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(decay_interval_ns=-1)

    def test_rejects_bad_decay_interval_mode(self):
        with pytest.raises(ValueError):
            DctcpPlusConfig(decay_interval_mode="wrong")

    def test_with_overrides(self):
        cfg = DctcpPlusConfig().with_overrides(divisor_factor=4.0)
        assert cfg.divisor_factor == 4.0


class TestTransitions:
    def test_starts_normal(self):
        m = make()
        assert m.state is DctcpPlusState.NORMAL
        assert m.slow_time_ns == 0

    def test_normal_to_inc_draws_initial_backoff(self):
        m = make()
        m.on_congestion_event()
        assert m.state is DctcpPlusState.TIME_INC
        assert 0 < m.slow_time_ns <= 100 * US

    def test_inc_self_loop_accumulates(self):
        m = make(randomize=False)
        for _ in range(3):
            m.on_congestion_event()
        assert m.slow_time_ns == 3 * 100 * US

    def test_inc_to_des_divides(self):
        m = make(randomize=False)
        m.on_congestion_event()
        m.on_congestion_event()  # 200 us
        m.on_clean_ack(0)
        assert m.state is DctcpPlusState.TIME_DES
        assert m.slow_time_ns == 100 * US

    def test_des_to_inc_on_congestion(self):
        m = make(randomize=False)
        m.on_congestion_event()
        m.on_clean_ack(0)
        m.on_congestion_event()
        assert m.state is DctcpPlusState.TIME_INC

    def test_des_keeps_dividing_above_threshold(self):
        m = make(randomize=False, unit=400 * US, threshold=25 * US)
        m.on_congestion_event()  # 400 us
        m.on_clean_ack(0)        # Des, 200 us
        m.on_clean_ack(1)        # 100 us
        m.on_clean_ack(2)        # 50 us
        assert m.state is DctcpPlusState.TIME_DES
        assert m.slow_time_ns == 50 * US

    def test_des_exits_to_normal_below_threshold(self):
        m = make(randomize=False, unit=40 * US, threshold=25 * US)
        m.on_congestion_event()  # 40 us
        m.on_clean_ack(0)        # Des, 20 us <= threshold
        m.on_clean_ack(1)        # exit
        assert m.state is DctcpPlusState.NORMAL
        assert m.slow_time_ns == 0

    def test_clean_ack_in_normal_is_noop(self):
        m = make()
        m.on_clean_ack(0)
        assert m.state is DctcpPlusState.NORMAL

    def test_transition_counters(self):
        m = make(randomize=False, unit=40 * US)
        m.on_congestion_event()
        m.on_clean_ack(0)
        m.on_clean_ack(1)
        assert m.transitions_to_inc == 1
        assert m.transitions_to_des == 1
        assert m.transitions_to_normal == 1

    def test_peak_tracking(self):
        m = make(randomize=False)
        for _ in range(5):
            m.on_congestion_event()
        m.on_clean_ack(0)
        assert m.peak_slow_time_ns == 5 * 100 * US


class TestRandomization:
    def test_randomized_draws_vary(self):
        m = make(randomize=True)
        draws = set()
        for _ in range(20):
            before = m.slow_time_ns
            m.on_congestion_event()
            draws.add(m.slow_time_ns - before)
        assert len(draws) > 5

    def test_norand_is_deterministic_unit(self):
        m = make(randomize=False)
        m.on_congestion_event()
        assert m.slow_time_ns == 100 * US

    def test_two_machines_desynchronize(self):
        a, b = make(seed=1), make(seed=2)
        for _ in range(5):
            a.on_congestion_event()
            b.on_congestion_event()
        assert a.slow_time_ns != b.slow_time_ns


class TestDecayPacing:
    def test_fixed_interval_gates_decay(self):
        m = make(randomize=False, decay_interval=100 * US)
        m.on_congestion_event()
        m.on_congestion_event()  # 200 us
        m.on_clean_ack(1_000_000)  # first decay allowed
        level = m.slow_time_ns
        m.on_clean_ack(1_000_000 + 50 * US)  # inside interval: absorbed
        assert m.slow_time_ns == level
        m.on_clean_ack(1_000_000 + 150 * US)  # past interval: decays
        assert m.slow_time_ns < level

    def test_srtt_mode_uses_unit_source(self):
        m = make(randomize=False, decay_interval=0, decay_mode="srtt")
        m.unit_source = lambda: 500 * US
        m.on_congestion_event()
        m.on_congestion_event()
        m.on_clean_ack(10_000_000)
        level = m.slow_time_ns
        m.on_clean_ack(10_000_000 + 400 * US)  # < srtt: absorbed
        assert m.slow_time_ns == level

    def test_unit_source_scales_increments(self):
        m = make(randomize=False)
        m.unit_source = lambda: 300 * US
        m.on_congestion_event()
        assert m.slow_time_ns == 300 * US

    def test_unit_source_never_shrinks_unit(self):
        m = make(randomize=False, unit=100 * US)
        m.unit_source = lambda: 10 * US  # below the configured floor
        m.on_congestion_event()
        assert m.slow_time_ns == 100 * US


class TestInvariants:
    @given(st.lists(st.booleans(), max_size=300))
    def test_slow_time_nonnegative_and_state_consistent(self, events):
        m = make(seed=3)
        now = 0
        for congested in events:
            if congested:
                m.on_congestion_event()
            else:
                m.on_clean_ack(now)
            now += 50 * US
            assert m.slow_time_ns >= 0
            if m.state is DctcpPlusState.NORMAL:
                assert m.slow_time_ns == 0
            assert m.peak_slow_time_ns >= m.slow_time_ns

    @given(st.integers(min_value=1, max_value=100))
    def test_pure_congestion_monotone_growth(self, n):
        m = make(seed=5)
        last = 0
        for _ in range(n):
            m.on_congestion_event()
            assert m.slow_time_ns > last
            last = m.slow_time_ns

    def test_pacing_active_flag(self):
        m = make()
        assert not m.pacing_active
        m.on_congestion_event()
        assert m.pacing_active
