"""Tests for the repro.validate invariant checker."""

import pytest

from repro.core.dctcp_plus import DctcpPlusSender
from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.net.shared_buffer import SharedBufferSwitch
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.validate import InvariantChecker, InvariantViolation
from repro.workloads.ids import next_flow_id

from .helpers import intern

MSS = 1460


def small_spec(**kwargs):
    defaults = dict(
        protocol="dctcp+",
        n_flows=6,
        rounds=2,
        seed=5,
        incast_overrides={"total_bytes": 128 * 1024},
    )
    defaults.update(kwargs)
    return ScenarioSpec.create(**defaults)


class TestOptIn:
    def test_disabled_by_default(self):
        assert Simulator().checker is None

    def test_explicit_enable(self):
        sim = Simulator(validate=True)
        assert isinstance(sim.checker, InvariantChecker)

    def test_explicit_disable_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert Simulator(validate=False).checker is None

    def test_env_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert Simulator().checker is not None
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert Simulator().checker is None

    def test_components_register(self):
        sim = Simulator(seed=1, validate=True)
        tree = build_star(sim, n_senders=2)
        flow = next_flow_id()
        TcpReceiver(sim, tree.aggregator, tree.servers[0].node_id, flow, expected_bytes=MSS)
        TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow)
        checker = sim.checker
        # 3 switch ports + 3 host NICs
        assert len(checker._ports) == 6
        assert len(checker._queues) == 6
        assert len(checker._senders) == 1
        assert flow in checker._receivers


class TestResultEquality:
    def test_validated_run_identical_to_unvalidated(self):
        spec = small_spec()
        validated = run_scenario(spec, validate=True)
        plain = run_scenario(spec, validate=False)
        a, b = validated.to_dict(), plain.to_dict()
        a.pop("wall_time_s")
        b.pop("wall_time_s")
        assert a == b

    def test_verify_all_reports_components(self):
        sim = Simulator(seed=1, validate=True)
        build_star(sim, n_senders=2)
        summary = sim.checker.verify_all()
        assert summary["ports"] == 6
        assert summary["sweeps"] >= 1


class TestDetection:
    """Seeded corruption of component state must raise at the next sweep."""

    def run_corrupted(self, corrupt, **spec_kwargs):
        spec = small_spec(**spec_kwargs)
        sim = Simulator(seed=spec.seed, validate=True)
        from repro.net.topology import build_two_tier
        from repro.workloads.incast import IncastWorkload

        tree = build_two_tier(sim, spec.topology_params())
        workload = IncastWorkload(sim, tree, spec.protocol_spec(), spec.incast_config())
        sim.schedule(50 * US, corrupt, tree)
        workload.run_to_completion(max_events=spec.max_events)
        sim.checker.verify_all()

    def test_catches_packet_conservation_break(self):
        def corrupt(tree):
            tree.bottleneck_port.queue.enqueued_packets += 1

        with pytest.raises(InvariantViolation, match="packet conservation"):
            self.run_corrupted(corrupt)

    def test_catches_byte_leak(self):
        def corrupt(tree):
            tree.bottleneck_port.queue.occupancy_bytes -= 7

        with pytest.raises(InvariantViolation, match="byte conservation"):
            self.run_corrupted(corrupt)

    def test_catches_drop_miscount(self):
        def corrupt(tree):
            tree.bottleneck_port.queue.dropped_packets += 1

        with pytest.raises(InvariantViolation, match="drop counter mismatch"):
            self.run_corrupted(corrupt)

    def test_catches_pool_drift(self):
        def corrupt(tree):
            tree.root._pool_occupancy += 1460

        with pytest.raises(InvariantViolation, match="pool occupancy"):
            self.run_corrupted(corrupt, topo={"shared_pool_bytes": 256 * 1024})

    def test_catches_flow_sequence_corruption(self):
        spec = small_spec()
        sim = Simulator(seed=spec.seed, validate=True)
        from repro.net.topology import build_two_tier
        from repro.workloads.incast import IncastWorkload

        tree = build_two_tier(sim, spec.topology_params())
        workload = IncastWorkload(sim, tree, spec.protocol_spec(), spec.incast_config())

        def corrupt():
            workload.senders[0].snd_una = workload.senders[0].snd_nxt + MSS

        sim.schedule(200 * US, corrupt)
        with pytest.raises(InvariantViolation):
            workload.run_to_completion(max_events=spec.max_events)

    def test_catches_dispatch_time_regression(self):
        sim = Simulator(validate=True)
        sim.checker.check_dispatch_time(100)
        with pytest.raises(InvariantViolation, match="backwards"):
            sim.checker.check_dispatch_time(99)


class TestMachineObserver:
    def test_time_inc_entry_above_floor_rejected(self):
        sim = Simulator(seed=1, validate=True)
        tree = build_star(sim, n_senders=1)
        sender = DctcpPlusSender(
            sim,
            tree.servers[0],
            tree.aggregator.node_id,
            next_flow_id(),
            config=TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=2 * MS),
        )
        assert not sender._cwnd_at_floor  # init cwnd is above the floor
        with pytest.raises(InvariantViolation, match="DCTCP_Time_Inc"):
            sender.machine.on_congestion_event()

    def test_normal_operation_never_trips_observer(self):
        # A full DCTCP+ scenario (with congestion) under validation: the
        # sender's own guard means the observer never fires spuriously.
        run_scenario(small_spec(n_flows=12), validate=True)


class TestSharedPoolUnderValidation:
    def test_pool_returns_to_zero_after_drain(self):
        sim = Simulator(seed=1, validate=True)
        switch = SharedBufferSwitch(sim, shared_pool_bytes=64 * 1024)
        a, b = Host(sim, "a"), Host(sim, "b")
        a.attach_link(Link(switch))
        b.attach_link(Link(switch))
        pa = switch.add_port(Link(a))
        switch.add_route(a.node_id, pa)
        for i in range(20):
            pa.send(intern(sim, make_data_packet(1, b.node_id, a.node_id, seq=i * MSS, payload_len=MSS)))
        assert switch.pool_occupancy_bytes > 0
        sim.run_until_idle()
        assert switch.pool_occupancy_bytes == 0
