"""Tests for TcpConfig validation and derived values."""

import pytest

from repro.tcp.config import TcpConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = TcpConfig()
        assert cfg.mss == 1460
        assert cfg.min_cwnd_mss == 2.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mss", 0),
            ("mss", -1),
            ("init_cwnd_mss", 0),
            ("min_cwnd_mss", 0),
            ("dctcp_g", 0.0),
            ("dctcp_g", 1.5),
            ("dupack_threshold", 0),
            ("rto_min_ns", 0),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            TcpConfig(**{field: value})

    def test_rejects_rto_max_below_min(self):
        with pytest.raises(ValueError):
            TcpConfig(rto_min_ns=1000, rto_max_ns=500)


class TestDerived:
    def test_byte_views(self):
        cfg = TcpConfig(mss=1000, init_cwnd_mss=3, min_cwnd_mss=2, init_ssthresh_mss=10)
        assert cfg.init_cwnd_bytes == 3000
        assert cfg.min_cwnd_bytes == 2000
        assert cfg.init_ssthresh_bytes == 10_000
        assert cfg.timeout_cwnd_bytes == 1000

    def test_with_overrides_copies(self):
        cfg = TcpConfig()
        derived = cfg.with_overrides(rto_min_ns=10_000_000)
        assert derived.rto_min_ns == 10_000_000
        assert cfg.rto_min_ns == 200_000_000
        assert derived.mss == cfg.mss

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            TcpConfig().with_overrides(mss=-5)
