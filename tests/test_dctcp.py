"""Tests for the DCTCP sender (alpha estimation, per-window ECN reaction)."""

import pytest

from repro.net.packet import make_ack_packet
from repro.net.topology import TopologyParams, build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.dctcp import DctcpSender
from repro.tcp.receiver import TcpReceiver
from repro.workloads.ids import next_flow_id

from .helpers import intern

MSS = 1460


def harness(total=40 * MSS, **cfg_overrides):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS, **cfg_overrides)
    s = DctcpSender(sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), cfg)
    s.send(total)
    sim.run(until=1)
    return sim, s


def ack(sender, ack_seq, ece=False):
    sender.on_packet(
        intern(
            sender.sim,
            make_ack_packet(sender.flow_id, sender.dst_node_id, sender.host.node_id, ack_seq, ece=ece),
        )
    )


class TestEcnCapability:
    def test_forces_ecn_on(self):
        sim, s = harness()
        assert s.config.ecn_enabled

    def test_alpha_initial(self):
        sim, s = harness()
        assert s.alpha == pytest.approx(1.0)


class TestAlphaEstimation:
    def test_alpha_decays_without_marks(self):
        sim, s = harness()
        g = s.config.dctcp_g
        ack(s, MSS)
        ack(s, 2 * MSS)  # first window boundary crossed on the first ack
        expected = (1 - g) ** 2  # two window updates with F=0
        assert s.alpha == pytest.approx(expected, rel=1e-6)

    def test_alpha_tracks_marked_fraction(self):
        sim, s = harness()
        # first window (2 MSS): one marked, one clean -> F = 0.5
        s.alpha = 0.0
        ack(s, MSS, ece=False)  # window [0, win_end=0) boundary hit immediately
        # reset bookkeeping state for a clean measurement window
        s._win_end_seq = s.snd_nxt
        start = s.snd_una
        target = s._win_end_seq
        marked = 0
        seq = start
        while seq < target:
            nxt = min(seq + MSS, target)
            ece = marked == 0
            if ece:
                marked += 1
            ack(s, nxt, ece=ece)
            seq = nxt
        g = s.config.dctcp_g
        n_segs = (target - start + MSS - 1) // MSS
        expected_fraction = MSS * 1.0 / (target - start)
        assert s.alpha == pytest.approx(g * expected_fraction, rel=1e-6)

    def test_fully_marked_window_drives_alpha_up(self):
        sim, s = harness()
        s.alpha = 0.0
        for i in range(1, 20):
            ack(s, i * MSS, ece=True)
        assert s.alpha > 0.3


class TestWindowReduction:
    def test_single_reduction_per_window(self):
        sim, s = harness()
        # grow to a known window
        for i in range(1, 5):
            ack(s, i * MSS)
        s.alpha = 1.0
        cwnd_before = s.cwnd
        reductions_before = s.ecn_reductions
        # mark one ack inside the window; the reduction lands at the boundary
        boundary = s._win_end_seq
        ack(s, min(boundary, s.snd_una + MSS), ece=True)
        while s.snd_una < boundary:
            ack(s, min(boundary, s.snd_una + MSS))
        assert s.ecn_reductions == reductions_before + 1

    def test_reduction_magnitude_quantized(self):
        sim, s = harness()
        for i in range(1, 7):
            ack(s, i * MSS)
        s.alpha = 0.5
        s._win_saw_ece = True
        s._win_bytes_acked = 1
        s._win_end_seq = s.snd_una  # force boundary on next ack
        cwnd_before = s.cwnd
        ack(s, s.snd_una + MSS, ece=False)
        # cwnd * (1 - 0.25) floored to MSS multiple
        expected = (int(cwnd_before * 0.75) // MSS) * MSS
        assert s.cwnd == max(expected, s.config.min_cwnd_bytes)

    def test_floor_clamp_and_incapable_counter(self):
        sim, s = harness()
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes  # CA regime: no slow-start growth
        s.alpha = 1.0
        s._win_saw_ece = True
        s._win_bytes_acked = 1
        s._win_end_seq = s.snd_una
        before = s.floor_limited_reductions
        ack(s, s.snd_una + MSS, ece=True)
        assert s.cwnd == s.config.min_cwnd_bytes
        assert s.floor_limited_reductions == before + 1

    def test_floor_one_mss_config(self):
        sim, s = harness(min_cwnd_mss=1.0)
        s.cwnd = 2 * MSS
        s.alpha = 1.0
        s._win_saw_ece = True
        s._win_bytes_acked = 1
        s._win_end_seq = s.snd_una
        ack(s, s.snd_una + MSS, ece=True)
        # 2 * (1 - 0.5) = 1 MSS: reachable only with the lowered floor
        assert s.cwnd == 1 * MSS

    def test_no_reduction_without_marks(self):
        sim, s = harness()
        for i in range(1, 10):
            ack(s, i * MSS)
        assert s.ecn_reductions == 0


class TestLossBehaviour:
    def test_timeout_resets_marking_window(self):
        sim, s = harness()
        ack(s, MSS, ece=True)
        sim.run(until=sim.now + 20 * MS)  # force RTO
        assert s.stats.timeout_count >= 1
        assert s._win_bytes_acked == 0
        assert not s._win_saw_ece

    def test_inherits_fast_retransmit(self):
        sim, s = harness()
        for _ in range(3):
            ack(s, 0)
        assert s.in_fast_recovery


class TestEndToEndMarking:
    def test_dctcp_keeps_queue_near_threshold(self):
        """Two DCTCP flows into one port stabilize the shared queue near K,
        while two TCP flows fill the whole buffer (2:1 fan-in is needed —
        a single flow at equal line rates never builds a queue)."""
        from repro.tcp.sender import TcpSender

        occupancies = {}
        for cls in (DctcpSender, TcpSender):
            sim = Simulator()
            params = TopologyParams(buffer_bytes=64 * 1024, ecn_threshold_bytes=16 * 1024)
            tree = build_star(sim, n_senders=2, params=params)
            senders = []
            for i in range(2):
                flow = next_flow_id()
                TcpReceiver(
                    sim, tree.aggregator, tree.servers[i].node_id, flow,
                    expected_bytes=2_000_000,
                )
                cfg = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns())
                s = cls(sim, tree.servers[i], tree.aggregator.node_id, flow, cfg)
                s.send(2_000_000)
                senders.append(s)
            samples = []

            def sample():
                samples.append(tree.bottleneck_port.backlog_bytes)
                if not all(s.completed for s in senders):
                    sim.schedule(100_000, sample)

            sim.schedule(1_000_000, sample)
            sim.run(max_events=5_000_000)
            assert all(s.completed for s in senders)
            occupancies[cls.__name__] = {
                "mean": sum(samples) / max(1, len(samples)),
                "peak": max(samples),
                "drops": tree.bottleneck_port.queue.dropped_packets,
            }
        dctcp, tcp = occupancies["DctcpSender"], occupancies["TcpSender"]
        # ECN keeps DCTCP lossless with the queue regulated near K...
        assert dctcp["drops"] == 0
        assert dctcp["mean"] < 40 * 1024
        assert dctcp["peak"] < 48 * 1024
        # ...while TCP (no ECN) fills the buffer until it drops.
        assert tcp["drops"] > 0
        assert tcp["peak"] > 56 * 1024
