"""Lint-style test: determinism hygiene for the simulator source tree.

Every result the repo produces must be a pure function of (spec, seed):
that is what makes the golden digests, the result cache, and the fuzzer's
rerun-differential sound.  Wall-clock reads and unseeded randomness break
that silently, so this test forbids them at the AST level across all of
``src/repro``:

* ``time.time()`` / ``time.time_ns()`` — wall clock.  (``time.monotonic``
  and ``time.perf_counter`` are fine: they only ever feed wall-time
  *metadata* such as ``wall_time_s`` and bench timings, never results.)
* ``datetime.now()`` / ``datetime.utcnow()`` in any spelling.
* The module-level ``random.<fn>()`` API (``random.random``,
  ``random.randint``, ...) — it draws from the shared unseeded global
  generator.  Constructing a **seeded** ``random.Random(seed)`` instance
  is allowed anywhere; ``random.Random()`` without a seed is not.

``sim/rng.py`` is the one designated owner of RNG construction and is
exempt from the module-level-API rule (not from the wall-clock rules).
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: the one module allowed to touch the ``random`` module API directly
RNG_OWNER = SRC / "sim" / "rng.py"

WALLCLOCK_TIME_FNS = {"time", "time_ns"}
WALLCLOCK_DATETIME_FNS = {"now", "utcnow", "today"}


def _dotted(node):
    """Flatten an attribute chain like ``datetime.datetime.now`` to a list."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _violations(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if not parts:
            continue
        head, tail = parts[0], parts[-1]
        shown = path.relative_to(SRC.parent) if path.is_relative_to(SRC.parent) else path
        where = f"{shown}:{node.lineno}"
        if head == "time" and tail in WALLCLOCK_TIME_FNS and len(parts) == 2:
            found.append(f"{where}: wall-clock read time.{tail}()")
        elif head == "datetime" and tail in WALLCLOCK_DATETIME_FNS:
            found.append(f"{where}: wall-clock read {'.'.join(parts)}()")
        elif head == "random" and len(parts) == 2:
            if tail == "Random":
                if not node.args and not node.keywords:
                    found.append(f"{where}: unseeded random.Random()")
            elif path != RNG_OWNER:
                found.append(f"{where}: module-level random.{tail}() "
                             "(unseeded global generator)")
    return found


def all_source_files():
    files = sorted(SRC.rglob("*.py"))
    assert len(files) > 20  # the glob is really covering the tree
    return files


@pytest.mark.parametrize("path", all_source_files(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_wallclock_or_unseeded_randomness(path):
    violations = _violations(path)
    assert not violations, "\n".join(violations)


class TestLintDetects:
    """The lint itself must catch what it claims to (meta-tests)."""

    def _check(self, code, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(code)
        # place it logically outside the rng owner
        return _violations(f)

    def test_flags_time_time(self, tmp_path):
        assert self._check("import time\nx = time.time()\n", tmp_path)

    def test_flags_datetime_now(self, tmp_path):
        assert self._check(
            "import datetime\nx = datetime.datetime.now()\n", tmp_path
        )

    def test_flags_global_random(self, tmp_path):
        assert self._check("import random\nx = random.randint(0, 5)\n", tmp_path)

    def test_flags_unseeded_random_instance(self, tmp_path):
        assert self._check("import random\nr = random.Random()\n", tmp_path)

    def test_allows_seeded_random_instance(self, tmp_path):
        assert not self._check("import random\nr = random.Random(42)\n", tmp_path)

    def test_allows_monotonic_and_perf_counter(self, tmp_path):
        assert not self._check(
            "import time\na = time.monotonic()\nb = time.perf_counter()\n", tmp_path
        )
