"""Tests for the topology x workload matrix experiment."""

from repro.experiments import topo_matrix
from repro.experiments.registry import (
    experiment_ids,
    get_runner,
    quick_scale_kwargs,
    supports_sweep_kwargs,
)


class TestRegistration:
    def test_registered(self):
        assert "topo-matrix" in experiment_ids()
        assert get_runner("topo-matrix") is topo_matrix.run

    def test_opts_out_of_generic_sweep_kwargs(self):
        assert not supports_sweep_kwargs("topo-matrix")

    def test_declares_quick_and_paper_scales(self):
        assert quick_scale_kwargs("topo-matrix") == topo_matrix.QUICK_KWARGS
        assert topo_matrix.PAPER_SCALE_KWARGS["n_flows"] > topo_matrix.QUICK_KWARGS["n_flows"]


class TestMatrix:
    def test_quick_matrix_covers_every_cell(self):
        result = topo_matrix.run(**topo_matrix.QUICK_KWARGS)
        assert result.experiment_id == "topo-matrix"
        # 3 topologies x 3 workloads x 2 protocols.
        assert len(result.rows) == 18
        cells = {(row[0], row[1], row[2]) for row in result.rows}
        assert len(cells) == 18
        assert {row[0] for row in result.rows} == set(topo_matrix.TOPOLOGIES)
        assert {row[1] for row in result.rows} == set(topo_matrix.WORKLOADS)
        assert {row[2] for row in result.rows} == {"DCTCP", "DCTCP+"}

    def test_rows_carry_sane_metrics(self):
        result = topo_matrix.run(**topo_matrix.QUICK_KWARGS)
        assert len(result.headers) == 9
        for row in result.rows:
            goodput, p99_ms, timeouts = row[3], row[4], row[5]
            assert goodput > 0
            assert p99_ms > 0
            assert timeouts >= 0

    def test_single_protocol_subset(self):
        result = topo_matrix.run(n_flows=2, rounds=1, seeds=(1,), protocols=("dctcp",))
        assert len(result.rows) == 9
        assert {row[2] for row in result.rows} == {"DCTCP"}
