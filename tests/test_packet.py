"""Tests for the packet model."""

from repro.net.packet import (
    ACK_BYTES,
    HEADER_BYTES,
    Packet,
    make_ack_packet,
    make_data_packet,
)


class TestDataPacket:
    def test_wire_size_includes_header(self):
        pkt = make_data_packet(1, 10, 20, seq=0, payload_len=1460)
        assert pkt.wire_bytes == 1460 + HEADER_BYTES

    def test_end_seq(self):
        pkt = make_data_packet(1, 10, 20, seq=1000, payload_len=500)
        assert pkt.end_seq == 1500

    def test_ect_flag(self):
        assert make_data_packet(1, 0, 1, seq=0, payload_len=1, ect=True).ect
        assert not make_data_packet(1, 0, 1, seq=0, payload_len=1).ect

    def test_ce_starts_clear(self):
        assert not make_data_packet(1, 0, 1, seq=0, payload_len=1, ect=True).ce

    def test_retransmit_flag(self):
        pkt = make_data_packet(1, 0, 1, seq=0, payload_len=1, is_retransmit=True)
        assert pkt.is_retransmit

    def test_ids_come_from_the_owning_simulator(self):
        from repro.net.packet import UNASSIGNED_PACKET_ID
        from repro.sim.engine import Simulator

        # Without a simulator-assigned id, packets are explicitly unassigned
        # (there is no hidden process-global counter behind them).
        bare = make_data_packet(1, 0, 1, seq=0, payload_len=1)
        assert bare.packet_id == UNASSIGNED_PACKET_ID

        sim = Simulator(seed=1)
        a = make_data_packet(1, 0, 1, seq=0, payload_len=1, packet_id=sim.next_packet_id())
        b = make_data_packet(1, 0, 1, seq=0, payload_len=1, packet_id=sim.next_packet_id())
        assert a.packet_id != b.packet_id

    def test_back_to_back_simulations_emit_identical_id_streams(self):
        """Packet ids are per-simulator state: two identical simulations in
        one process observe the same ids packet-for-packet (there is no
        process-global counter for the first run to advance)."""
        from repro.net.faults import make_lossy
        from repro.net.topology import build_two_tier
        from repro.workloads.incast import IncastConfig, IncastWorkload
        from repro.workloads.protocols import spec_for

        def run_once():
            from repro.sim.engine import Simulator

            sim = Simulator(seed=3)
            tree = build_two_tier(sim)
            seen = []

            def record(packet, index):
                seen.append(packet.packet_id)
                return False  # never drop; the policy is a tap

            port = tree.bottleneck_port
            port.link = make_lossy(port.link, record)
            wl = IncastWorkload(sim, tree, spec_for("dctcp"), IncastConfig(n_flows=4, n_rounds=2))
            wl.run_to_completion(max_events=5_000_000)
            wl.close()
            return seen

        first = run_once()
        second = run_once()
        assert len(first) > 100
        assert first == second


class TestAckPacket:
    def test_fixed_wire_size(self):
        ack = make_ack_packet(1, 20, 10, ack_seq=5000)
        assert ack.wire_bytes == ACK_BYTES
        assert ack.is_ack

    def test_ece_echo(self):
        assert make_ack_packet(1, 0, 1, ack_seq=0, ece=True).ece
        assert not make_ack_packet(1, 0, 1, ack_seq=0).ece

    def test_addressing(self):
        ack = make_ack_packet(9, 20, 10, ack_seq=42)
        assert (ack.flow_id, ack.src, ack.dst, ack.ack_seq) == (9, 20, 10, 42)


class TestExplicitWireBytes:
    def test_control_packet_size(self):
        pkt = Packet(1, 0, 1, wire_bytes=64)
        assert pkt.wire_bytes == 64

    def test_default_derives_from_payload(self):
        pkt = Packet(1, 0, 1, payload_len=100)
        assert pkt.wire_bytes == 100 + HEADER_BYTES
