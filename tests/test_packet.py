"""Tests for the packet model."""

from repro.net.packet import (
    ACK_BYTES,
    HEADER_BYTES,
    Packet,
    make_ack_packet,
    make_data_packet,
)


class TestDataPacket:
    def test_wire_size_includes_header(self):
        pkt = make_data_packet(1, 10, 20, seq=0, payload_len=1460)
        assert pkt.wire_bytes == 1460 + HEADER_BYTES

    def test_end_seq(self):
        pkt = make_data_packet(1, 10, 20, seq=1000, payload_len=500)
        assert pkt.end_seq == 1500

    def test_ect_flag(self):
        assert make_data_packet(1, 0, 1, seq=0, payload_len=1, ect=True).ect
        assert not make_data_packet(1, 0, 1, seq=0, payload_len=1).ect

    def test_ce_starts_clear(self):
        assert not make_data_packet(1, 0, 1, seq=0, payload_len=1, ect=True).ce

    def test_retransmit_flag(self):
        pkt = make_data_packet(1, 0, 1, seq=0, payload_len=1, is_retransmit=True)
        assert pkt.is_retransmit

    def test_unique_ids(self):
        a = make_data_packet(1, 0, 1, seq=0, payload_len=1)
        b = make_data_packet(1, 0, 1, seq=0, payload_len=1)
        assert a.packet_id != b.packet_id


class TestAckPacket:
    def test_fixed_wire_size(self):
        ack = make_ack_packet(1, 20, 10, ack_seq=5000)
        assert ack.wire_bytes == ACK_BYTES
        assert ack.is_ack

    def test_ece_echo(self):
        assert make_ack_packet(1, 0, 1, ack_seq=0, ece=True).ece
        assert not make_ack_packet(1, 0, 1, ack_seq=0).ece

    def test_addressing(self):
        ack = make_ack_packet(9, 20, 10, ack_seq=42)
        assert (ack.flow_id, ack.src, ack.dst, ack.ack_seq) == (9, 20, 10, 42)


class TestExplicitWireBytes:
    def test_control_packet_size(self):
        pkt = Packet(1, 0, 1, wire_bytes=64)
        assert pkt.wire_bytes == 64

    def test_default_derives_from_payload(self):
        pkt = Packet(1, 0, 1, payload_len=100)
        assert pkt.wire_bytes == 100 + HEADER_BYTES
