"""Tests for D2TCP and D2TCP+ (the Section VII extension)."""

import pytest

from repro.net.packet import make_ack_packet
from repro.net.topology import build_star, build_two_tier
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.d2tcp import D2tcpPlusSender, D2tcpSender, D_MAX, D_MIN, deadline_factor
from repro.workloads.ids import next_flow_id
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import spec_for

from .helpers import intern

MSS = 1460


def harness(cls=D2tcpSender, deadline_ns=None, total=40 * MSS):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS)
    s = cls(
        sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(),
        config=cfg, deadline_ns=deadline_ns,
    )
    s.send(total)
    sim.run(until=1)
    return sim, s


class TestDeadlineFactor:
    def test_no_data_left_is_polite(self):
        assert deadline_factor(0, 1.0, 100) == D_MIN

    def test_missed_deadline_is_aggressive(self):
        assert deadline_factor(1000, 1.0, 0) == D_MAX
        assert deadline_factor(1000, 1.0, -5) == D_MAX

    def test_zero_rate_is_aggressive(self):
        assert deadline_factor(1000, 0.0, 100) == D_MAX

    def test_on_track_is_one(self):
        # completion time == time left -> d = 1
        assert deadline_factor(1000, 10.0, 100) == pytest.approx(1.0)

    def test_clamped(self):
        assert deadline_factor(10_000, 1.0, 1) == D_MAX
        assert deadline_factor(1, 1000.0, 10**9) == D_MIN


class TestPenalty:
    def test_deadline_less_equals_dctcp(self):
        sim, s = harness(deadline_ns=None)
        s.alpha = 0.5
        assert s._reduction_penalty() == pytest.approx(0.5)

    def test_far_deadline_backs_off_more(self):
        sim, s = harness(deadline_ns=10**12)  # ~17 min: far
        s.alpha = 0.5
        # d < 1 -> alpha^d > alpha: larger penalty than DCTCP
        assert s._reduction_penalty() > 0.5

    def test_imminent_deadline_backs_off_less(self):
        sim, s = harness(deadline_ns=None)
        s.alpha = 0.5
        s.set_deadline(sim.now + 10 * US)  # hopeless: d clamps to D_MAX
        assert s._reduction_penalty() == pytest.approx(0.5 ** D_MAX)

    def test_deadline_missed_flag(self):
        sim, s = harness(deadline_ns=1)
        sim.run(until=1000)
        assert s.deadline_missed

    def test_set_deadline_clears(self):
        sim, s = harness(deadline_ns=5)
        s.set_deadline(None)
        assert not s.deadline_missed
        assert s._current_d() == 1.0


class TestPlusVariant:
    def test_plus_has_machine_and_deadline(self):
        sim, s = harness(cls=D2tcpPlusSender, deadline_ns=10**9)
        assert s.machine is not None
        assert s.pacer is not None
        assert s.deadline_ns == 10**9

    def test_plus_engages_at_floor(self):
        sim, s = harness(cls=D2tcpPlusSender)
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes
        s.on_packet(intern(s.sim, make_ack_packet(s.flow_id, s.dst_node_id, s.host.node_id, MSS, ece=True)))
        assert s.slow_time_ns > 0


class TestFirstRttDeadline:
    """Regression: a congestion event before the first RTT sample must use
    the configured baseline RTT, not a ~1 ns placeholder that inflated the
    rate estimate ~1e5x and clamped d to D_MIN (hardest backoff exactly
    when the deadline clock just started)."""

    def unseeded(self, deadline_ns, total=40 * MSS):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        cfg = TcpConfig(seed_rtt_ns=None, rto_min_ns=5 * MS)
        s = D2tcpSender(
            sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(),
            config=cfg, deadline_ns=deadline_ns,
        )
        s.send(total)
        assert s.rtt.srtt_ns is None
        return sim, s

    def test_fallback_matches_hand_computed_d(self):
        sim, s = self.unseeded(deadline_ns=50 * MS)
        baseline = s.rtt.rto_initial_ns
        remaining = s.total_bytes - s.snd_una
        completion_ns = remaining * baseline / s.cwnd
        expected = max(D_MIN, min(D_MAX, completion_ns / (50 * MS - sim.now)))
        assert s._current_d() == pytest.approx(expected)

    def test_tight_deadline_not_treated_as_far(self):
        # A 2-MSS window against a 1 s baseline can't move 40 MSS in 50 ms:
        # the flow is behind and must back off *less* (d > 1), the exact
        # opposite of the placeholder's D_MIN.
        sim, s = self.unseeded(deadline_ns=50 * MS)
        assert s._current_d() > 1.0

    def test_missed_deadline_penalty_before_first_sample(self):
        sim, s = self.unseeded(deadline_ns=10 * MS)
        sim.run(until=20 * MS)
        s.alpha = 0.5
        assert s._current_d() == D_MAX
        assert s._reduction_penalty() == pytest.approx(0.5 ** D_MAX)


class TestWorkloadIntegration:
    def test_deadline_incast_counts_misses(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        config = IncastConfig(
            n_flows=4, n_rounds=2, flow_deadline_ns=1  # 1 ns: everyone misses
        )
        wl = IncastWorkload(sim, tree, spec_for("d2tcp+"), config)
        wl.run_to_completion(max_events=20_000_000)
        assert wl.total_missed_deadlines == 8
        assert wl.missed_deadline_fraction == 1.0

    def test_generous_deadline_no_misses(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        config = IncastConfig(n_flows=4, n_rounds=2, flow_deadline_ns=10_000 * MS)
        wl = IncastWorkload(sim, tree, spec_for("d2tcp"), config)
        wl.run_to_completion(max_events=20_000_000)
        assert wl.total_missed_deadlines == 0

    def test_deadlines_propagate_to_senders(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        config = IncastConfig(n_flows=3, n_rounds=1, flow_deadline_ns=50 * MS)
        wl = IncastWorkload(sim, tree, spec_for("d2tcp+"), config)
        wl.start()
        sim.run(max_events=100)  # round began; deadlines installed
        assert all(s.deadline_ns is not None for s in wl.senders)


class TestProtocolFactory:
    def test_d2tcp_spec_builds_sender_with_deadline(self):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        spec = spec_for("d2tcp")
        s = spec.make_sender(
            sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(),
            deadline_ns=123,
        )
        assert isinstance(s, D2tcpSender)
        assert s.deadline_ns == 123

    def test_non_deadline_protocols_ignore_deadline_arg(self):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        s = spec_for("dctcp").make_sender(
            sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(),
            deadline_ns=123,
        )
        assert not hasattr(s, "deadline_ns")
