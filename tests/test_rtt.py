"""Tests for RFC 6298 RTT estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.units import MS, SEC, US
from repro.tcp.rtt import RttEstimator


def make(rto_min=200 * MS, rto_max=60 * SEC, initial=1 * SEC, seed=None):
    return RttEstimator(rto_min, rto_max, initial, seed)


class TestFirstSample:
    def test_initial_rto_before_samples(self):
        est = make(initial=3 * SEC, rto_min=1 * MS)
        assert est.rto_ns == 3 * SEC

    def test_first_sample_sets_srtt_and_var(self):
        est = make(rto_min=1)
        est.add_sample(100 * US)
        assert est.srtt_ns == 100 * US
        assert est.rttvar_ns == 50 * US
        # RTO = srtt + 4*rttvar = 300 us
        assert est.rto_ns == 300 * US

    def test_seed_counts_as_sample(self):
        est = make(seed=100 * US)
        assert est.samples == 1
        assert est.srtt_ns == 100 * US


class TestSmoothing:
    def test_constant_samples_converge(self):
        est = make(rto_min=1)
        for _ in range(100):
            est.add_sample(100 * US)
        assert est.srtt_ns == pytest.approx(100 * US, rel=1e-6)
        assert est.rttvar_ns == pytest.approx(0, abs=100)

    def test_ewma_gains(self):
        est = make(rto_min=1)
        est.add_sample(100 * US)
        est.add_sample(200 * US)
        # srtt = 7/8*100 + 1/8*200 = 112.5 us
        assert est.srtt_ns == pytest.approx(112_500)
        # rttvar = 3/4*50 + 1/4*|100-200| = 62.5 us
        assert est.rttvar_ns == pytest.approx(62_500)

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            make().add_sample(-1)


class TestClamping:
    def test_rto_min_clamp(self):
        est = make(rto_min=200 * MS)
        est.add_sample(100 * US)
        assert est.rto_ns == 200 * MS

    def test_rto_max_clamp(self):
        est = make(rto_min=1, rto_max=1 * SEC)
        est.add_sample(10 * SEC)
        assert est.rto_ns == 1 * SEC

    @given(st.lists(st.integers(min_value=0, max_value=10 * SEC), min_size=1, max_size=50))
    def test_rto_always_within_bounds(self, samples):
        est = make(rto_min=10 * MS, rto_max=5 * SEC)
        for s in samples:
            est.add_sample(s)
        assert 10 * MS <= est.rto_ns <= 5 * SEC


class TestBackoff:
    def test_exponential_doubling(self):
        est = make(rto_min=200 * MS, seed=100 * US)
        assert est.backed_off_rto_ns(0) == 200 * MS
        assert est.backed_off_rto_ns(1) == 400 * MS
        assert est.backed_off_rto_ns(2) == 800 * MS

    def test_backoff_capped_at_max(self):
        est = make(rto_min=200 * MS, rto_max=1 * SEC, seed=100 * US)
        assert est.backed_off_rto_ns(10) == 1 * SEC

    def test_negative_exponent_treated_as_zero(self):
        est = make(seed=100 * US)
        assert est.backed_off_rto_ns(-3) == est.rto_ns
