"""Unit tests for the Simulator event loop."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_schedule_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [100]
        assert sim.now == 100

    def test_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run_until_idle()
        seen = []
        sim.at(80, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [80]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_args_forwarded(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, seen.append, "payload")
        sim.run_until_idle()
        assert seen == ["payload"]

    def test_cancel_none_is_noop(self):
        Simulator().cancel(None)

    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        ev = sim.schedule(10, seen.append, 1)
        sim.cancel(ev)
        sim.run_until_idle()
        assert seen == []


class TestRun:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        seen = []
        for t in (10, 20, 30):
            sim.schedule(t, seen.append, t)
        sim.run(until=20)
        assert seen == [10, 20]
        assert sim.now == 20
        sim.run_until_idle()
        assert seen == [10, 20, 30]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(t, lambda: None)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert len(sim.queue) == 6

    def test_stop_when_predicate(self):
        sim = Simulator()
        seen = []
        for t in range(1, 6):
            sim.schedule(t, seen.append, t)
        sim.run(stop_when=lambda: len(seen) >= 3)
        assert seen == [1, 2, 3]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule(5, chain, depth - 1)

        sim.schedule(0, chain, 3)
        sim.run_until_idle()
        assert seen == [0, 5, 10, 15]

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(7):
            sim.schedule(t, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 7

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, seen.append, "a")
        sim.schedule(10, seen.append, "b")
        sim.run_until_idle()
        assert seen == ["a", "b"]


class TestRngIntegration:
    def test_streams_are_deterministic(self):
        a = Simulator(seed=5).stream("x").random()
        b = Simulator(seed=5).stream("x").random()
        assert a == b

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=5)
        assert sim.stream("x").random() != sim.stream("y").random()
