"""Unit tests for the Simulator event loop."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_schedule_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [100]
        assert sim.now == 100

    def test_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run_until_idle()
        seen = []
        sim.at(80, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [80]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_args_forwarded(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, seen.append, "payload")
        sim.run_until_idle()
        assert seen == ["payload"]

    def test_cancel_none_is_noop(self):
        Simulator().cancel(None)

    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        ev = sim.schedule(10, seen.append, 1)
        sim.cancel(ev)
        sim.run_until_idle()
        assert seen == []


class TestRun:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        seen = []
        for t in (10, 20, 30):
            sim.schedule(t, seen.append, t)
        sim.run(until=20)
        assert seen == [10, 20]
        assert sim.now == 20
        sim.run_until_idle()
        assert seen == [10, 20, 30]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(t, lambda: None)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert len(sim.queue) == 6

    def test_stop_when_predicate(self):
        sim = Simulator()
        seen = []
        for t in range(1, 6):
            sim.schedule(t, seen.append, t)
        sim.run(stop_when=lambda: len(seen) >= 3)
        assert seen == [1, 2, 3]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule(5, chain, depth - 1)

        sim.schedule(0, chain, 3)
        sim.run_until_idle()
        assert seen == [0, 5, 10, 15]

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(7):
            sim.schedule(t, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 7

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, seen.append, "a")
        sim.schedule(10, seen.append, "b")
        sim.run_until_idle()
        assert seen == ["a", "b"]


class TestPushProtocolConsistency:
    """Simulator.schedule and Simulator.run hand-inline the EventQueue push
    and dispatch protocols for speed; these tests pin the copies together so
    a change to the protocol cannot be applied to one copy and missed in
    another."""

    @staticmethod
    def _snapshot(ev):
        return (ev.time, ev.seq, ev.deadline, ev._dseq, ev.callback, ev.args, ev.cancelled)

    def test_schedule_matches_queue_push_fresh(self):
        def cb():
            pass

        a, b = Simulator(), Simulator()
        ev_s = a.schedule(25, cb, 1, 2)
        ev_p = b.queue.push(25, cb, (1, 2))
        assert self._snapshot(ev_s) == self._snapshot(ev_p)
        assert a.queue._heap[0][:2] == b.queue._heap[0][:2]
        assert a.queue._seq == b.queue._seq
        assert len(a.queue) == len(b.queue) == 1

    def test_schedule_matches_queue_push_recycled(self):
        def cb():
            pass

        a, b = Simulator(), Simulator()
        fired_a = a.schedule(1, cb)
        fired_b = b.queue.push(1, cb)
        a.run_until_idle()
        b.run_until_idle()
        assert a.queue._free and b.queue._free
        ev_s = a.schedule(30, cb, "x")
        ev_p = b.queue.push(31, cb, ("x",))
        # Both sides reused the fired carcass and reinitialized every slot.
        assert ev_s is fired_a
        assert ev_p is fired_b
        assert self._snapshot(ev_s) == self._snapshot(ev_p)
        assert a.queue._heap[0][:2] == b.queue._heap[0][:2]

    def test_schedule_resets_cancelled_carcass(self):
        sim = Simulator()
        ev = sim.schedule(5, lambda: None)
        sim.cancel(ev)
        sim.run_until_idle()  # pops the carcass onto the freelist, cancelled
        assert sim.queue._free == [ev]
        seen = []
        reused = sim.schedule(10, seen.append, "ran")
        assert reused is ev
        assert not reused.cancelled
        sim.run_until_idle()
        assert seen == ["ran"]

    def test_run_dispatch_matches_queue_pop(self):
        # The fused loop in Simulator.run must fire the same events in the
        # same order as the canonical EventQueue.pop under a mix of
        # cancellation and in-place reschedules.
        def build(sim, order):
            evs = {}
            for label, t in (("a", 10), ("b", 20), ("c", 20), ("d", 30)):
                evs[label] = sim.schedule(t, lambda label=label: order.append((label, sim.now)))
            sim.cancel(evs["b"])
            sim.reschedule(evs["a"], 25, lambda: order.append(("a2", sim.now)))

        a, b = Simulator(), Simulator()
        order_a, order_b = [], []
        build(a, order_a)
        build(b, order_b)
        a.run_until_idle()
        while True:
            ev = b.queue.pop()
            if ev is None:
                break
            b.now = ev.time
            ev.callback(*ev.args)
        assert order_a == order_b == [("c", 20), ("a2", 25), ("d", 30)]


class TestRngIntegration:
    def test_streams_are_deterministic(self):
        a = Simulator(seed=5).stream("x").random()
        b = Simulator(seed=5).stream("x").random()
        assert a == b

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=5)
        assert sim.stream("x").random() != sim.stream("y").random()
