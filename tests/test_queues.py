"""Tests for the drop-tail + ECN-marking queue."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import make_data_packet
from repro.net.queues import DropTailQueue


def _pkt(payload=1460, ect=True, flow=1):
    return make_data_packet(flow, 0, 1, seq=0, payload_len=payload, ect=ect)


class TestDropTail:
    def test_enqueue_dequeue_fifo(self):
        q = DropTailQueue(10_000, None)
        pkts = [_pkt(100) for _ in range(5)]
        for p in pkts:
            assert q.enqueue(p)
        assert [q.dequeue() for _ in range(5)] == pkts

    def test_overflow_drops(self):
        q = DropTailQueue(3000, None)
        assert q.enqueue(_pkt())   # 1500
        assert q.enqueue(_pkt())   # 3000
        assert not q.enqueue(_pkt())
        assert q.dropped_packets == 1

    def test_occupancy_accounting(self):
        q = DropTailQueue(10_000, None)
        q.enqueue(_pkt(500))
        q.enqueue(_pkt(700))
        assert q.occupancy_bytes == 540 + 740
        q.dequeue()
        assert q.occupancy_bytes == 740
        q.dequeue()
        assert q.occupancy_bytes == 0

    def test_dequeue_empty(self):
        assert DropTailQueue(1000, None).dequeue() is None

    def test_drop_callback(self):
        dropped = []
        q = DropTailQueue(1000, None, on_drop=dropped.append)
        q.enqueue(_pkt(800))
        q.enqueue(_pkt(800))
        assert len(dropped) == 1

    def test_counters(self):
        q = DropTailQueue(2000, None)
        q.enqueue(_pkt(500))
        q.enqueue(_pkt(500))
        q.enqueue(_pkt(5000))  # dropped
        assert q.enqueued_packets == 2
        assert q.enqueued_bytes == 1080
        assert q.dropped_bytes == 5040

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0, None)
        with pytest.raises(ValueError):
            DropTailQueue(-5, None)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            DropTailQueue(1000, -1)


class TestEcnMarking:
    def test_marks_when_occupancy_exceeds_threshold(self):
        q = DropTailQueue(100_000, 2000)
        q.enqueue(_pkt())  # occupancy 1500 <= K: no mark on next check? (1500 < 2000)
        p2 = _pkt()
        q.enqueue(p2)      # occupancy before enqueue = 1500 < 2000 -> unmarked
        assert not p2.ce
        p3 = _pkt()
        q.enqueue(p3)      # occupancy 3000 > 2000 -> marked
        assert p3.ce
        assert q.marked_packets == 1

    def test_threshold_is_strict(self):
        q = DropTailQueue(100_000, 1500)
        q.enqueue(_pkt(1460))  # occupancy exactly 1500
        p = _pkt()
        q.enqueue(p)  # 1500 > 1500 is False -> no mark
        assert not p.ce

    def test_non_ect_packets_never_marked(self):
        q = DropTailQueue(100_000, 0)
        q.enqueue(_pkt())
        p = _pkt(ect=False)
        q.enqueue(p)
        assert not p.ce

    def test_marking_disabled_with_none(self):
        q = DropTailQueue(100_000, None)
        q.enqueue(_pkt())
        p = _pkt()
        q.enqueue(p)
        assert not p.ce

    def test_mark_callback(self):
        marked = []
        q = DropTailQueue(100_000, 0, on_mark=marked.append)
        q.enqueue(_pkt())
        q.enqueue(_pkt())
        assert len(marked) == 1  # first saw empty queue

    def test_already_ce_not_double_counted(self):
        q = DropTailQueue(100_000, 0)
        q.enqueue(_pkt())
        p = _pkt()
        p.ce = True
        q.enqueue(p)
        assert q.marked_packets == 0

    def test_marked_then_dropped_still_counts_drop(self):
        q = DropTailQueue(2000, 0)
        q.enqueue(_pkt())
        p = _pkt()
        assert not q.enqueue(p)
        assert p.ce  # marked before the admission decision
        assert q.dropped_packets == 1


class TestQueueInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=2000)),
            max_size=300,
        )
    )
    def test_occupancy_matches_contents(self, ops):
        """Random enqueue/dequeue mix: byte accounting never drifts."""
        q = DropTailQueue(10_000, 3_000)
        expected = []
        for is_enqueue, size in ops:
            if is_enqueue:
                p = _pkt(size)
                if q.enqueue(p):
                    expected.append(p.wire_bytes)
            else:
                got = q.dequeue()
                if expected:
                    assert got is not None and got.wire_bytes == expected.pop(0)
                else:
                    assert got is None
            assert q.occupancy_bytes == sum(expected)
            assert q.occupancy_bytes <= q.capacity_bytes
            assert len(q) == len(expected)
