"""Tests for the drop-tail + ECN-marking queue (pooled-handle based)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import make_data_packet
from repro.net.pool import PacketPool
from repro.net.queues import DropTailQueue


def _fresh():
    """A standalone pool + a packet factory interning into it."""
    pool = PacketPool()

    def pkt(payload=1460, ect=True, flow=1, ce=False):
        p = make_data_packet(flow, 0, 1, seq=0, payload_len=payload, ect=ect)
        p.ce = ce
        return pool.intern(p)

    return pool, pkt


class TestDropTail:
    def test_enqueue_dequeue_fifo(self):
        pool, pkt = _fresh()
        q = DropTailQueue(10_000, None, pool=pool)
        handles = [pkt(100) for _ in range(5)]
        for h in handles:
            assert q.enqueue(h)
        assert [q.dequeue() for _ in range(5)] == handles

    def test_overflow_drops(self):
        pool, pkt = _fresh()
        q = DropTailQueue(3000, None, pool=pool)
        assert q.enqueue(pkt())   # 1500
        assert q.enqueue(pkt())   # 3000
        assert not q.enqueue(pkt())
        assert q.dropped_packets == 1

    def test_occupancy_accounting(self):
        pool, pkt = _fresh()
        q = DropTailQueue(10_000, None, pool=pool)
        q.enqueue(pkt(500))
        q.enqueue(pkt(700))
        assert q.occupancy_bytes == 540 + 740
        q.dequeue()
        assert q.occupancy_bytes == 740
        q.dequeue()
        assert q.occupancy_bytes == 0

    def test_dequeue_empty(self):
        pool, pkt = _fresh()
        assert DropTailQueue(1000, None, pool=pool).dequeue() is None

    def test_drop_callback(self):
        pool, pkt = _fresh()
        dropped = []
        q = DropTailQueue(1000, None, on_drop=dropped.append, pool=pool)
        q.enqueue(pkt(800))
        q.enqueue(pkt(800))
        assert len(dropped) == 1

    def test_dropped_handle_is_freed(self):
        pool, pkt = _fresh()
        q = DropTailQueue(1000, None, pool=pool)
        q.enqueue(pkt(800))
        h = pkt(800)
        assert not q.enqueue(h)
        assert not pool.live[h]

    def test_counters(self):
        pool, pkt = _fresh()
        q = DropTailQueue(2000, None, pool=pool)
        q.enqueue(pkt(500))
        q.enqueue(pkt(500))
        q.enqueue(pkt(5000))  # dropped
        assert q.enqueued_packets == 2
        assert q.enqueued_bytes == 1080
        assert q.dropped_bytes == 5040

    def test_rejects_bad_capacity(self):
        pool = PacketPool()
        with pytest.raises(ValueError):
            DropTailQueue(0, None, pool=pool)
        with pytest.raises(ValueError):
            DropTailQueue(-5, None, pool=pool)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            DropTailQueue(1000, -1, pool=PacketPool())


class TestEcnMarking:
    def test_marks_when_occupancy_exceeds_threshold(self):
        pool, pkt = _fresh()
        q = DropTailQueue(100_000, 2000, pool=pool)
        q.enqueue(pkt())  # occupancy 1500 <= K: no mark on next check? (1500 < 2000)
        h2 = pkt()
        q.enqueue(h2)      # occupancy before enqueue = 1500 < 2000 -> unmarked
        assert not pool.view(h2).ce
        h3 = pkt()
        q.enqueue(h3)      # occupancy 3000 > 2000 -> marked
        assert pool.view(h3).ce
        assert q.marked_packets == 1

    def test_threshold_is_strict(self):
        pool, pkt = _fresh()
        q = DropTailQueue(100_000, 1500, pool=pool)
        q.enqueue(pkt(1460))  # occupancy exactly 1500
        h = pkt()
        q.enqueue(h)  # 1500 > 1500 is False -> no mark
        assert not pool.view(h).ce

    def test_non_ect_packets_never_marked(self):
        pool, pkt = _fresh()
        q = DropTailQueue(100_000, 0, pool=pool)
        q.enqueue(pkt())
        h = pkt(ect=False)
        q.enqueue(h)
        assert not pool.view(h).ce

    def test_marking_disabled_with_none(self):
        pool, pkt = _fresh()
        q = DropTailQueue(100_000, None, pool=pool)
        q.enqueue(pkt())
        h = pkt()
        q.enqueue(h)
        assert not pool.view(h).ce

    def test_mark_callback(self):
        pool, pkt = _fresh()
        marked = []
        q = DropTailQueue(100_000, 0, on_mark=marked.append, pool=pool)
        q.enqueue(pkt())
        q.enqueue(pkt())
        assert len(marked) == 1  # first saw empty queue

    def test_already_ce_not_double_counted(self):
        pool, pkt = _fresh()
        q = DropTailQueue(100_000, 0, pool=pool)
        q.enqueue(pkt())
        q.enqueue(pkt(ce=True))
        assert q.marked_packets == 0

    def test_marked_then_dropped_still_counts_drop(self):
        pool, pkt = _fresh()
        marked = []
        q = DropTailQueue(2000, 0, on_mark=marked.append, pool=pool)
        q.enqueue(pkt())
        h = pkt()
        assert not q.enqueue(h)
        assert marked == [h]  # marked before the admission decision
        assert q.dropped_packets == 1


class TestQueueInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=2000)),
            max_size=300,
        )
    )
    def test_occupancy_matches_contents(self, ops):
        """Random enqueue/dequeue mix: byte accounting never drifts."""
        pool, pkt = _fresh()
        q = DropTailQueue(10_000, 3_000, pool=pool)
        expected = []
        for is_enqueue, size in ops:
            if is_enqueue:
                h = pkt(size)
                if q.enqueue(h):
                    expected.append(pool.wire_bytes[h])
            else:
                got = q.dequeue()
                if expected:
                    assert got is not None and pool.wire_bytes[got] == expected.pop(0)
                    pool.free(got)
                else:
                    assert got is None
            assert q.occupancy_bytes == sum(expected)
            assert q.occupancy_bytes <= q.capacity_bytes
            assert len(q) == len(expected)
