"""The native event core (repro.sim._evcore) against the pure engine.

Two kinds of pinning:

- **Semantics parity**: every engine behaviour (until/max_events/
  stop_when/request_stop, cancellation, deferred reschedules, exception
  propagation, freelist recycling, light/regular interleaving) runs
  parametrized over both modes and must behave identically.
- **Digest equivalence**: a full scenario simulated natively must hash
  to the same result as the pure-Python run — the bit-for-bit ordering
  guarantee the core's shared sequence counter exists to provide.

Everything native is skipped (not failed) on machines without a working
C toolchain; the engine itself falls back the same way.
"""

from __future__ import annotations

import pytest

from repro.sim import _native
from repro.sim.engine import SimulationError, Simulator

requires_native = pytest.mark.skipif(
    _native.core_factory() is None,
    reason=f"native core unavailable: {_native.status()}",
)

MODES = [
    pytest.param(False, id="pure"),
    pytest.param(True, marks=requires_native, id="native"),
]


@pytest.fixture(params=MODES)
def sim(request) -> Simulator:
    s = Simulator(native=request.param)
    assert s.native is request.param
    return s


class TestModeSelection:
    @requires_native
    def test_default_simulator_is_native_when_available(self):
        assert Simulator().native

    def test_env_optout_forces_pure(self, monkeypatch):
        monkeypatch.setenv(_native.NATIVE_ENV, "0")
        assert not Simulator().native

    def test_checker_and_profiler_pin_pure(self):
        assert not Simulator(validate=True).native
        from repro.telemetry import EngineProfiler

        assert not Simulator(profiler=EngineProfiler()).native

    @requires_native
    def test_explicit_native_with_checker_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(validate=True, native=True)


class TestSemanticsParity:
    def test_interleaved_light_and_regular_order(self, sim):
        seen = []
        sim.schedule(10, seen.append, "r10")
        sim.schedule_light(10, seen.append, "l10")
        sim.schedule(5, seen.append, "r5")
        sim.schedule_light(0, seen.append, "l0")
        sim.schedule_light(5, seen.append, "l5")
        assert sim.run() == 5
        assert seen == ["l0", "r5", "l5", "r10", "l10"]

    def test_fifo_ties_across_kinds_at_one_timestamp(self, sim):
        seen = []
        for i in range(6):
            if i % 2:
                sim.schedule_light(7, seen.append, i)
            else:
                sim.schedule(7, seen.append, i)
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_until_leaves_future_events_and_advances_clock(self, sim):
        seen = []
        sim.schedule(10, seen.append, 10)
        sim.schedule_light(30, seen.append, 30)
        assert sim.run(until=20) == 1
        assert seen == [10] and sim.now == 20
        sim.run_until_idle()
        assert seen == [10, 30] and sim.now == 30

    def test_until_advances_clock_when_idle(self, sim):
        sim.run(until=500)
        assert sim.now == 500

    def test_max_events_and_events_processed(self, sim):
        for t in range(10):
            sim.schedule_light(t, lambda _a: None, 0)
        assert sim.run(max_events=4) == 4
        assert sim.events_processed == 4
        assert sim.run() == 6

    def test_stop_when_predicate(self, sim):
        seen = []
        for t in range(1, 6):
            sim.schedule(t, seen.append, t)
        sim.run(stop_when=lambda: len(seen) >= 3)
        assert seen == [1, 2, 3]

    def test_request_stop_from_callback(self, sim):
        seen = []

        def cb(v):
            seen.append(v)
            if v == 2:
                sim.request_stop()

        for v in range(5):
            sim.schedule_light(v, cb, v)
        sim.run()
        assert seen == [0, 1, 2]

    def test_cancelled_events_skipped_and_recycled(self, sim):
        seen = []
        keep = sim.schedule(10, seen.append, "keep")
        kill = sim.schedule(5, seen.append, "kill")
        sim.cancel(kill)
        sim.run()
        assert seen == ["keep"]
        assert kill in sim.queue._free  # carcass recycled through the freelist
        assert keep in sim.queue._free  # fired handle recycled too

    def test_deferred_reschedule_refiles_at_true_deadline(self, sim):
        seen = []
        timer = sim.schedule(10, seen.append, "early")
        sim.schedule_light(5, lambda _a: sim.reschedule(timer, 20, seen.append, "late"), 0)
        sim.schedule_light(15, seen.append, "mid")
        sim.run()
        assert seen == ["mid", "late"]
        assert sim.now == 25  # 5 (reschedule) + 20

    def test_callback_exception_propagates_with_partial_accounting(self, sim):
        seen = []
        sim.schedule_light(1, seen.append, 1)
        sim.schedule(2, self._boom)
        sim.schedule_light(3, seen.append, 3)
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert seen == [1]
        assert sim.events_processed == 1  # the raising event is not credited
        sim.run_until_idle()
        assert seen == [1, 3]

    @staticmethod
    def _boom():
        raise RuntimeError("boom")

    def test_nested_scheduling_from_light_callbacks(self, sim):
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule_light(5, chain, depth - 1)

        sim.schedule_light(0, chain, 3)
        sim.run_until_idle()
        assert seen == [0, 5, 10, 15]

    def test_zero_delay_light_event_runs_in_same_batch(self, sim):
        seen = []
        sim.schedule_light(10, lambda _a: sim.schedule_light(0, seen.append, "child"), 0)
        sim.schedule(10, seen.append, "sibling")
        sim.run()
        # parent (seq 0) -> sibling (seq 1) -> child (scheduled during the
        # batch, higher seq): exact (time, seq) order in both modes.
        assert seen == ["sibling", "child"]

    def test_shared_sequence_stream_with_direct_queue_push(self, sim):
        seen = []
        sim.queue.push(10, seen.append, ("direct",))
        sim.schedule_light(10, seen.append, "light")
        sim.schedule(10, seen.append, "regular")
        sim.run()
        assert seen == ["direct", "light", "regular"]


@requires_native
class TestDigestEquivalence:
    @pytest.mark.parametrize("protocol", ["dctcp", "dctcp+", "pulser"])
    def test_scenario_results_match_pure(self, protocol, monkeypatch):
        from repro.exec.scenario import ScenarioSpec, run_scenario
        from repro.validate.fuzz import result_digest

        spec = ScenarioSpec.create(protocol, 16, rounds=2, seed=3)
        native = run_scenario(spec)
        monkeypatch.setenv(_native.NATIVE_ENV, "0")
        pure = run_scenario(spec)
        assert result_digest(native) == result_digest(pure)
