"""Tests for the dynamically shared buffer switch variant."""

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.net.shared_buffer import SharedBufferSwitch
from repro.net.switch import Switch
from repro.sim.engine import Simulator

from .helpers import intern


def wire(sim, switch):
    """Two hosts behind one switch."""
    a, b = Host(sim, "a"), Host(sim, "b")
    a.attach_link(Link(switch))
    b.attach_link(Link(switch))
    pa = switch.add_port(Link(a))
    pb = switch.add_port(Link(b))
    switch.add_route(a.node_id, pa)
    switch.add_route(b.node_id, pb)
    return a, b, pa, pb


def fill(port, n, dst, size=1460):
    sim = port.sim
    sent = 0
    for i in range(n):
        if port.send(intern(sim, make_data_packet(1, 0, dst, seq=i * size, payload_len=size))):
            sent += 1
    return sent


class TestAdmission:
    def test_single_port_can_use_whole_pool(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=15_000)
        a, b, pa, pb = wire(sim, switch)
        # 10 x 1500 B = 15 KB fits the pool on one port (1 extra is in
        # the serializer, so offer 11)
        sent = fill(pa, 11, a.node_id)
        assert sent == 11
        assert pa.queue.dropped_packets == 0

    def test_pool_exhaustion_drops(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=6_000)
        a, b, pa, pb = wire(sim, switch)
        fill(pa, 10, a.node_id)
        assert switch.pool_drops > 0

    def test_pool_shared_across_ports(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=6_000)
        a, b, pa, pb = wire(sim, switch)
        fill(pa, 5, a.node_id)  # ~4 queued = 6 KB
        # pool is now full: the other port gets nothing
        assert fill(pb, 3, b.node_id) < 3
        assert switch.pool_drops > 0

    def test_per_port_cap_limits_monopoly(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=30_000, per_port_cap_bytes=4_500)
        a, b, pa, pb = wire(sim, switch)
        fill(pa, 10, a.node_id)
        assert pa.queue.occupancy_bytes <= 4_500
        # pool still has room for the other port
        assert fill(pb, 2, b.node_id) == 2

    def test_pool_occupancy_accounting(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=100_000)
        a, b, pa, pb = wire(sim, switch)
        fill(pa, 3, a.node_id)
        fill(pb, 2, b.node_id)
        expected = pa.queue.occupancy_bytes + pb.queue.occupancy_bytes
        assert switch.pool_occupancy_bytes == expected

    def test_validates_pool_size(self):
        with pytest.raises(ValueError):
            SharedBufferSwitch(Simulator(), shared_pool_bytes=0)


class TestForwarding:
    def test_routes_and_unroutable(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim)
        a, b, pa, pb = wire(sim, switch)

        class Sink:
            def __init__(self, sim):
                self.free = sim.pool.free
                self.n = 0

            def on_packet(self, h):
                self.free(h)
                self.n += 1

        sink = Sink(sim)
        b.register_flow(9, sink)
        a.send(intern(sim, make_data_packet(9, a.node_id, b.node_id, seq=0, payload_len=10)))
        sim.run_until_idle()
        assert sink.n == 1
        a.send(intern(sim, make_data_packet(9, a.node_id, 424242, seq=0, payload_len=10)))
        sim.run_until_idle()
        assert switch.unroutable_drops == 1

    def test_foreign_port_rejected(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim)
        other = Switch(sim, "other")
        host = Host(sim, "h")
        foreign = other.add_port(Link(host))
        with pytest.raises(ValueError):
            switch.add_route(host.node_id, foreign)


class TestPoolAccounting:
    """Conservation of the shared pool under concurrent port pressure."""

    def test_drops_counted_exactly_once(self):
        """Every offered packet is either enqueued or dropped — never both,
        never twice — whether rejected by the pool or the per-port cap."""
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=12_000, per_port_cap_bytes=9_000)
        a, b, pa, pb = wire(sim, switch)
        offered = 15
        fill(pa, offered, a.node_id)
        fill(pb, offered, b.node_id)
        for port in (pa, pb):
            q = port.queue
            assert q.enqueued_packets + q.dropped_packets == offered
        # pool drops are a subset of per-port drops, not an extra count
        total_drops = pa.queue.dropped_packets + pb.queue.dropped_packets
        assert switch.pool_drops <= total_drops

    def test_pool_occupancy_tracks_sum_under_interleaved_pressure(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=20_000)
        a, b, pa, pb = wire(sim, switch)
        # interleave admissions across both ports against a shared pool
        for i in range(12):
            port, dst = (pa, a.node_id) if i % 2 == 0 else (pb, b.node_id)
            fill(port, 1, dst)
            assert (
                switch.pool_occupancy_bytes
                == pa.queue.occupancy_bytes + pb.queue.occupancy_bytes
            )
            assert switch.pool_occupancy_bytes <= switch.shared_pool_bytes

    def test_pool_occupancy_returns_to_zero_after_drain(self):
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=50_000)
        a, b, pa, pb = wire(sim, switch)
        fill(pa, 10, a.node_id)
        fill(pb, 10, b.node_id)
        assert switch.pool_occupancy_bytes > 0
        sim.run_until_idle()
        assert switch.pool_occupancy_bytes == 0
        assert pa.queue.occupancy_bytes == 0
        assert pb.queue.occupancy_bytes == 0
        # conservation closed out: everything admitted also departed
        for port in (pa, pb):
            q = port.queue
            assert q.dequeued_packets == q.enqueued_packets
            assert q.dequeued_bytes == q.enqueued_bytes

    def test_pool_freed_bytes_readmit_after_partial_drain(self):
        """Bytes freed by departures become available to the *other* port —
        the dynamic-sharing property, via the incremental pool counter."""
        sim = Simulator()
        switch = SharedBufferSwitch(sim, shared_pool_bytes=9_000)
        a, b, pa, pb = wire(sim, switch)
        fill(pa, 8, a.node_id)  # pool now full
        assert fill(pb, 1, b.node_id) == 0
        drops_before = pb.queue.dropped_packets
        sim.run_until_idle()  # drain everything
        assert fill(pb, 3, b.node_id) == 3
        assert pb.queue.dropped_packets == drops_before


class TestBurstAbsorption:
    def test_shared_pool_absorbs_bigger_incast_burst_than_static(self):
        """The motivation: the same fan-in burst that overflows a 128 KB
        static port fits a 512 KB shared pool."""

        def burst_drops(switch_factory):
            sim = Simulator()
            switch = switch_factory(sim)
            a, b, pa, pb = wire(sim, switch)
            # 200-packet synchronized burst to one port (300 KB)
            fill(pa, 200, a.node_id)
            return pa.queue.dropped_packets + getattr(switch, "pool_drops", 0)

        static = burst_drops(lambda sim: Switch(sim, buffer_bytes=128 * 1024))
        shared = burst_drops(lambda sim: SharedBufferSwitch(sim, shared_pool_bytes=512 * 1024))
        assert static > 0
        assert shared == 0
