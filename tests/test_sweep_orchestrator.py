"""Resumable sharded orchestration + the ``repro sweep`` CLI.

The load-bearing guarantees (the CI ``sweep-smoke`` job re-proves them
end-to-end across real process kills):

- an interrupted run resumes from the store alone and converges to the
  same content as an uninterrupted run;
- shard runs merged together equal the unsharded run;
- progress/ETA flows through the telemetry Collector protocol.
"""

import io
import json

import pytest

from repro.exec import ResultCache, SerialExecutor
from repro.sweep import SweepProgress, SweepSpec, SweepStore, run_sweep, sweep_status
from repro.sweep.cli import main as sweep_main

SMALL = {
    "name": "small",
    "mode": "grid",
    "rounds": 1,
    "axes": {"protocol": ["dctcp", "dctcp+"], "n_flows": [2, 3], "seed": [1, 2]},
}


def small_spec():
    return SweepSpec.from_dict(SMALL)


class TestRunSweep:
    def test_full_run_fills_the_store(self, tmp_path):
        spec = small_spec()
        with SweepStore(tmp_path / "s.sqlite") as store:
            report = run_sweep(spec, store, SerialExecutor())
            assert report.computed == 8
            assert report.already_stored == 0
            assert report.store_points == len(store) == 8
            assert report.digest == spec.digest()

    def test_interrupted_run_resumes_to_identical_content(self, tmp_path):
        spec = small_spec()
        with SweepStore(tmp_path / "full.sqlite") as full:
            run_sweep(spec, full, SerialExecutor())
            expected = full.content_digest()
        with SweepStore(tmp_path / "resumed.sqlite") as resumed:
            half = run_sweep(spec, resumed, SerialExecutor(), limit=4)
            assert half.computed == 4 and len(resumed) == 4
            rest = run_sweep(spec, resumed, SerialExecutor())
            assert rest.already_stored == 4 and rest.computed == 4
            assert resumed.content_digest() == expected

    def test_resume_runs_only_missing_points(self, tmp_path):
        spec = small_spec()
        with SweepStore(tmp_path / "s.sqlite") as store:
            run_sweep(spec, store, SerialExecutor())
            report = run_sweep(spec, store, SerialExecutor())
            assert report.computed == 0
            assert report.already_stored == 8

    def test_sharded_runs_merge_to_the_unsharded_store(self, tmp_path):
        spec = small_spec()
        with SweepStore(tmp_path / "full.sqlite") as full:
            run_sweep(spec, full, SerialExecutor())
            expected = full.content_digest()
        with SweepStore(tmp_path / "m.sqlite") as merged:
            for i in range(2):
                with SweepStore(tmp_path / f"sh{i}.sqlite") as shard_store:
                    report = run_sweep(
                        spec, shard_store, SerialExecutor(), shard=(i, 2)
                    )
                    assert report.shard_points < 8  # both shards own something
                    merged.merge_from(shard_store)
            assert merged.content_digest() == expected

    def test_chunking_does_not_change_content(self, tmp_path):
        spec = small_spec()
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "b.sqlite") as b:
            run_sweep(spec, a, SerialExecutor(), chunk=3)
            run_sweep(spec, b, SerialExecutor(), chunk=256)
            assert a.content_digest() == b.content_digest()

    def test_executor_cache_slot_is_restored(self, tmp_path):
        executor = SerialExecutor(cache=None)
        with SweepStore(tmp_path / "s.sqlite") as store:
            run_sweep(small_spec(), store, executor)
        assert executor.cache is None

    def test_bad_chunk_rejected(self, tmp_path):
        with SweepStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(ValueError):
                run_sweep(small_spec(), store, SerialExecutor(), chunk=0)


class TestSweepProgress:
    def test_rows_follow_the_collector_protocol(self, tmp_path):
        progress = SweepProgress(total=0)
        with SweepStore(tmp_path / "s.sqlite") as store:
            run_sweep(small_spec(), store, SerialExecutor(), progress=progress)
        assert len(progress.rows()) == 8
        assert progress.schema()[:2] == ("done", "total")
        done_column = [row[0] for row in progress.rows()]
        assert done_column == list(range(1, 9))
        # the Collector CSV surface works unchanged
        csv = progress.to_csv()
        assert csv.splitlines()[0] == ",".join(progress.schema())

    def test_eta_appears_after_first_fresh_point(self, tmp_path):
        progress = SweepProgress(total=0)
        with SweepStore(tmp_path / "s.sqlite") as store:
            run_sweep(small_spec(), store, SerialExecutor(), progress=progress)
        rows = progress.rows()
        assert rows[0][-1] >= 0  # first fresh point already yields an ETA
        assert rows[-1][-1] == 0  # nothing remains at the end

    def test_stderr_line_renders_and_respects_every(self, tmp_path):
        stream = io.StringIO()
        progress = SweepProgress(total=0, stream=stream, every=4)
        with SweepStore(tmp_path / "s.sqlite") as store:
            run_sweep(small_spec(), store, SerialExecutor(), progress=progress)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2  # 8 points, every=4
        assert lines[-1].startswith("[sweep 8/8]")

    def test_cached_points_do_not_skew_eta(self):
        from repro.exec.executors import ProgressEvent
        from repro.exec.scenario import PointResult

        def event(cached, wall):
            result = PointResult(
                protocol="dctcp", n_flows=2, seeds=(1,), goodput_mbps=1.0,
                fct_ms=1.0, timeouts=0, rounds=1, bad_rounds=0, wall_time_s=wall,
            )
            spec_stub = type("S", (), {"cache_key": lambda s: "k", "label": lambda s: "l"})()
            return ProgressEvent(1, 4, spec_stub, result, cached)

        progress = SweepProgress(total=4)
        progress(event(cached=True, wall=99.0))
        assert progress.eta_s() == -1.0  # cache hits carry no timing signal
        progress(event(cached=False, wall=2.0))
        assert progress.eta_s() == pytest.approx(2.0 * 2)  # 2 left at 2 s/point


class TestStatus:
    def test_status_reports_coverage(self, tmp_path):
        spec = small_spec()
        with SweepStore(tmp_path / "s.sqlite") as store:
            run_sweep(spec, store, SerialExecutor(), limit=3)
            status = sweep_status(spec, store)
        assert status["total_points"] == 8
        assert status["done"] == 3
        assert status["missing"] == 5
        assert status["digest"] == spec.digest()

    def test_status_without_a_spec_is_store_only(self, tmp_path):
        with SweepStore(tmp_path / "s.sqlite") as store:
            status = sweep_status(None, store)
        assert status["store_points"] == 0
        assert "content_digest" in status


class TestCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL))
        return str(path)

    def test_run_status_export_roundtrip(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "s.sqlite")
        assert sweep_main(["run", "--spec", spec_file, "--store", store,
                           "--no-progress", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["computed"] == 8

        assert sweep_main(["status", "--spec", spec_file, "--store", store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["missing"] == 0

        csv_path = str(tmp_path / "points.csv")
        assert sweep_main(["export", "--store", store, "--csv", csv_path]) == 0
        capsys.readouterr()
        assert len(open(csv_path).read().strip().splitlines()) == 9

    def test_shard_run_and_merge_equal_full_run(self, tmp_path, spec_file, capsys):
        full, merged = str(tmp_path / "full.sqlite"), str(tmp_path / "m.sqlite")
        shards = [str(tmp_path / f"sh{i}.sqlite") for i in range(2)]
        assert sweep_main(["run", "--spec", spec_file, "--store", full, "--no-progress"]) == 0
        for i, shard_store in enumerate(shards):
            assert sweep_main(["run", "--spec", spec_file, "--store", shard_store,
                               "--shard", f"{i}/2", "--no-progress"]) == 0
        assert sweep_main(["merge", "--into", merged, *shards]) == 0
        capsys.readouterr()
        for store in (full, merged):
            assert sweep_main(["export", "--store", store, "--digest"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0] == out[1]

    def test_canonical_db_exports_are_byte_identical(self, tmp_path, spec_file, capsys):
        a, b = str(tmp_path / "a.sqlite"), str(tmp_path / "b.sqlite")
        assert sweep_main(["run", "--spec", spec_file, "--store", a, "--no-progress"]) == 0
        assert sweep_main(["run", "--spec", spec_file, "--store", b, "--limit", "5",
                           "--no-progress"]) == 0
        assert sweep_main(["run", "--spec", spec_file, "--store", b, "--no-progress"]) == 0
        assert sweep_main(["export", "--store", a, "--db", str(tmp_path / "ca.sqlite")]) == 0
        assert sweep_main(["export", "--store", b, "--db", str(tmp_path / "cb.sqlite")]) == 0
        capsys.readouterr()
        assert (tmp_path / "ca.sqlite").read_bytes() == (tmp_path / "cb.sqlite").read_bytes()

    def test_import_verify(self, tmp_path, spec_file, capsys):
        legacy_dir = tmp_path / "legacy"
        spec = small_spec()
        SerialExecutor(cache=ResultCache(legacy_dir)).map(spec.points())
        store = str(tmp_path / "s.sqlite")
        assert sweep_main(["import", "--store", store, str(legacy_dir), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "imported 8 points" in out
        assert "verified 8 imported points" in out

    def test_run_preset(self, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        assert sweep_main(["run", "--preset", "ci-random-64", "--store", store,
                           "--limit", "2", "--no-progress"]) == 0
        assert "2 computed" in capsys.readouterr().out

    def test_run_without_spec_fails(self, tmp_path, capsys):
        assert sweep_main(["run", "--store", str(tmp_path / "s.sqlite")]) == 2
        assert "needs --spec" in capsys.readouterr().err

    def test_missing_source_store_fails(self, tmp_path, capsys):
        assert sweep_main(["merge", "--into", str(tmp_path / "m.sqlite"),
                           str(tmp_path / "nope.sqlite")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_store_env_fallback(self, tmp_path, spec_file, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_STORE", str(tmp_path / "env.sqlite"))
        assert sweep_main(["run", "--spec", spec_file, "--limit", "1",
                           "--no-progress"]) == 0
        capsys.readouterr()
        assert (tmp_path / "env.sqlite").exists()


class TestUmbrella:
    def test_umbrella_dispatches_sweep(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main as umbrella_main

        monkeypatch.setenv("REPRO_SWEEP_STORE", str(tmp_path / "s.sqlite"))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SMALL))
        assert umbrella_main(["sweep", "run", "--spec", str(spec_path),
                              "--limit", "1", "--no-progress"]) == 0
        assert "1 computed" in capsys.readouterr().out
