"""The telemetry subsystem: tracer, hooks, collectors, exporters, profiler."""

from __future__ import annotations

import pytest

from repro.exec.scenario import PointResult, ScenarioSpec, run_scenario
from repro.telemetry import (
    EVENT_KINDS,
    Collector,
    EngineProfiler,
    PeriodicCollector,
    Tracer,
    TraceRecord,
    records_from_jsonl,
    records_to_jsonl,
    timeout_taxonomy,
    timeout_taxonomy_from_stats,
)


def _spec(**overrides):
    kwargs = dict(protocol="dctcp+", n_flows=8, rounds=2, seed=3, sample_queue=True)
    kwargs.update(overrides)
    return ScenarioSpec.create(**kwargs)


# -- tracing must be invisible to the simulation --------------------------------
def test_tracing_does_not_perturb_results():
    traced = run_scenario(_spec(trace=True))
    plain = run_scenario(_spec())
    assert traced.events_processed == plain.events_processed
    t, p = traced.to_dict(), plain.to_dict()
    for payload in (t, p):
        payload.pop("wall_time_s")
        payload.pop("trace_events")
    assert t == p
    assert traced.trace_events and not plain.trace_events


def test_traced_run_is_deterministic():
    a = run_scenario(_spec(trace=True))
    b = run_scenario(_spec(trace=True))
    assert a.trace_events == b.trace_events


def test_validated_and_plain_traced_runs_agree():
    """Flow labels are per-run ordinals, so the checker can't skew traces."""
    validated = run_scenario(_spec(trace=True), validate=True)
    plain = run_scenario(_spec(trace=True), validate=False)
    assert validated.trace_events == plain.trace_events


# -- record content --------------------------------------------------------------
def test_dctcp_plus_trace_covers_the_event_taxonomy():
    records = run_scenario(_spec(trace=True)).trace_events
    kinds = {r.kind for r in records}
    assert kinds <= set(EVENT_KINDS)
    # ECN marks and queue watermarks appear in any congested DCTCP+ run;
    # slow_time records prove the state-machine hook fired.
    assert {"mark", "queue_hwm", "slow_time"} <= kinds
    for r in records:
        assert isinstance(r, TraceRecord)
        assert r.time_ns >= 0


def test_queue_hwm_records_are_strictly_increasing_per_queue():
    records = run_scenario(_spec(trace=True)).trace_events
    peaks = {}
    for r in records:
        if r.kind == "queue_hwm":
            assert r.value > peaks.get(r.subject, -1)
            peaks[r.subject] = r.value


def test_timeout_taxonomy_matches_flow_stats():
    """The acceptance cross-check at the Table-I 128-flow point."""
    result = run_scenario(ScenarioSpec.create("dctcp", n_flows=128, rounds=2, seed=1, trace=True))
    from_trace = timeout_taxonomy(result.trace_events)
    from_stats = timeout_taxonomy_from_stats(result.flow_stats)
    assert sum(from_trace.values()) > 0, "N=128 incast must produce timeouts"
    assert from_trace == from_stats


def test_tracer_record_cap_sets_truncated():
    tracer = Tracer(max_records=2)
    tracer.sim = type("S", (), {"now": 7})()
    for i in range(5):
        tracer._emit("drop", "q", i)
    assert len(tracer.records) == 2
    assert tracer.truncated


def test_tracer_rejects_bad_cap():
    with pytest.raises(ValueError):
        Tracer(max_records=0)


# -- exec integration -------------------------------------------------------------
def test_trace_events_round_trip_through_point_result():
    result = run_scenario(_spec(trace=True))
    clone = PointResult.from_dict(result.to_dict())
    assert clone.trace_events == result.trace_events
    assert all(isinstance(r, TraceRecord) for r in clone.trace_events)


def test_trace_flag_is_part_of_the_cache_key():
    assert _spec(trace=True).cache_key() != _spec().cache_key()


# -- exporters --------------------------------------------------------------------
def test_jsonl_round_trip():
    records = run_scenario(_spec(trace=True)).trace_events
    text = records_to_jsonl(records)
    assert records_from_jsonl(text) == list(records)
    assert text.endswith("\n")
    assert records_to_jsonl([]) == ""


def test_collector_csv_rendering():
    class Two(Collector):
        def schema(self):
            return ("a", "b")

        def rows(self):
            return [(1, 2.5), (3, 4.0)]

    assert Two().to_csv() == "a,b\n1,2.500\n3,4.000"


# -- the periodic base -------------------------------------------------------------
def test_periodic_collector_rejects_bad_interval():
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        PeriodicCollector(Simulator(seed=1), 0)


def test_periodic_collector_stop_after_exhaustion_is_safe():
    """A post-exhaustion stop() must not cancel a recycled event."""
    from repro.sim.engine import Simulator

    sim = Simulator(seed=1)

    class Counter(PeriodicCollector):
        def __init__(self):
            super().__init__(sim, 10)
            self.samples = 0

        def _sample(self):
            self.samples += 1

        def _exhausted(self):
            return self.samples >= 3

    collector = Counter()
    collector.start()
    sim.run(until=1_000)
    assert collector.samples == 3
    assert not collector.running
    other = sim.schedule(10, lambda: None)
    collector.stop()  # must be a no-op, not a cancellation of `other`
    assert other.callback is not None


# -- profiler ----------------------------------------------------------------------
def test_profiler_attributes_dispatch_time():
    profiler = EngineProfiler()
    result = run_scenario(_spec(), profiler=profiler)
    assert profiler.events == result.events_processed
    assert sum(profiler.counts.values()) == result.events_processed
    assert profiler.wall_s > 0
    assert profiler.events_per_sec > 0
    kinds = dict(zip(profiler.schema(), next(iter(profiler.rows()))))
    assert set(profiler.schema()) == {
        "kind", "events", "total_s", "mean_us", "share", "mean_batch",
    }
    assert kinds["events"] > 0
    assert kinds["mean_batch"] >= 1.0
    assert profiler.batches > 0
    assert profiler.mean_batch_size >= 1.0
    assert "events/s" in profiler.report()
    assert "batches" in profiler.report()


def test_profiled_run_matches_plain_run():
    profiled = run_scenario(_spec(), profiler=EngineProfiler())
    plain = run_scenario(_spec())
    p, q = profiled.to_dict(), plain.to_dict()
    p.pop("wall_time_s")
    q.pop("wall_time_s")
    assert p == q


def test_profiler_composes_with_tracing():
    profiler = EngineProfiler()
    traced = run_scenario(_spec(trace=True), profiler=profiler)
    plain = run_scenario(_spec(trace=True))
    assert profiler.events == traced.events_processed
    assert traced.trace_events == plain.trace_events


def test_validated_loop_takes_precedence_over_profiler():
    """validate + profile: the checker's loop runs, the profiler stays idle."""
    profiler = EngineProfiler()
    result = run_scenario(_spec(), validate=True, profiler=profiler)
    assert result.events_processed > 0
    assert profiler.events == 0
