"""Unit + property tests for the event queue."""

from hypothesis import given, strategies as st

from repro.sim.events import Event, EventQueue


def _collect(queue: EventQueue):
    out = []
    while True:
        ev = queue.pop()
        if ev is None:
            return out
        out.append(ev)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in (50, 10, 30, 20, 40):
            q.push(t, lambda: None)
        assert [e.time for e in _collect(q)] == [10, 20, 30, 40, 50]

    def test_fifo_within_same_timestamp(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(100, order.append, (i,))
        for ev in _collect(q):
            ev.callback(*ev.args)
        assert order == [0, 1, 2, 3, 4]

    def test_event_lt_uses_seq_tiebreak(self):
        a = Event(5, 1, lambda: None, ())
        b = Event(5, 2, lambda: None, ())
        assert a < b and not b < a

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        keep = q.push(10, lambda: None)
        drop = q.push(5, lambda: None)
        q.cancel(drop)
        assert q.pop() is keep
        assert q.pop() is None

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1, lambda: None)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_cancel_releases_callback_references(self):
        q = EventQueue()
        payload = object()
        ev = q.push(1, lambda x: None, (payload,))
        q.cancel(ev)
        assert ev.args == ()

    def test_len_counts_live_only(self):
        q = EventQueue()
        events = [q.push(i, lambda: None) for i in range(4)]
        q.cancel(events[1])
        q.cancel(events[2])
        assert len(q) == 2

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        q.push(7, lambda: None)
        q.cancel(first)
        assert q.peek_time() == 7

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        for i in range(3):
            q.push(i, lambda: None)
        q.clear()
        assert len(q) == 0 and q.pop() is None


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=200))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = [e.time for e in _collect(q)]
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
            max_size=100,
        )
    )
    def test_cancelled_never_pop_and_live_all_pop(self, spec):
        q = EventQueue()
        live_times = []
        for t, cancel in spec:
            ev = q.push(t, lambda: None)
            if cancel:
                q.cancel(ev)
            else:
                live_times.append(t)
        popped = [e.time for e in _collect(q)]
        assert popped == sorted(live_times)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100))
    def test_len_matches_live_count(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        assert len(q) == len(times)
        q.pop()
        assert len(q) == len(times) - 1
