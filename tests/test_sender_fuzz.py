"""Property/fuzz tests: TCP sender state invariants under arbitrary ACKs.

The sender is fed randomized (possibly nonsensical-but-wire-legal) ACK
sequences and arbitrary timer firings; whatever happens, the core
sequence-space invariants must hold.  This is the class of test that
catches state-machine corruption that scenario tests never exercise.
"""

from hypothesis import given, settings, strategies as st

from repro.core.dctcp_plus import DctcpPlusSender
from repro.net.packet import make_ack_packet
from repro.net.topology import build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.dctcp import DctcpSender
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id

MSS = 1460
TOTAL = 30 * MSS


def build(sender_cls):
    sim = Simulator(seed=1)
    tree = build_dumbbell(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=2 * MS)
    sender = sender_cls(sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), config=cfg)
    sender.send(TOTAL)
    sim.run(until=1)
    return sim, sender


def check_invariants(sender):
    assert 0 <= sender.snd_una <= sender.snd_nxt <= sender.total_bytes
    assert sender.bytes_in_flight >= 0
    assert sender.cwnd >= sender.config.mss  # never below one segment
    assert sender.ssthresh >= sender.config.mss
    assert sender.dupacks >= 0
    if sender.completed:
        assert sender.snd_una >= sender.total_bytes
    machine = getattr(sender, "machine", None)
    if machine is not None:
        assert machine.slow_time_ns >= 0


ACK_STEPS = st.lists(
    st.tuples(
        # ack sequence offset in segments (may repeat / go "backwards")
        st.integers(min_value=0, max_value=30),
        st.booleans(),  # ECE flag
        # time to advance before the ACK (can cross RTO boundaries)
        st.integers(min_value=0, max_value=3_000_000),
    ),
    max_size=60,
)


class TestAckFuzz:
    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_newreno_invariants(self, steps):
        sim, sender = build(TcpSender)
        self._drive(sim, sender, steps)

    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_dctcp_invariants(self, steps):
        sim, sender = build(DctcpSender)
        self._drive(sim, sender, steps)
        assert 0.0 <= sender.alpha <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_dctcp_plus_invariants(self, steps):
        sim, sender = build(DctcpPlusSender)
        self._drive(sim, sender, steps)

    @staticmethod
    def _drive(sim, sender, steps):
        for seg_offset, ece, delay in steps:
            if delay:
                sim.run(until=sim.now + delay)
            ack_seq = min(seg_offset * MSS, TOTAL)
            sender.on_packet(
                make_ack_packet(
                    sender.flow_id, sender.dst_node_id, sender.host.node_id,
                    ack_seq, ece=ece,
                )
            )
            check_invariants(sender)
        # drain whatever the fuzz left behind; state must stay legal
        sim.run(until=sim.now + 10_000_000, max_events=500_000)
        check_invariants(sender)


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(acks=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40))
    def test_snd_una_never_regresses(self, acks):
        sim, sender = build(TcpSender)
        high_water = 0
        for seg in acks:
            sender.on_packet(
                make_ack_packet(
                    sender.flow_id, sender.dst_node_id, sender.host.node_id,
                    min(seg * MSS, TOTAL),
                )
            )
            assert sender.snd_una >= high_water
            high_water = sender.snd_una
