"""Property/fuzz tests: TCP sender state invariants under arbitrary ACKs.

The sender is fed randomized (possibly nonsensical-but-wire-legal) ACK
sequences and arbitrary timer firings; whatever happens, the core
sequence-space invariants must hold.  This is the class of test that
catches state-machine corruption that scenario tests never exercise.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import DctcpPlusConfig
from repro.core.dctcp_plus import DctcpPlusSender
from repro.core.state_machine import SlowTimeStateMachine
from repro.core.states import DctcpPlusState
from repro.net.packet import make_ack_packet
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.dctcp import DctcpSender
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id

from .helpers import intern

MSS = 1460
TOTAL = 30 * MSS


def build(sender_cls):
    sim = Simulator(seed=1)
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=2 * MS)
    sender = sender_cls(sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), config=cfg)
    sender.send(TOTAL)
    sim.run(until=1)
    return sim, sender


def check_invariants(sender):
    assert 0 <= sender.snd_una <= sender.snd_nxt <= sender.total_bytes
    assert sender.bytes_in_flight >= 0
    assert sender.cwnd >= sender.config.mss  # never below one segment
    assert sender.ssthresh >= sender.config.mss
    assert sender.dupacks >= 0
    if sender.completed:
        assert sender.snd_una >= sender.total_bytes
    machine = getattr(sender, "machine", None)
    if machine is not None:
        assert machine.slow_time_ns >= 0


ACK_STEPS = st.lists(
    st.tuples(
        # ack sequence offset in segments (may repeat / go "backwards")
        st.integers(min_value=0, max_value=30),
        st.booleans(),  # ECE flag
        # time to advance before the ACK (can cross RTO boundaries)
        st.integers(min_value=0, max_value=3_000_000),
    ),
    max_size=60,
)


class TestAckFuzz:
    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_newreno_invariants(self, steps):
        sim, sender = build(TcpSender)
        self._drive(sim, sender, steps)

    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_dctcp_invariants(self, steps):
        sim, sender = build(DctcpSender)
        self._drive(sim, sender, steps)
        assert 0.0 <= sender.alpha <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_dctcp_plus_invariants(self, steps):
        sim, sender = build(DctcpPlusSender)
        self._drive(sim, sender, steps)

    @staticmethod
    def _drive(sim, sender, steps):
        for seg_offset, ece, delay in steps:
            if delay:
                sim.run(until=sim.now + delay)
            ack_seq = min(seg_offset * MSS, TOTAL)
            sender.on_packet(
                intern(
                    sim,
                    make_ack_packet(
                        sender.flow_id, sender.dst_node_id, sender.host.node_id,
                        ack_seq, ece=ece,
                    ),
                )
            )
            check_invariants(sender)
        # drain whatever the fuzz left behind; state must stay legal
        sim.run(until=sim.now + 10_000_000, max_events=500_000)
        check_invariants(sender)


#: (is_congestion, time advance before the input in ns)
MACHINE_STEPS = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=500_000)),
    min_size=1,
    max_size=80,
)


class TestSlowTimeMachineAimdLaws:
    """Property tests of the paper's Algorithm 1 AIMD bounds, driven with
    arbitrary congestion/clean-ACK sequences."""

    @settings(max_examples=60, deadline=None)
    @given(steps=MACHINE_STEPS, rng_seed=st.integers(min_value=0, max_value=2**31))
    def test_aimd_bounds(self, steps, rng_seed):
        cfg = DctcpPlusConfig()
        machine = SlowTimeStateMachine(cfg, random.Random(rng_seed))
        unit = cfg.backoff_time_unit_ns
        now = 0
        for is_congestion, dt in steps:
            now += dt
            before = machine.slow_time_ns
            state_before = machine.state
            if is_congestion:
                machine.on_congestion_event()
                # additive increase: 0 < increment <= backoff_time_unit
                delta = machine.slow_time_ns - before
                assert 0 < delta <= unit
                assert machine.state is DctcpPlusState.TIME_INC
            else:
                machine.on_clean_ack(now)
                after = machine.slow_time_ns
                if state_before is DctcpPlusState.NORMAL:
                    assert machine.state is DctcpPlusState.NORMAL
                    assert after == before == 0
                elif machine.state is DctcpPlusState.NORMAL:
                    # return to NORMAL only from at/below threshold_T
                    assert before <= cfg.threshold_t_ns
                    assert after == 0
                elif after != before:
                    # multiplicative decay: exact division by divisor_factor
                    assert after == int(before / cfg.divisor_factor)
                    assert machine.state is DctcpPlusState.TIME_DES
            assert machine.slow_time_ns >= 0
            assert machine.slow_time_ns <= machine.peak_slow_time_ns
            if machine.state is DctcpPlusState.NORMAL:
                assert machine.slow_time_ns == 0

    @settings(max_examples=40, deadline=None)
    @given(steps=MACHINE_STEPS, rng_seed=st.integers(min_value=0, max_value=2**31))
    def test_unrandomized_growth_is_exactly_one_unit(self, steps, rng_seed):
        """The Fig. 6 ablation (randomize=False) grows by the full unit."""
        cfg = DctcpPlusConfig(randomize=False)
        machine = SlowTimeStateMachine(cfg, random.Random(rng_seed))
        now = 0
        for is_congestion, dt in steps:
            now += dt
            before = machine.slow_time_ns
            if is_congestion:
                machine.on_congestion_event()
                assert machine.slow_time_ns - before == cfg.backoff_time_unit_ns
            else:
                machine.on_clean_ack(now)


class TestDctcpPlusSenderMachineProperties:
    """Drive the *full* DctcpPlusSender and check the machine-level AIMD
    bounds hold per ACK (the end-to-end version of the unit laws above)."""

    @settings(max_examples=40, deadline=None)
    @given(steps=ACK_STEPS)
    def test_per_ack_slow_time_bounds(self, steps):
        sim, sender = build(DctcpPlusSender)
        machine = sender.machine
        cfg = sender.plus_config
        assert cfg.backoff_unit_mode == "fixed"  # unit is constant below
        unit = cfg.backoff_time_unit_ns
        for seg_offset, ece, delay in steps:
            if delay:
                # timers (RTOs) may fire here; each is one machine input,
                # so only the per-ACK window below is bounds-checked
                sim.run(until=sim.now + delay)
            before = machine.slow_time_ns
            state_before = machine.state
            sender.on_packet(
                intern(
                    sim,
                    make_ack_packet(
                        sender.flow_id, sender.dst_node_id, sender.host.node_id,
                        min(seg_offset * MSS, TOTAL), ece=ece,
                    ),
                )
            )
            after = machine.slow_time_ns
            if after > before:
                # one ACK = at most one congestion event = one increment
                assert after - before <= unit
                assert machine.state is DctcpPlusState.TIME_INC
            elif after < before:
                assert after == int(before / cfg.divisor_factor) or after == 0
                if machine.state is DctcpPlusState.NORMAL:
                    assert before <= cfg.threshold_t_ns
            if state_before is DctcpPlusState.NORMAL and machine.state is (
                DctcpPlusState.TIME_INC
            ):
                # NORMAL -> TIME_INC entry requires the cwnd floor; after
                # the ACK cwnd may have moved, but slow_time must have been
                # seeded with a single fresh draw
                assert 0 < after <= unit
            check_invariants(sender)


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(acks=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40))
    def test_snd_una_never_regresses(self, acks):
        sim, sender = build(TcpSender)
        high_water = 0
        for seg in acks:
            sender.on_packet(
                intern(
                    sim,
                    make_ack_packet(
                        sender.flow_id, sender.dst_node_id, sender.host.node_id,
                        min(seg * MSS, TOTAL),
                    ),
                )
            )
            assert sender.snd_una >= high_water
            high_water = sender.snd_una
