"""Tests for delayed ACKs + the DCTCP ECN-echo state machine."""

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.tcp.delack import DelayedAckReceiver

from .helpers import CaptureEndpoint, intern


class AckTrap(CaptureEndpoint):
    @property
    def acks(self):
        return self.packets


def setup(ack_every=2, delack_timeout_ns=40 * MS):
    sim = Simulator()
    switch = Switch(sim, "sw")
    a, b = Host(sim, "a"), Host(sim, "b")
    a.attach_link(Link(switch))
    b.attach_link(Link(switch))
    switch.add_route(a.node_id, switch.add_port(Link(a)))
    switch.add_route(b.node_id, switch.add_port(Link(b)))
    trap = AckTrap(sim)
    a.register_flow(1, trap)
    recv = DelayedAckReceiver(
        sim, b, a.node_id, 1, ack_every=ack_every, delack_timeout_ns=delack_timeout_ns
    )
    return sim, recv, trap


def seg(sim, seq, length=1000, ce=False, ect=True):
    pkt = make_data_packet(1, 0, 0, seq=seq, payload_len=length, ect=ect)
    pkt.ce = ce
    return intern(sim, pkt)


class TestValidation:
    def test_rejects_bad_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            setup(ack_every=0)
        with pytest.raises(ValueError):
            setup(delack_timeout_ns=0)


class TestCoalescing:
    def test_acks_every_second_segment(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0))
        sim.run(until=1_000_000)
        assert len(trap.acks) == 0  # first segment held
        recv.on_packet(seg(sim, 1000))
        sim.run(until=2_000_000)
        assert len(trap.acks) == 1
        assert trap.acks[0].ack_seq == 2000

    def test_delack_timer_flushes_odd_segment(self):
        sim, recv, trap = setup(delack_timeout_ns=5 * MS)
        recv.on_packet(seg(sim, 0))
        sim.run(until=10 * MS)
        assert len(trap.acks) == 1
        assert recv.delack_timeouts == 1

    def test_ack_every_one_behaves_immediately(self):
        sim, recv, trap = setup(ack_every=1)
        recv.on_packet(seg(sim, 0))
        sim.run(until=1_000_000)
        assert len(trap.acks) == 1


class TestOutOfOrderImmediate:
    def test_gap_acked_immediately(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 2000))  # hole at 0
        sim.run(until=1_000_000)
        assert len(trap.acks) == 1  # dupACK, not delayed
        assert trap.acks[0].ack_seq == 0

    def test_pending_flushed_before_dup(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0))      # pending
        recv.on_packet(seg(sim, 3000))   # out of order -> flush + immediate
        sim.run(until=1_000_000)
        assert [a.ack_seq for a in trap.acks] == [1000, 1000]


class TestEceStateMachine:
    def test_state_change_forces_immediate_ack_with_old_state(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ce=False))       # pending, state 0
        recv.on_packet(seg(sim, 1000, ce=True))     # state change -> flush(ECE=0)
        sim.run(until=1_000_000)
        assert len(trap.acks) == 1
        assert trap.acks[0].ack_seq == 1000
        assert not trap.acks[0].ece

    def test_marked_run_acked_with_ece(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ce=True))        # state flips to 1, pending
        recv.on_packet(seg(sim, 1000, ce=True))     # second marked -> delayed ack
        sim.run(until=1_000_000)
        assert len(trap.acks) == 1
        assert trap.acks[0].ece

    def test_return_to_clean_echoes_marked_run(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ce=True))
        recv.on_packet(seg(sim, 1000, ce=False))    # state change -> flush(ECE=1)
        sim.run(until=1_000_000)
        assert trap.acks[0].ece
        recv.on_packet(seg(sim, 2000, ce=False))
        sim.run(until=2_000_000)
        assert not trap.acks[1].ece

    def test_non_ect_traffic_never_ece(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ect=False))
        recv.on_packet(seg(sim, 1000, ect=False))
        sim.run(until=1_000_000)
        assert not trap.acks[0].ece

    def test_byte_accounting_preserved(self):
        """Marked and clean bytes are echoed in separate ACKs, so the
        sender's fraction estimate stays exact across coalescing."""
        sim, recv, trap = setup()
        # 2 clean, 2 marked, 2 clean
        recv.on_packet(seg(sim, 0, ce=False))
        recv.on_packet(seg(sim, 1000, ce=False))    # delayed ack (ECE=0) @2000
        recv.on_packet(seg(sim, 2000, ce=True))     # state change, pending
        recv.on_packet(seg(sim, 3000, ce=True))     # delayed ack (ECE=1) @4000
        recv.on_packet(seg(sim, 4000, ce=False))    # flush(ECE=1)? state change ->
        sim.run(until=1_000_000)
        ack_seqs = [(a.ack_seq, a.ece) for a in trap.acks]
        assert (2000, False) in ack_seqs
        assert (4000, True) in ack_seqs


class TestOutOfOrderCeChange:
    """Regression: CE state updates for *every* arriving ECT segment, not
    just in-order ones (Linux tcp_ecn_check_ce runs before queueing)."""

    def test_ooo_marked_segment_flips_state(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ce=False))       # pending, state 0
        recv.on_packet(seg(sim, 2000, ce=True))     # out of order + CE change
        sim.run(until=1_000_000)
        # Pending run flushed with the old state, then the dupACK carries
        # the *new* state — previously the mark vanished entirely.
        assert [(a.ack_seq, a.ece) for a in trap.acks] == [(1000, False), (1000, True)]
        assert recv._ce_state is True

    def test_ooo_return_to_clean_flips_back(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ce=True))        # state flips to 1, pending
        recv.on_packet(seg(sim, 2000, ce=False))    # OOO + CE change back
        sim.run(until=1_000_000)
        assert [(a.ack_seq, a.ece) for a in trap.acks] == [(1000, True), (1000, False)]
        assert recv._ce_state is False

    def test_hole_fill_coalesces_with_flipped_state(self):
        sim, recv, trap = setup()
        recv.on_packet(seg(sim, 0, ce=False))
        recv.on_packet(seg(sim, 1000, ce=False))    # delayed ack (2000, ECE=0)
        recv.on_packet(seg(sim, 3000, ce=True))     # OOO: state -> 1, dupACK(ECE=1)
        recv.on_packet(seg(sim, 2000, ce=True))     # fills the hole to 4000
        sim.run(until=100_000_000)
        assert (2000, False) in [(a.ack_seq, a.ece) for a in trap.acks]
        # The ACK covering the marked run echoes the mark.
        assert trap.acks[-1].ack_seq == 4000
        assert trap.acks[-1].ece


class TestClose:
    def test_close_cancels_timer(self):
        sim, recv, trap = setup(delack_timeout_ns=5 * MS)
        recv.on_packet(seg(sim, 0))
        recv.close()
        sim.run_until_idle()
        assert len(trap.acks) == 0
