"""The typed CC event protocol (repro.tcp.events) and its engine guard."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.tcp.events import CC_ACK, CC_ACK_ECHO, CC_INC_ECHO, CC_RTO, CC_SEND, CCEvent


def test_kind_constants_are_distinct():
    kinds = {CC_ACK, CC_ACK_ECHO, CC_INC_ECHO, CC_RTO, CC_SEND}
    assert len(kinds) == 5


def test_event_is_slotted_and_reusable():
    ev = CCEvent()
    assert ev.kind is CC_ACK
    with pytest.raises(AttributeError):
        ev.arbitrary = 1  # transient record: no __dict__, no growth
    # One event is mutated in place across dispatches (hot path allocates
    # nothing); handlers compare kind with `is` against the interned names.
    ev.kind = CC_RTO
    assert ev.kind is CC_RTO
    ev.kind = CC_ACK_ECHO
    assert ev.kind is CC_ACK_ECHO


SENDER_CLASSES = [
    "TcpSender",
    "DctcpSender",
    "D2tcpSender",
    "PulserSender",
    "TbtcpSender",
]


@pytest.mark.parametrize("cls_name", SENDER_CLASSES)
def test_builtin_strategies_implement_the_protocol(cls_name):
    from repro.tcp import d2tcp, dctcp, pulser, sender, tbtcp

    cls = None
    for module in (sender, dctcp, d2tcp, pulser, tbtcp):
        cls = getattr(module, cls_name, cls)
    assert cls is not None
    for method in ("on_ack", "on_ecn_echo", "on_rto", "on_send_opportunity"):
        assert callable(getattr(cls, method)), f"{cls_name} lacks {method}"


def test_legacy_cc_hooks_are_gone():
    """The ad-hoc pre-protocol hooks must not linger on any sender class."""
    from repro.tcp.d2tcp import D2tcpSender
    from repro.tcp.dctcp import DctcpSender
    from repro.tcp.pulser import PulserSender
    from repro.tcp.sender import TcpSender
    from repro.tcp.tbtcp import TbtcpSender

    for cls in (TcpSender, DctcpSender, D2tcpSender, PulserSender, TbtcpSender):
        for legacy in ("_cc_on_ack", "_cc_on_timeout", "_after_ack"):
            assert not hasattr(cls, legacy), f"{cls.__name__} still has {legacy}"
    # Pulser used to hijack the ACK-ingress method itself; it now reacts to
    # CC_INC_ECHO through on_ecn_echo instead.
    assert "_on_ack" not in PulserSender.__dict__


def test_external_policy_satisfies_the_event_surface():
    from repro.control import ExternalPolicy

    for method in ("bind", "on_ack", "on_ecn_echo", "on_rto", "on_send_opportunity"):
        assert callable(getattr(ExternalPolicy, method))


# -- engine guard (satellite: control vs native/profiler/checker) -------------------
def test_native_dispatch_refuses_an_attached_control_env():
    sim = Simulator(seed=1)
    if sim._core is None:
        pytest.skip("native event core unavailable in this environment")
    sim.control_active = True
    sim.schedule(10, lambda: None)
    with pytest.raises(SimulationError, match="native"):
        sim.run()


def test_pure_dispatch_honours_request_stop_under_control():
    sim = Simulator(seed=1, native=False)
    sim.control_active = True
    seen = []

    def tick(i):
        seen.append(i)
        if i == 2:
            sim.request_stop()

    for i in range(5):
        sim.schedule(10 * (i + 1), tick, i)
    sim.run()
    assert seen == [0, 1, 2]
    # resume: run() clears the stop latch, the rest of the queue drains
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_profiled_dispatch_honours_request_stop_under_control():
    from repro.telemetry.profiler import EngineProfiler

    sim = Simulator(seed=1, profiler=EngineProfiler(), native=False)
    sim.control_active = True
    seen = []

    def tick(i):
        seen.append(i)
        if i == 1:
            sim.request_stop()

    for i in range(4):
        sim.schedule(10 * (i + 1), tick, i)
    sim.run()
    assert seen == [0, 1]
    sim.run()
    assert seen == [0, 1, 2, 3]


def test_validated_dispatch_honours_request_stop_under_control():
    sim = Simulator(seed=1, validate=True, native=False)
    sim.control_active = True
    seen = []

    def tick(i):
        seen.append(i)
        if i == 0:
            sim.request_stop()

    for i in range(3):
        sim.schedule(10 * (i + 1), tick, i)
    sim.run()
    assert seen == [0]
    sim.run()
    assert seen == [0, 1, 2]
