"""Tests for the integrated DCTCP+ sender."""

import pytest

from repro.core.config import DctcpPlusConfig
from repro.core.dctcp_plus import DctcpPlusSender
from repro.core.states import DctcpPlusState
from repro.net.packet import make_ack_packet
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.workloads.ids import next_flow_id

from .helpers import intern

MSS = 1460


def harness(total=40 * MSS, plus=None, **cfg_overrides):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS, **cfg_overrides)
    plus_cfg = DctcpPlusConfig(**(plus or {}))
    s = DctcpPlusSender(
        sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(),
        config=cfg, plus_config=plus_cfg,
    )
    s.send(total)
    sim.run(until=1)
    return sim, s


def ack(sender, ack_seq, ece=False):
    sender.on_packet(
        intern(
            sender.sim,
            make_ack_packet(sender.flow_id, sender.dst_node_id, sender.host.node_id, ack_seq, ece=ece),
        )
    )


class TestConstruction:
    def test_floor_defaults_to_one_mss(self):
        sim, s = harness()
        assert s.config.min_cwnd_bytes == 1 * MSS

    def test_floor_override_via_plus_config(self):
        sim, s = harness(plus={"min_cwnd_mss": 2.0})
        assert s.config.min_cwnd_bytes == 2 * MSS

    def test_pacer_installed(self):
        sim, s = harness()
        assert s.pacer is not None
        assert s.machine.state is DctcpPlusState.NORMAL

    def test_ecn_enabled(self):
        sim, s = harness()
        assert s.config.ecn_enabled


class TestStateMachineCoupling:
    def test_ece_above_floor_does_not_engage(self):
        sim, s = harness()
        s.alpha = 0.0  # DCTCP reduction is a no-op, cwnd stays above floor
        assert s.cwnd > s.config.min_cwnd_bytes
        ack(s, MSS, ece=True)
        assert s.cwnd > s.config.min_cwnd_bytes
        assert s.state is DctcpPlusState.NORMAL

    def test_marked_ack_at_cwnd2_hits_floor_and_engages(self):
        """The kernel-integer reduction makes cwnd=2 drop straight to the
        1 MSS floor on any marked window, which is what arms the machine."""
        sim, s = harness()
        ack(s, MSS, ece=True)  # alpha starts at 1.0
        assert s.cwnd == s.config.min_cwnd_bytes
        assert s.state is DctcpPlusState.TIME_INC

    def test_ece_at_floor_engages(self):
        sim, s = harness()
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes
        ack(s, MSS, ece=True)
        assert s.state is DctcpPlusState.TIME_INC
        assert s.slow_time_ns > 0

    def test_ece_while_engaged_keeps_growing_even_above_floor(self):
        sim, s = harness()
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes
        ack(s, MSS, ece=True)
        level = s.slow_time_ns
        s.cwnd = 3 * MSS  # grew past the floor
        ack(s, 2 * MSS, ece=True)
        assert s.state is DctcpPlusState.TIME_INC
        assert s.slow_time_ns > level

    def test_clean_ack_relaxes(self):
        sim, s = harness()
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes
        ack(s, MSS, ece=True)
        ack(s, 2 * MSS, ece=False)
        assert s.state is DctcpPlusState.TIME_DES

    def test_timeout_counts_as_congestion(self):
        sim, s = harness()
        sim.run(until=sim.now + 20 * MS)  # silent loss -> RTO
        assert s.stats.timeout_count >= 1
        assert s.state is DctcpPlusState.TIME_INC

    def test_rto_recovery_acks_keep_machine_engaged(self):
        sim, s = harness()
        high_water = s.snd_nxt
        sim.run(until=sim.now + 6 * MS)  # one RTO
        level = s.slow_time_ns
        # a *clean* ack during go-back-N recovery still counts as congestion
        ack(s, s.snd_una + MSS, ece=False)
        assert s.state is DctcpPlusState.TIME_INC
        assert s.slow_time_ns > level


class TestPacingBehaviour:
    def test_transmissions_spaced_by_slow_time(self):
        sim, s = harness()
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes
        ack(s, MSS, ece=True)   # engage
        ack(s, 2 * MSS, ece=True)  # drain the flight; next packet pacer-held
        slow = s.slow_time_ns
        assert slow > 0
        release = sim.now + slow
        sent_before = s.stats.data_packets_sent
        sim.run(until=release - 1)
        assert s.stats.data_packets_sent == sent_before  # still held
        sim.run(until=release + 1)
        assert s.stats.data_packets_sent == sent_before + 1

    def test_normal_state_sends_immediately(self):
        sim, s = harness()
        sent_before = s.stats.data_packets_sent
        ack(s, MSS, ece=False)
        assert s.stats.data_packets_sent > sent_before

    def test_no_spurious_rto_while_paced(self):
        """A pacer hold longer than RTO_min must not fire the retransmission
        timer (nothing is in flight)."""
        sim, s = harness()
        s.cwnd = s.config.min_cwnd_bytes
        s.ssthresh = s.config.min_cwnd_bytes
        # engage with a slow_time far beyond the 5 ms RTO_min
        s.machine.state = DctcpPlusState.TIME_INC
        s.machine.slow_time_ns = 20 * MS
        ack(s, s.snd_nxt)  # everything in flight acked; next send deferred 20 ms
        sim.run(until=sim.now + 15 * MS)
        assert s.stats.timeout_count == 0


class TestSlowTimeViews:
    def test_slow_time_property(self):
        sim, s = harness()
        assert s.slow_time_ns == s.machine.slow_time_ns

    def test_srtt_unit_source_installed_in_srtt_mode(self):
        sim, s = harness(plus={"backoff_unit_mode": "srtt"})
        assert s.machine.unit_source is not None
        assert s.machine.unit_source() == pytest.approx(100 * US, rel=0.01)

    def test_fixed_mode_has_no_unit_source(self):
        sim, s = harness(plus={"backoff_unit_mode": "fixed"})
        assert s.machine.unit_source is None
