"""Tests for the struct-of-arrays packet pool (handles, recycling, growth)."""

import pytest

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.packet import ACK_BYTES, HEADER_BYTES, make_ack_packet, make_data_packet
from repro.net.pool import DEFAULT_CAPACITY, F_ACK, F_CE, PacketPool, PoolError
from repro.sim.engine import Simulator


class TestAllocation:
    def test_data_fields(self):
        pool = PacketPool()
        h = pool.alloc_data(7, 1, 2, seq=1460, payload_len=1460,
                            ect=True, is_retransmit=False, packet_id=42)
        v = pool.view(h)
        assert (v.flow_id, v.src, v.dst) == (7, 1, 2)
        assert v.seq == 1460 and v.end_seq == 2920
        assert v.wire_bytes == 1460 + HEADER_BYTES
        assert v.packet_id == 42
        assert v.ect and not v.ce and not v.is_ack and not v.is_retransmit

    def test_ack_fields(self):
        pool = PacketPool()
        h = pool.alloc_ack(7, 2, 1, ack_seq=2920, ece=True, inc=False, packet_id=43)
        v = pool.view(h)
        assert v.is_ack and v.ece and not v.inc
        assert v.ack_seq == 2920
        assert v.wire_bytes == ACK_BYTES

    def test_control_fields(self):
        pool = PacketPool()
        h = pool.alloc_control(9, 0, 3, wire_bytes=64, packet_id=44)
        v = pool.view(h)
        assert not v.is_ack and v.wire_bytes == 64 and v.payload_len == 0

    def test_intern_round_trips_every_flag(self):
        pool = PacketPool()
        pkt = make_data_packet(5, 3, 4, seq=100, payload_len=200, ect=True)
        pkt.ce = True
        pkt.is_retransmit = True
        v = pool.view(pool.intern(pkt))
        assert (v.flow_id, v.src, v.dst, v.seq, v.payload_len) == (5, 3, 4, 100, 200)
        assert v.ect and v.ce and v.is_retransmit and not v.is_ack
        ack = make_ack_packet(5, 4, 3, ack_seq=300, ece=True)
        ack.inc = True
        va = pool.view(pool.intern(ack))
        assert va.is_ack and va.ece and va.inc and va.ack_seq == 300

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PacketPool(0)

    def test_of_attaches_to_simulator_once(self):
        sim = Simulator()
        assert sim.pool is None
        pool = PacketPool.of(sim)
        assert sim.pool is pool
        assert PacketPool.of(sim) is pool


class TestRecycling:
    def test_freed_handle_is_reused_lifo(self):
        pool = PacketPool()
        h = pool.alloc_control(1, 0, 1, 64, 0)
        pool.free(h)
        assert pool.alloc_control(1, 0, 1, 64, 1) == h  # LIFO: same slot back

    def test_conservation_counters(self):
        pool = PacketPool()
        handles = [pool.alloc_control(1, 0, 1, 64, i) for i in range(10)]
        for h in handles[:4]:
            pool.free(h)
        assert pool.allocated_total == 10
        assert pool.freed_total == 4
        assert pool.live_count == 6
        assert sum(pool.live) == 6

    def test_double_free_raises(self):
        pool = PacketPool()
        h = pool.alloc_control(1, 0, 1, 64, 0)
        pool.free(h)
        with pytest.raises(PoolError, match="dead packet handle"):
            pool.free(h)

    def test_stale_view_raises(self):
        pool = PacketPool()
        h = pool.alloc_control(1, 0, 1, 64, 0)
        pool.free(h)
        with pytest.raises(PoolError, match="view of dead"):
            pool.view(h)

    def test_never_allocated_handle_raises(self):
        pool = PacketPool()
        with pytest.raises(PoolError):
            pool.free(3)


class TestGrowth:
    def test_doubles_when_exhausted(self):
        pool = PacketPool(capacity=4)
        handles = [pool.alloc_control(1, 0, 1, 64, i) for i in range(5)]
        assert pool.capacity == 8
        assert len(set(handles)) == 5  # all distinct
        for h in handles:
            pool.free(h)
        assert pool.live_count == 0

    def test_bound_column_refs_survive_growth(self):
        """Components bind columns once; growth must extend in place."""
        pool = PacketPool(capacity=2)
        wire_col = pool.wire_bytes
        flags_col = pool.flags
        for i in range(10):
            pool.alloc_control(1, 0, 1, 100 + i, i)
        assert pool.capacity == 16
        assert wire_col is pool.wire_bytes
        assert flags_col is pool.flags
        assert wire_col[9] == 109

    def test_growth_under_incast_burst(self):
        """A large synchronized burst grows the default pool organically."""
        sim = Simulator()
        pool = PacketPool.of(sim)
        handles = [
            pool.alloc_data(i, i, 0, seq=0, payload_len=1460,
                            ect=True, is_retransmit=False, packet_id=i)
            for i in range(4 * DEFAULT_CAPACITY)
        ]
        assert pool.capacity >= 4 * DEFAULT_CAPACITY
        assert pool.live_count == 4 * DEFAULT_CAPACITY
        for h in handles:
            pool.free(h)
        assert pool.live_count == 0
        assert len(pool._free) == pool.capacity


class TestMarkingThroughFlags:
    def test_switch_style_ce_mark(self):
        pool = PacketPool()
        h = pool.alloc_data(1, 0, 1, 0, 1460, ect=True, is_retransmit=False, packet_id=0)
        pool.flags[h] |= F_CE  # what DropTailQueue does past the threshold
        v = pool.view(h)
        assert v.ce and v.ect
        assert not pool.flags[h] & F_ACK


class TestConservationUnderValidation:
    """Full scenarios with the invariant checker sweeping the pool."""

    def test_incast_scenario_validates_and_drains(self):
        spec = ScenarioSpec.create(
            protocol="dctcp+", n_flows=16, rounds=2, seed=3,
            incast_overrides={"total_bytes": 64 * 1024},
        )
        result = run_scenario(spec, validate=True)
        assert result.events_processed > 0

    def test_fuzzed_scenarios_conserve_handles(self):
        """Fuzzer seeds run validated: the checker sweeps pool conservation
        (live flags vs allocated-freed, freelist disjointness) throughout."""
        from repro.validate.fuzz import check_seed

        for seed in (11, 12):
            spec, digest, events = check_seed(seed)
            assert events > 0
            assert digest
