"""Regenerate the committed golden files from the current code.

Run only when a behaviour change is intentional::

    PYTHONPATH=src python tests/regen_goldens.py           # digests.json
    PYTHONPATH=src python tests/regen_goldens.py --trace   # + golden trace
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from golden_specs import TINY_KWARGS, digest_experiment  # noqa: E402


def regen_digests() -> None:
    digests = {}
    for experiment_id in TINY_KWARGS:
        started = time.perf_counter()
        digests[experiment_id] = digest_experiment(experiment_id)
        print(
            f"{experiment_id}: {digests[experiment_id][:16]}... "
            f"({time.perf_counter() - started:.1f}s)"
        )
    out = Path(__file__).parent / "golden" / "digests.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(digests, indent=2) + "\n")
    print(f"wrote {out}")


def regen_trace() -> None:
    from test_trace_golden import GOLDEN_PATH, golden_trace_jsonl

    text = golden_trace_jsonl()
    Path(GOLDEN_PATH).write_text(text, encoding="utf-8", newline="")
    print(f"wrote {GOLDEN_PATH} ({len(text.splitlines())} records)")


def main(argv) -> None:
    regen_digests()
    if "--trace" in argv:
        regen_trace()


if __name__ == "__main__":
    main(sys.argv[1:])
