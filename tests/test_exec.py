"""Tests for the scenario/execution layer (:mod:`repro.exec`).

The load-bearing guarantees:

- a :class:`ScenarioSpec` is frozen, hashable and fully describes one
  simulation point, with a cache key that changes whenever any field does;
- ``SerialExecutor`` and ``ParallelExecutor`` produce **identical**
  aggregates for the same batch (process fan-out must not perturb results);
- a cache-hit run returns results equal to the cold run.
"""

import dataclasses
import json

import pytest

from repro.exec import (
    CACHE_DIR_ENV,
    ParallelExecutor,
    PointResult,
    ResultCache,
    ScenarioSpec,
    SerialExecutor,
    WORKERS_ENV,
    get_executor,
    make_executor,
    run_scenario,
    using_executor,
)

def tiny_spec(protocol="dctcp", n_flows=2, seed=1, **kwargs):
    return ScenarioSpec.create(protocol, n_flows, rounds=1, seed=seed, **kwargs)


TINY_BATCH = [
    tiny_spec("dctcp", 2, seed=1),
    tiny_spec("dctcp", 2, seed=2),
    tiny_spec("dctcp+", 3, seed=1),
    tiny_spec("tcp", 2, seed=1),
]


class TestScenarioSpec:
    def test_frozen_and_hashable(self):
        spec = tiny_spec()
        assert spec == tiny_spec()
        assert len({spec, tiny_spec(), tiny_spec(seed=2)}) == 2
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.n_flows = 99

    def test_cache_key_is_stable(self):
        assert tiny_spec().cache_key() == tiny_spec().cache_key()

    def test_cache_key_changes_with_every_field(self):
        base = tiny_spec()
        variants = [
            tiny_spec("dctcp+"),
            tiny_spec(n_flows=3),
            tiny_spec(seed=2),
            ScenarioSpec.create("dctcp", 2, rounds=2, seed=1),
            tiny_spec(rto_min_ms=10.0),
            tiny_spec(min_cwnd_mss=1.0),
            tiny_spec(plus_overrides={"divisor_factor": 8.0}),
            tiny_spec(with_background=True),
            tiny_spec(sample_queue=True),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_create_maps_convenience_knobs_to_tcp_overrides(self):
        spec = tiny_spec(rto_min_ms=10.0, min_cwnd_mss=1.0)
        overrides = dict(spec.tcp_overrides)
        assert overrides["rto_min_ns"] == 10_000_000
        assert overrides["min_cwnd_mss"] == 1.0

    def test_to_dict_is_json_serializable(self):
        spec = tiny_spec(plus_overrides={"divisor_factor": 8.0})
        roundtrip = json.loads(json.dumps(spec.to_dict()))
        assert roundtrip == spec.to_dict()

    def test_label_names_the_point(self):
        assert tiny_spec("dctcp+", 40, seed=3).label() == "dctcp+ N=40 seed=3"


class TestRunScenario:
    def test_smoke_and_telemetry(self):
        result = run_scenario(tiny_spec())
        assert result.protocol == "dctcp"
        assert result.n_flows == 2
        assert result.seeds == (1,)
        assert result.goodput_mbps > 0
        assert result.events_processed > 0
        assert result.wall_time_s >= 0
        assert result.bg_throughput_mbps is None

    def test_flow_ids_renumbered_per_scenario(self):
        # next_flow_id() is process-global; run_scenario must renumber so
        # the same spec yields the same stats in any worker process.
        first = run_scenario(tiny_spec())
        second = run_scenario(tiny_spec())
        assert sorted({fs.flow_id for fs in first.flow_stats}) == [0, 1]
        assert first == second

    def test_background_scenario_reports_bg_throughput(self):
        result = run_scenario(tiny_spec(with_background=True))
        assert result.bg_throughput_mbps is not None
        assert result.bg_throughput_mbps > 0


class TestExecutors:
    def test_serial_and_parallel_agree(self):
        serial = SerialExecutor().map(TINY_BATCH)
        parallel = ParallelExecutor(workers=2).map(TINY_BATCH)
        assert serial == parallel

    def test_results_preserve_submission_order(self):
        results = ParallelExecutor(workers=2).map(TINY_BATCH)
        labels = [(r.protocol, r.n_flows, r.seeds) for r in results]
        assert labels == [(s.protocol, s.n_flows, (s.seed,)) for s in TINY_BATCH]

    def test_progress_callback_sees_every_point(self):
        events = []
        SerialExecutor(progress=events.append).map(TINY_BATCH[:2])
        assert [(e.done, e.total) for e in events] == [(1, 2), (2, 2)]
        assert all(not e.cached for e in events)
        assert events[0].result.goodput_mbps > 0

    def test_parallel_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)


class TestResultCache:
    def test_cold_then_warm_run_identical(self, tmp_path):
        specs = TINY_BATCH[:2]
        cold_cache = ResultCache(tmp_path / "c")
        cold = SerialExecutor(cache=cold_cache).map(specs)
        assert cold_cache.misses == 2 and cold_cache.hits == 0
        assert len(cold_cache) == 2

        warm_cache = ResultCache(tmp_path / "c")
        events = []
        warm = SerialExecutor(cache=warm_cache, progress=events.append).map(specs)
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert warm == cold
        assert all(e.cached for e in events)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = TINY_BATCH[0]
        cache = ResultCache(tmp_path)
        cache.path_for(spec).write_text("not json{")
        assert cache.get(spec) is None
        assert (cache.hits, cache.misses) == (0, 1)
        result = SerialExecutor(cache=cache).map([spec])[0]
        assert cache.get(spec) == result

    def test_truncated_entry_counts_exactly_one_miss(self, tmp_path):
        spec = TINY_BATCH[0]
        cache = ResultCache(tmp_path)
        result = SerialExecutor(cache=cache).map([spec])[0]
        assert result is not None
        full = cache.path_for(spec).read_text()
        cache.path_for(spec).write_text(full[: len(full) // 2])
        cache.hits = cache.misses = 0
        assert cache.get(spec) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_non_object_entry_counts_exactly_one_miss(self, tmp_path):
        # A file truncated all the way down to valid-but-wrong JSON ("null",
        # a bare list) must be a counted miss, not an executor crash.
        spec = TINY_BATCH[0]
        cache = ResultCache(tmp_path)
        for blob in ("null", "[]", '"entry"'):
            cache.path_for(spec).write_text(blob)
            cache.hits = cache.misses = 0
            assert cache.get(spec) is None
            assert (cache.hits, cache.misses) == (0, 1)

    def test_failed_writes_are_counted_and_surfaced(self, tmp_path):
        # "Best effort" must not mean silent: an unwritable cache
        # directory (stand-in for a full disk) counts every failed put,
        # and the executor's progress events carry the counter so the
        # stderr progress line can show it.
        spec = TINY_BATCH[0]
        cache = ResultCache(tmp_path / "cache")
        cache.directory = tmp_path / "vanished"  # writes now fail with ENOENT
        events = []
        SerialExecutor(cache=cache, progress=events.append).map([spec])
        assert cache.write_errors == 1
        assert events[-1].cache_write_errors == 1

    def test_progress_reports_zero_write_errors_without_a_cache(self):
        events = []
        SerialExecutor(progress=events.append).map([TINY_BATCH[0]])
        assert events[-1].cache_write_errors == 0

    def test_entry_with_mismatched_spec_is_a_miss(self, tmp_path):
        spec = TINY_BATCH[0]
        cache = ResultCache(tmp_path)
        result = SerialExecutor(cache=cache).map([spec])[0]
        payload = json.loads(cache.path_for(spec).read_text())
        payload["spec"]["n_flows"] = 999
        cache.path_for(spec).write_text(json.dumps(payload))
        cache.hits = cache.misses = 0
        assert cache.get(spec) is None
        assert (cache.hits, cache.misses) == (0, 1)
        assert result is not None


class TestPointResult:
    def test_aggregate_means_and_sums(self):
        a, b = SerialExecutor().map(TINY_BATCH[:2])
        merged = PointResult.aggregate([a, b])
        assert merged.seeds == (1, 2)
        assert merged.goodput_mbps == pytest.approx((a.goodput_mbps + b.goodput_mbps) / 2)
        assert merged.timeouts == a.timeouts + b.timeouts
        assert merged.rounds == a.rounds + b.rounds
        assert len(merged.flow_stats) == len(a.flow_stats) + len(b.flow_stats)
        assert merged.events_processed == a.events_processed + b.events_processed

    def test_aggregate_rejects_mixed_points(self):
        a = run_scenario(tiny_spec("dctcp", 2))
        b = run_scenario(tiny_spec("dctcp", 3))
        with pytest.raises(ValueError):
            PointResult.aggregate([a, b])

    def test_json_roundtrip_is_lossless(self):
        result = run_scenario(tiny_spec(sample_queue=True))
        roundtrip = PointResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert roundtrip == result


class TestExecutorContext:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        executor = make_executor()
        assert isinstance(executor, SerialExecutor)
        assert executor.cache is None

    def test_workers_argument_selects_parallel(self):
        executor = make_executor(workers=3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_env_fallbacks(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env-cache"))
        executor = make_executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 4
        assert executor.cache is not None

    def test_using_executor_restores_previous(self):
        outer = SerialExecutor()
        inner = SerialExecutor()
        with using_executor(outer):
            assert get_executor() is outer
            with using_executor(inner):
                assert get_executor() is inner
            assert get_executor() is outer
