"""Tests for persistent background (long) flows."""

import pytest

from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.workloads.background import BackgroundConfig, BackgroundTraffic, ThroughputSample
from repro.workloads.protocols import spec_for


def run_background(duration_ns=50 * MS, n_flows=2, **cfg_overrides):
    sim = Simulator(seed=1)
    tree = build_two_tier(sim)
    bg = BackgroundTraffic(
        sim, tree, spec_for("dctcp"), BackgroundConfig(n_flows=n_flows, **cfg_overrides)
    )
    bg.start()
    sim.run(until=duration_ns)
    return sim, tree, bg


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackgroundConfig(n_flows=0)
        with pytest.raises(ValueError):
            BackgroundConfig(chunk_bytes=0)


class TestSaturation:
    def test_flows_keep_sending(self):
        sim, tree, bg = run_background()
        # two 1 Gbps-capable flows sharing a 1 Gbps bottleneck for 50 ms
        total = bg.total_delivered_bytes
        assert total > 4_000_000  # at least ~65% utilization

    def test_refill_keeps_backlog(self):
        sim, tree, bg = run_background()
        for sender in bg.senders:
            assert sender.total_bytes > bg.config.chunk_bytes  # refilled

    def test_two_flows_share_fairly(self):
        sim, tree, bg = run_background(duration_ns=100 * MS)
        a = bg.receivers[0].bytes_delivered
        b = bg.receivers[1].bytes_delivered
        assert a > 0 and b > 0
        assert 0.5 < a / b < 2.0

    def test_sources_are_distinct_servers(self):
        sim, tree, bg = run_background()
        assert bg.senders[0].host is not bg.senders[1].host

    def test_stop_closes_endpoints(self):
        sim, tree, bg = run_background()
        bg.stop()
        assert all(s.closed for s in bg.senders)

    def test_start_twice_rejected(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        bg = BackgroundTraffic(sim, tree, spec_for("dctcp"))
        bg.start()
        with pytest.raises(RuntimeError):
            bg.start()


class TestThroughputReporting:
    def test_interval_samples_emitted(self):
        sim, tree, bg = run_background(duration_ns=80 * MS, report_interval_bytes=1_000_000)
        assert len(bg.samples) >= 2
        for sample in bg.samples:
            assert sample.throughput_bps > 0

    def test_sample_math(self):
        s = ThroughputSample(flow_index=0, start_ns=0, end_ns=8_000_000, bytes=1_000_000)
        assert s.throughput_bps == pytest.approx(1e9)

    def test_mean_throughput_fallback_without_samples(self):
        sim, tree, bg = run_background(duration_ns=20 * MS)
        # default report interval (64 MB) not reached in 20 ms
        assert not bg.samples
        assert bg.mean_throughput_bps() > 0

    def test_per_flow_filter(self):
        sim, tree, bg = run_background(duration_ns=80 * MS, report_interval_bytes=1_000_000)
        all_flows = bg.mean_throughput_bps()
        flow0 = bg.mean_throughput_bps(flow_index=0)
        assert all_flows > 0 and flow0 > 0
