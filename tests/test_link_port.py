"""Tests for links and output ports (serialization/propagation pump)."""

import pytest

from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import make_data_packet
from repro.net.pool import PacketPool
from repro.net.port import OutputPort
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.units import GBPS

from .helpers import intern


class Sink(Node):
    """Records (arrival_time, handle)."""

    __slots__ = ("arrivals",)

    def __init__(self, sim):
        super().__init__(sim, "sink")
        self.arrivals = []

    def receive(self, h):
        self.arrivals.append((self.sim.now, h))


def make_port(sim, sink, rate=GBPS, prop=10_000, capacity=1_000_000):
    link = Link(sink, rate, prop)
    return OutputPort(sim, link, DropTailQueue(capacity, None, pool=PacketPool.of(sim)))


class TestLink:
    def test_serialization_delay(self):
        link = Link(None, GBPS, 0)
        pkt = make_data_packet(1, 0, 1, seq=0, payload_len=1460)
        assert link.serialization_delay(pkt.wire_bytes) == 12_000  # 1500 B at 1 Gbps

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Link(None, 0, 10)

    def test_rejects_negative_prop(self):
        with pytest.raises(ValueError):
            Link(None, GBPS, -1)

    def test_delivery_counters(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink)
        port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=0, payload_len=1460)))
        sim.run_until_idle()
        assert port.link.delivered_packets == 1
        assert port.link.delivered_bytes == 1500


class TestOutputPort:
    def test_single_packet_timing(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink, prop=10_000)
        port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=0, payload_len=1460)))
        sim.run_until_idle()
        # 12 us serialization + 10 us propagation
        assert sink.arrivals[0][0] == 22_000

    def test_back_to_back_spacing_is_serialization(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink)
        for i in range(3):
            port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=i, payload_len=1460)))
        sim.run_until_idle()
        times = [t for t, _ in sink.arrivals]
        assert times[1] - times[0] == 12_000
        assert times[2] - times[1] == 12_000

    def test_fifo_order(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink)
        handles = [
            intern(sim, make_data_packet(1, 0, sink.node_id, seq=i, payload_len=100))
            for i in range(10)
        ]
        for h in handles:
            port.send(h)
        sim.run_until_idle()
        assert [h for _, h in sink.arrivals] == handles

    def test_pump_restarts_after_idle(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink)
        port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=0, payload_len=1460)))
        sim.run_until_idle()
        t_first = sink.arrivals[0][0]
        port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=1, payload_len=1460)))
        sim.run_until_idle()
        assert sink.arrivals[1][0] == sim.now
        assert sink.arrivals[1][0] > t_first

    def test_send_returns_false_on_drop(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink, capacity=1500)
        # first packet starts serializing immediately (leaves the queue),
        # second occupies the whole buffer, third is tail-dropped
        assert port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=0, payload_len=1460)))
        assert port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=1, payload_len=1460)))
        assert not port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=2, payload_len=1460)))

    def test_backlog_excludes_in_flight_frame(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink)
        port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=0, payload_len=1460)))
        port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=1, payload_len=1460)))
        # first frame started serializing immediately, second waits
        assert port.backlog_bytes == 1500

    def test_tx_counters(self):
        sim = Simulator()
        sink = Sink(sim)
        port = make_port(sim, sink)
        for i in range(4):
            port.send(intern(sim, make_data_packet(1, 0, sink.node_id, seq=i, payload_len=1460)))
        sim.run_until_idle()
        assert port.tx_packets == 4
        assert port.tx_bytes == 4 * 1500
