"""External scripted policies: registry, ``external:`` resolution, and the
byte-for-byte DCTCP+ equivalence that proves the CC event adapter lossless."""

from __future__ import annotations

import json

import pytest

from repro.control import DctcpPlusScripted, DeadlineGreedy, get_policy, policy_names
from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.tcp.cc import EXTERNAL_PREFIX, cc_names, get_cc


def _payload(result) -> dict:
    payload = result.to_dict()
    payload.pop("wall_time_s", None)
    return payload


# -- registry / resolution ----------------------------------------------------------
def test_policy_registry_contents():
    names = policy_names()
    assert "dctcp-plus-scripted" in names
    assert "deadline-greedy" in names
    assert get_policy("dctcp-plus-scripted") is DctcpPlusScripted
    assert get_policy("deadline-greedy") is DeadlineGreedy


def test_unknown_policy_raises():
    with pytest.raises(ValueError):
        get_policy("no-such-policy")


def test_external_names_resolve_without_polluting_the_registry():
    before = cc_names()
    cc = get_cc(EXTERNAL_PREFIX + "dctcp-plus-scripted")
    assert cc.name == "external:dctcp-plus-scripted"
    assert cc.slow_time  # metadata mirrors the policy template
    assert get_cc(EXTERNAL_PREFIX + "deadline-greedy").deadline_aware
    # external names are resolvable, never enumerated: the arena's default
    # field (and its golden digest) must not change under them.
    assert cc_names() == before
    assert "external:dctcp-plus-scripted" not in cc_names()


def test_unknown_external_name_raises():
    with pytest.raises(ValueError):
        get_cc(EXTERNAL_PREFIX + "bogus")


# -- the adapter-lossless proof -----------------------------------------------------
@pytest.mark.parametrize("n_flows", [4, 16])
def test_scripted_dctcp_plus_is_byte_identical_to_builtin(n_flows):
    """The scripted policy re-expresses the DCTCP+ slow_time law through the
    CC event protocol; on the paper's incast point it must reproduce the
    builtin sender's results exactly — same goodput, same timeouts, same
    per-flow stats, same event count."""
    builtin = ScenarioSpec.create(protocol="dctcp+", n_flows=n_flows, rounds=2, seed=1)
    external = ScenarioSpec.create(
        protocol="dctcp+", n_flows=n_flows, rounds=2, seed=1,
        cc="external:dctcp-plus-scripted",
    )
    assert _payload(run_scenario(builtin)) == _payload(run_scenario(external))


def test_scripted_equivalence_golden_digest():
    """Pin the equivalence as a digest so a drift in *either* leg trips it."""
    import hashlib

    spec = ScenarioSpec.create(
        protocol="dctcp+", n_flows=8, rounds=2, seed=1,
        cc="external:dctcp-plus-scripted",
    )
    blob = json.dumps(_payload(run_scenario(spec)), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).hexdigest()

    reference = ScenarioSpec.create(protocol="dctcp+", n_flows=8, rounds=2, seed=1)
    ref_blob = json.dumps(
        _payload(run_scenario(reference)), sort_keys=True, separators=(",", ":")
    )
    assert digest == hashlib.sha256(ref_blob.encode()).hexdigest()


def test_scripted_srtt_backoff_mode_matches_builtin():
    overrides = {"backoff_unit_mode": "srtt"}
    builtin = ScenarioSpec.create(
        protocol="dctcp+", n_flows=8, rounds=2, seed=3, plus_overrides=overrides
    )
    external = ScenarioSpec.create(
        protocol="dctcp+", n_flows=8, rounds=2, seed=3, plus_overrides=overrides,
        cc="external:dctcp-plus-scripted",
    )
    assert _payload(run_scenario(builtin)) == _payload(run_scenario(external))


# -- deadline-greedy ---------------------------------------------------------------
def test_deadline_greedy_runs_and_differs_from_dctcp_under_deadlines():
    base = dict(n_flows=16, rounds=2, seed=1,
                incast_overrides={"flow_deadline_ns": 2_000_000})
    greedy = run_scenario(
        ScenarioSpec.create(protocol="dctcp", cc="external:deadline-greedy", **base)
    )
    plain = run_scenario(ScenarioSpec.create(protocol="dctcp", **base))
    assert greedy.events_processed > 0
    # The greedy policy suppresses cwnd reduction for deadline-threatened
    # flows, so its trajectory must diverge from plain DCTCP.
    assert _payload(greedy) != _payload(plain)


def test_external_spec_cache_key_distinguishes_policies():
    a = ScenarioSpec.create(protocol="dctcp", cc="external:dctcp-plus-scripted",
                            n_flows=4, rounds=1, seed=1)
    b = ScenarioSpec.create(protocol="dctcp", cc="external:deadline-greedy",
                            n_flows=4, rounds=1, seed=1)
    assert a.cache_key() != b.cache_key()


def test_fuzzer_samples_external_protocols():
    from repro.validate.fuzz import FUZZ_PROTOCOLS

    assert "external:dctcp-plus-scripted" in FUZZ_PROTOCOLS
    assert "external:deadline-greedy" in FUZZ_PROTOCOLS
