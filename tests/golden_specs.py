"""Canonical tiny-N invocations of every registry experiment.

The golden-digest test (``tests/test_golden_digests.py``) runs each
registry experiment with these reduced kwargs and compares a SHA-256
digest of the resulting :class:`ExperimentResult` JSON against the
committed ``tests/golden/digests.json``.  The digests pin the *semantic*
output of the whole stack — engine, network, TCP variants, workloads,
drivers — so performance work on the hot path cannot silently change
simulation results.

Regenerate (only when an intentional behaviour change lands) with::

    PYTHONPATH=src python tests/regen_goldens.py
"""

from __future__ import annotations

import hashlib
from typing import Dict

#: Reduced-scale kwargs per experiment id.  Sizes are chosen so the whole
#: registry runs in well under a minute while still exercising every
#: protocol variant, background traffic, queue sampling and the benchmark
#: traffic mix.
TINY_KWARGS: Dict[str, dict] = {
    "fig1": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    "fig2": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    "table1": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    "fig6": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    "fig7": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    "fig8": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    "fig9": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    # A stalled TCP round simulates its full deadline's worth of background
    # traffic; cap it low so the golden run stays fast.
    "fig11": dict(n_values=(4, 8), rounds=2, seeds=(1,), round_deadline_ns=250_000_000),
    "fig12": dict(n_values=(4, 8), rounds=2, seeds=(1,), round_deadline_ns=250_000_000),
    "fig13": dict(n_queries=12, n_background=12, n_short=4, query_fanout=6, seed=1),
    "fig14": dict(n_flows=6, bytes_per_flow=128 * 1024, rounds=2, seed=1),
    # Every registered CC (including pulser/tbtcp and their inc-bit network
    # path) over a small fan-in spread; traced, so the digest also pins the
    # telemetry-derived taxonomy columns.
    "arena": dict(n_values=(4, 8), rounds=2, seeds=(1,)),
    # The full {two-tier, dumbbell, fat-tree} x {incast, http, swarm} matrix
    # at tiny scale: pins the topology builders, seeded ECMP path selection
    # and both closed-loop workloads end to end.
    "topo-matrix": dict(n_flows=4, rounds=2, seeds=(1,)),
    # ControlEnv autopilot + scripted throttle agent, plus the external
    # policies through the batch executor: pins the CC event protocol, the
    # env's observation/window machinery and the external: resolution path.
    "control-demo": dict(n_flows=8, rounds=2, seed=1),
}


#: (runner, frozen kwargs) -> digest.  fig11/fig12 share one driver and
#: identical tiny kwargs, so the second id reuses the first run's digest.
_memo: Dict[tuple, str] = {}


def digest_experiment(experiment_id: str) -> str:
    """Run one registry experiment at tiny scale and digest its JSON."""
    from repro.experiments.registry import get_runner

    runner = get_runner(experiment_id)
    kwargs = TINY_KWARGS[experiment_id]
    key = (runner, tuple(sorted(kwargs.items())))
    if key not in _memo:
        result = runner(**kwargs)
        _memo[key] = hashlib.sha256(result.to_json().encode()).hexdigest()
    return _memo[key]
