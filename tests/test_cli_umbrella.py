"""The ``python -m repro`` umbrella CLI and the shared flag plumbing."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.__main__ import main as umbrella_main

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _run_module(module, *args):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


# -- umbrella dispatch ------------------------------------------------------------
def test_help_lists_every_command(capsys):
    assert umbrella_main(["--help"]) == 0
    out = capsys.readouterr().out
    for command in ("experiments", "bench", "fuzz", "trace", "sweep"):
        assert command in out


def test_version_flag(capsys):
    import repro

    assert umbrella_main(["--version"]) == 0
    assert repro.__version__ in capsys.readouterr().out


def test_missing_command_fails(capsys):
    assert umbrella_main([]) == 2
    assert "missing command" in capsys.readouterr().err


def test_unknown_command_fails(capsys):
    assert umbrella_main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_global_flag_requires_value(capsys):
    assert umbrella_main(["--workers"]) == 2
    assert umbrella_main(["--workers", "zero"]) == 2


def test_bench_list_via_umbrella(capsys):
    assert umbrella_main(["bench", "--list"]) == 0
    assert "incast-dctcp-n64" in capsys.readouterr().out


def test_experiments_list_via_umbrella(capsys):
    assert umbrella_main(["experiments", "--list"]) == 0
    assert "table1" in capsys.readouterr().out


def test_workers_and_cache_dir_become_env(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache = str(tmp_path / "cache")
    assert umbrella_main(["--workers", "2", f"--cache-dir={cache}", "bench", "--list"]) == 0
    assert os.environ["REPRO_WORKERS"] == "2"
    assert os.environ["REPRO_CACHE_DIR"] == cache
    capsys.readouterr()


def test_seed_forwarded_to_trace(tmp_path, capsys, monkeypatch):
    out_path = tmp_path / "trace.jsonl"
    assert umbrella_main(["--seed", "5", "trace", "--quick", "--jsonl", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "seed=5" in out
    assert out_path.exists()


# -- the trace command -------------------------------------------------------------
def test_trace_quick_report(tmp_path, capsys):
    csv_path = tmp_path / "trace.csv"
    assert umbrella_main(["trace", "--quick", "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "timeout taxonomy" in out
    assert "cross-check vs per-flow stats: agree" in out
    assert "queue occupancy" in out
    header = csv_path.read_text().splitlines()[0]
    assert header == "time_ns,kind,subject,value,detail"


def test_trace_jsonl_export_round_trips(tmp_path, capsys):
    from repro.telemetry import read_jsonl

    path = tmp_path / "trace.jsonl"
    assert umbrella_main(["trace", "--quick", "--jsonl", str(path)]) == 0
    capsys.readouterr()
    records = read_jsonl(path)
    assert records and all(r.time_ns >= 0 for r in records)


def test_trace_profile_reports_dispatch_breakdown(capsys):
    assert umbrella_main(["trace", "--quick", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "engine profile:" in out
    assert "events/s" in out


# -- removed entry points -----------------------------------------------------------
@pytest.mark.parametrize("module", ["repro.experiments", "repro.bench"])
def test_old_package_entry_points_are_gone(module):
    """The deprecation shims are removed; the umbrella is the front door."""
    proc = _run_module(module, "--list")
    assert proc.returncode != 0
    assert "No module named" in proc.stderr


def test_old_fuzz_entry_point_is_gone():
    """``python -m repro.validate.fuzz`` is a bare import now: it must not
    run the fuzzer (no __main__ block remains in the module)."""
    proc = _run_module("repro.validate.fuzz", "--seeds", "1")
    assert not proc.stdout.strip()


# -- shared flag group (repro.cli) --------------------------------------------------
def test_common_flags_present_in_subcommand_help():
    from repro.bench.cli import main as bench_main
    from repro.experiments.runner import build_parser as experiments_parser
    from repro.telemetry.cli import build_parser as trace_parser

    exp_help = experiments_parser().format_help()
    assert "common options" in exp_help
    for flag in ("--quick", "--workers", "--cache-dir", "--validate", "--paper"):
        assert flag in exp_help

    trace_help = trace_parser().format_help()
    assert "common options" in trace_help
    for flag in ("--seed", "--quick", "--validate"):
        assert flag in trace_help
    assert bench_main is not None  # bench exposes no build_parser; covered below


def test_validate_flag_exports_env(monkeypatch, capsys):
    # delenv(raising=False) on an absent var registers nothing to restore,
    # so clean up explicitly: a leaked REPRO_VALIDATE=1 would flip every
    # later Simulator() onto the validated dispatch path.
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    try:
        assert umbrella_main(["bench", "--list", "--validate"]) == 0
        assert os.environ["REPRO_VALIDATE"] == "1"
    finally:
        os.environ.pop("REPRO_VALIDATE", None)
    capsys.readouterr()


def test_experiments_cc_flag_rejected_for_non_cc_experiment():
    from repro.experiments.runner import main as experiments_main

    with pytest.raises(SystemExit):
        experiments_main(["fig1", "--cc", "dctcp", "--quick", "--no-progress"])
