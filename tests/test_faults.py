"""Failure-injection tests: lossy links and recovery machinery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.faults import drop_data_once, drop_nth, make_lossy, never, random_loss
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.tcp.timeouts import TimeoutKind
from repro.workloads.ids import next_flow_id

MSS = 1460


def lossy_flow(policy, total=30 * MSS, rto_min=4 * MS):
    """Single flow whose *data direction* switch->receiver link is faulty."""
    sim = Simulator(seed=1)
    tree = build_star(sim, n_senders=1)
    # splice a faulty link into the bottleneck port
    port = tree.bottleneck_port
    port.link = make_lossy(port.link, policy)
    flow = next_flow_id()
    receiver = TcpReceiver(
        sim, tree.aggregator, tree.servers[0].node_id, flow, expected_bytes=total
    )
    cfg = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns(), rto_min_ns=rto_min)
    sender = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow, cfg)
    sender.send(total)
    return sim, sender, receiver, port.link


class TestPolicies:
    def test_never(self):
        policy = never()
        assert not policy(None, 0)

    def test_drop_nth(self):
        policy = drop_nth(1, 3)
        assert [policy(None, i) for i in range(5)] == [False, True, False, True, False]

    def test_random_loss_bounds(self):
        with pytest.raises(ValueError):
            random_loss(random.Random(1), 1.5)

    def test_random_loss_rate(self):
        policy = random_loss(random.Random(1), 0.3)
        drops = sum(policy(None, i) for i in range(10_000))
        assert 0.25 < drops / 10_000 < 0.35

    def test_drop_data_once_targets_seq(self):
        from repro.net.packet import make_ack_packet, make_data_packet

        policy = drop_data_once(MSS)
        ack = make_ack_packet(1, 0, 1, ack_seq=MSS)
        assert not policy(ack, 0)  # ACKs never match
        hit = make_data_packet(1, 0, 1, seq=MSS, payload_len=MSS)
        assert policy(hit, 1)
        assert not policy(hit, 2)  # only once


class TestRecoveryUnderInjectedLoss:
    def test_single_drop_recovers_by_fast_retransmit(self):
        sim, sender, receiver, link = lossy_flow(drop_data_once(2 * MSS))
        sim.run(max_events=2_000_000)
        assert sender.completed
        assert link.injected_drops == 1
        assert sender.stats.fast_retransmits == 1
        assert sender.stats.timeout_count == 0

    def test_tail_drop_forces_timeout(self):
        # drop the very last segment: no later packets -> no dupACKs
        total = 5 * MSS
        sim, sender, receiver, link = lossy_flow(drop_data_once(4 * MSS), total=total)
        sim.run(max_events=2_000_000)
        assert sender.completed
        assert sender.stats.timeout_count >= 1
        kinds = {k for _, k in sender.stats.timeouts}
        assert TimeoutKind.FLOSS in kinds or TimeoutKind.LACK in kinds

    def test_flow_completes_under_random_loss(self):
        sim, sender, receiver, link = lossy_flow(
            random_loss(random.Random(7), 0.05), total=60 * MSS
        )
        sim.run(max_events=5_000_000)
        assert sender.completed
        assert receiver.bytes_delivered == 60 * MSS
        assert link.injected_drops > 0

    def test_back_to_back_rto_keeps_recovery_point(self):
        """Regression: a second RTO must not lower ``rto_recovery_point``.

        Seed 1113 historically deadlocked: the first RTO set the recovery
        point to the old snd_nxt (13140), the go-back-N rewind brought
        snd_nxt down, and a *second* RTO then dropped the recovery point to
        the rewound snd_nxt — after which the receiver's cumulative ACK for
        13140 exceeded ``high_water`` and was discarded forever.
        """
        sim, sender, receiver, link = lossy_flow(
            random_loss(random.Random(1113), 0.10), total=20 * MSS
        )
        sim.run(max_events=5_000_000)
        assert sender.completed
        assert receiver.bytes_delivered == 20 * MSS

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_eventual_delivery_property(self, seed):
        """TCP must deliver everything exactly once under any i.i.d. loss
        pattern at 10%."""
        sim, sender, receiver, link = lossy_flow(
            random_loss(random.Random(seed), 0.10), total=20 * MSS
        )
        sim.run(max_events=5_000_000)
        assert sender.completed
        assert receiver.bytes_delivered == 20 * MSS
        assert receiver.rcv_nxt == 20 * MSS


class TestMidRunSplice:
    """Regression: lossy-link splicing composes with the rebinding
    ``OutputPort.link`` property *and* the event freelist.

    The splice rebinds the port's per-packet fast paths while events
    scheduled through the pre-splice bindings (serializations in flight,
    rearmed RTO timers whose handles may sit on the recycled-event
    freelist) are still pending; none of that may corrupt delivery or the
    port's packet accounting.
    """

    def _run_with_mid_run_splice(self, validate=False, policy_factory=None):
        total = 40 * MSS
        sim = Simulator(seed=2, validate=validate)
        tree = build_star(sim, n_senders=1)
        port = tree.bottleneck_port
        flow = next_flow_id()
        receiver = TcpReceiver(
            sim, tree.aggregator, tree.servers[0].node_id, flow, expected_bytes=total
        )
        cfg = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns(), rto_min_ns=4 * MS)
        sender = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow, cfg)
        sender.send(total)

        state = {}

        def splice():
            # Mid-run: the pump is live and timers are armed.
            assert 0 < port.tx_packets and not sender.completed
            rto_event = sender._rto_event
            assert rto_event is not None and rto_event.deadline >= 0  # armed
            state["tx_before"] = port.tx_packets
            policy = (policy_factory or (lambda: random_loss(random.Random(9), 0.08)))()
            port.link = make_lossy(port.link, policy)
            state["rto_event"] = rto_event

        sim.schedule(400_000, splice)  # ~4 RTTs in: transfer is mid-flight
        sim.run(max_events=5_000_000)
        return sim, sender, receiver, port, state

    def test_splice_mid_run_conserves_delivery(self):
        sim, sender, receiver, port, state = self._run_with_mid_run_splice()
        assert sender.completed
        assert receiver.bytes_delivered == 40 * MSS
        assert receiver.rcv_nxt == 40 * MSS
        link = port.link
        assert link.injected_drops > 0  # the fault actually bit
        # every post-splice transmission was offered to the spliced link
        assert link.offered_packets == port.tx_packets - state["tx_before"]

    def test_splice_mid_run_conserves_port_counts(self):
        sim, sender, receiver, port, state = self._run_with_mid_run_splice()
        q = port.queue
        assert q.enqueued_packets == q.dequeued_packets + len(q)
        assert q.enqueued_bytes == q.dequeued_bytes + q.occupancy_bytes
        assert q.dequeued_packets == port.tx_packets  # pump drained

    def test_no_stale_handle_cancellation_after_splice(self):
        """The RTO handle captured at splice time was rearmed in place and
        eventually recycled; cancelling through the stale reference must
        not kill an unrelated (recycled) event."""
        sim, sender, receiver, port, state = self._run_with_mid_run_splice()
        assert len(sim.queue._free) > 0  # cancels recycled through the freelist
        stale = state["rto_event"]
        assert stale.deadline == -1  # fired or cancelled long ago
        pending_before = len(sim.queue)
        sim.cancel(stale)  # stale handle: must be a no-op
        assert len(sim.queue) == pending_before
        assert sender.completed

    def test_splice_composes_with_invariant_checker(self):
        sim, sender, receiver, port, state = self._run_with_mid_run_splice(validate=True)
        assert sender.completed
        assert receiver.bytes_delivered == 40 * MSS
        sim.checker.verify_all()

    def test_deterministic_drop_schedule_after_splice(self):
        sim, sender, receiver, port, state = self._run_with_mid_run_splice(
            policy_factory=lambda: drop_nth(2, 5)
        )
        assert sender.completed
        assert port.link.injected_drops == 2
        assert receiver.bytes_delivered == 40 * MSS


class TestLimitedTransmit:
    def _run(self, limited):
        sim = Simulator(seed=1)
        tree = build_star(sim, n_senders=1)
        port = tree.bottleneck_port
        port.link = make_lossy(port.link, drop_data_once(0))  # lose 1st segment
        flow = next_flow_id()
        receiver = TcpReceiver(
            sim, tree.aggregator, tree.servers[0].node_id, flow, expected_bytes=10 * MSS
        )
        cfg = TcpConfig(
            seed_rtt_ns=tree.baseline_rtt_ns(),
            rto_min_ns=50 * MS,
            init_cwnd_mss=2.0,
            limited_transmit=limited,
        )
        sender = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow, cfg)
        sender.send(10 * MSS)
        sim.run(until=20 * MS)
        return sender

    def test_limited_transmit_avoids_timeout_for_tiny_window(self):
        """cwnd=2 and a lost first segment: only 1 dupACK without limited
        transmit (timeout inevitable); with it, the extra segments make
        enough dupACKs for fast retransmit."""
        without = self._run(limited=False)
        with_lt = self._run(limited=True)
        assert with_lt.stats.fast_retransmits >= 1
        assert with_lt.stats.timeout_count == 0
        assert without.stats.fast_retransmits == 0

    def test_limited_transmit_respects_two_segment_bound(self):
        sim = Simulator(seed=1)
        tree = build_star(sim, n_senders=1)
        flow = next_flow_id()
        cfg = TcpConfig(seed_rtt_ns=100 * US, limited_transmit=True)
        sender = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow, cfg)
        sender.send(20 * MSS)
        sim.run(until=1)
        sent_before = sender.snd_nxt
        from repro.net.packet import make_ack_packet

        from .helpers import intern

        for _ in range(2):  # two dupACKs -> at most two extra segments
            sender.on_packet(
                intern(sim, make_ack_packet(flow, sender.dst_node_id, sender.host.node_id, 0))
            )
        assert sender.snd_nxt <= sent_before + 2 * MSS
