"""Tests for the protocol registry/factory."""

import pytest

from repro.core.dctcp_plus import DctcpPlusSender
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.tcp.dctcp import DctcpSender
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id
from repro.workloads.protocols import PROTOCOLS, spec_for


class TestSpec:
    def test_known_protocols(self):
        assert set(PROTOCOLS) == {
            "tcp", "dctcp", "dctcp+", "dctcp+norand", "tcp+", "d2tcp", "d2tcp+",
            "pulser", "tbtcp",
        }

    def test_paper_variants_lead_in_paper_order(self):
        # The registry preserves the historical ordering for the original
        # variants; arena competitors append after them.
        assert PROTOCOLS[:7] == (
            "tcp", "dctcp", "dctcp+", "dctcp+norand", "tcp+", "d2tcp", "d2tcp+"
        )

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            spec_for("cubic")

    def test_labels(self):
        assert spec_for("tcp").label == "TCP"
        assert spec_for("dctcp+").label == "DCTCP+"
        assert spec_for("dctcp+norand").label == "DCTCP+ (no desync)"

    def test_norand_forces_randomize_off(self):
        spec = spec_for("dctcp+norand")
        assert not spec.plus_config.randomize

    def test_plus_flag(self):
        assert spec_for("dctcp+").is_plus
        assert spec_for("dctcp+norand").is_plus
        assert not spec_for("dctcp").is_plus

    def test_overrides_forwarded(self):
        spec = spec_for("dctcp", tcp_overrides={"rto_min_ns": 123456})
        assert spec.tcp_config.rto_min_ns == 123456
        spec = spec_for("dctcp+", plus_overrides={"divisor_factor": 4.0})
        assert spec.plus_config.divisor_factor == 4.0


class TestMakeSender:
    def _make(self, name):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        spec = spec_for(name)
        return spec.make_sender(sim, tree.servers[0], tree.aggregator.node_id, next_flow_id())

    def test_tcp_sender_type_and_no_ecn(self):
        s = self._make("tcp")
        assert type(s) is TcpSender
        assert not s.config.ecn_enabled

    def test_dctcp_sender_type(self):
        s = self._make("dctcp")
        assert type(s) is DctcpSender
        assert s.config.ecn_enabled

    def test_plus_sender_type(self):
        s = self._make("dctcp+")
        assert isinstance(s, DctcpPlusSender)

    def test_norand_sender_machine_not_randomized(self):
        s = self._make("dctcp+norand")
        assert isinstance(s, DctcpPlusSender)
        assert not s.machine.config.randomize
