"""The consolidated public API surface of the ``repro`` package.

Pins two things: every name in ``repro.__all__`` actually imports, and
the surface itself doesn't shrink or drift accidentally (additions are
fine; removals must be deliberate and update the snapshot here).
"""

from __future__ import annotations

import pytest

import repro

#: The v1.4 public surface.  Extend when the API grows; removing a name
#: is a breaking change and should be a conscious decision.
EXPECTED_SURFACE = {
    # simulator + topology
    "Simulator",
    "Host",
    "Link",
    "Packet",
    "Switch",
    "TopologyParams",
    "TwoTierTree",
    "DumbbellNetwork",
    "FatTreeNetwork",
    "build_two_tier",
    "build_dumbbell",
    "build_star",
    "build_fat_tree",
    "check_wiring",
    "WiringError",
    "topology_builder",
    "topology_names",
    # transports
    "TcpConfig",
    "TcpSender",
    "TcpReceiver",
    "DctcpSender",
    "TimeoutKind",
    # congestion-control strategy registry + event protocol + control plane
    "CongestionControl",
    "register",
    "get_cc",
    "cc_names",
    "cc_labels",
    "CCEvent",
    "ControlEnv",
    "ExternalPolicy",
    "DctcpPlusConfig",
    "DctcpPlusSender",
    "DctcpPlusState",
    "SlowTimePacer",
    "SlowTimeStateMachine",
    # workloads
    "IncastConfig",
    "IncastWorkload",
    "ClosedLoopWorkload",
    "HttpConfig",
    "HttpWorkload",
    "SwarmConfig",
    "SwarmWorkload",
    "BackgroundConfig",
    "BackgroundTraffic",
    "BenchmarkConfig",
    "BenchmarkWorkload",
    "ProtocolSpec",
    "spec_for",
    # metrics + telemetry
    "FlowStats",
    "FlowTracer",
    "CwndTracker",
    "QueueSampler",
    "Tracer",
    "TraceRecord",
    "Collector",
    "PeriodicCollector",
    "EngineProfiler",
    # exec
    "ScenarioSpec",
    "PointResult",
    "run_scenario",
    "run_incast_batch",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    # sweep service
    "SweepSpec",
    "SweepStore",
    "SweepProgress",
    "run_sweep",
    # namespaces / meta
    "config",
    "__version__",
}


def test_all_names_import():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, f"repro.{name} missing"


def test_surface_snapshot():
    assert set(repro.__all__) == EXPECTED_SURFACE


def test_no_duplicate_all_entries():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_config_namespace_aliases_the_originals():
    import repro.config
    import repro.core.config
    import repro.tcp.config
    import repro.workloads.protocols

    assert repro.config.TcpConfig is repro.tcp.config.TcpConfig
    assert repro.config.DctcpPlusConfig is repro.core.config.DctcpPlusConfig
    assert repro.config.ProtocolSpec is repro.workloads.protocols.ProtocolSpec
    assert repro.config.spec_for is repro.workloads.protocols.spec_for


def test_effective_tcp_config_applies_plus_floor():
    from repro.config import DctcpPlusConfig, TcpConfig, effective_tcp_config

    resolved = effective_tcp_config(TcpConfig(), DctcpPlusConfig(min_cwnd_mss=1.0))
    assert resolved.min_cwnd_mss == 1.0
    assert effective_tcp_config().min_cwnd_mss == TcpConfig().min_cwnd_mss
    assert effective_tcp_config(ecn_enabled=True).ecn_enabled is True


def test_effective_tcp_config_resolves_cc_dimension():
    from repro.config import DctcpPlusConfig, TcpConfig, effective_tcp_config

    plus = DctcpPlusConfig(min_cwnd_mss=1.0)
    # The plus floor applies only to strategies carrying the slow_time law.
    assert effective_tcp_config(plus=plus, cc="dctcp+").min_cwnd_mss == 1.0
    assert effective_tcp_config(plus=plus, cc="dctcp").min_cwnd_mss == TcpConfig().min_cwnd_mss
    # ECN stance comes from the registry metadata...
    assert effective_tcp_config(cc="tcp").ecn_enabled is False
    assert effective_tcp_config(cc="pulser").ecn_enabled is True
    # ...unless explicitly overridden.
    assert effective_tcp_config(cc="tcp", ecn_enabled=True).ecn_enabled is True
    with pytest.raises(ValueError):
        effective_tcp_config(cc="unknown-cc")


def test_cc_registry_exported():
    from repro import CongestionControl, cc_labels, cc_names, get_cc

    assert "dctcp+" in cc_names()
    assert isinstance(get_cc("dctcp+"), CongestionControl)
    assert cc_labels()["dctcp+"] == "DCTCP+"


def test_telemetry_collectors_share_the_protocol():
    from repro import Collector, CwndTracker, FlowTracer, QueueSampler, Tracer
    from repro.telemetry import EngineProfiler

    for cls in (FlowTracer, QueueSampler, CwndTracker, Tracer, EngineProfiler):
        assert issubclass(cls, Collector)


def test_version_matches_package_metadata():
    import os
    import re

    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(here, "pyproject.toml"), encoding="utf-8") as fh:
        match = re.search(r'^version = "([^"]+)"$', fh.read(), re.M)
    assert match and match.group(1) == repro.__version__
