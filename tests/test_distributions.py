"""Tests for the empirical traffic distributions."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.workloads.distributions import (
    BACKGROUND_FLOW_SIZE_CDF,
    BACKGROUND_INTERARRIVAL_CDF,
    SHORT_MESSAGE_SIZE_CDF,
    EmpiricalCDF,
    exponential_interarrival_ns,
    sample_flow_size_bytes,
)


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(1.0, 1.0)])

    def test_values_strictly_increasing(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(2.0, 0.0), (2.0, 1.0)])

    def test_probs_non_decreasing(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(1.0, 0.5), (2.0, 0.4), (3.0, 1.0)])

    def test_last_prob_must_be_one(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(1.0, 0.0), (2.0, 0.9)])

    def test_log_interp_needs_positive_values(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(0.0, 0.0), (1.0, 1.0)], log_interp=True)


class TestQuantile:
    CDF = EmpiricalCDF([(10.0, 0.0), (100.0, 0.5), (1000.0, 1.0)])

    def test_endpoints(self):
        assert self.CDF.quantile(0.0) == 10.0
        assert self.CDF.quantile(1.0) == 1000.0

    def test_knot(self):
        assert self.CDF.quantile(0.5) == pytest.approx(100.0)

    def test_log_interpolation_midpoint(self):
        # halfway in probability between 10 and 100 -> geometric mean
        assert self.CDF.quantile(0.25) == pytest.approx((10 * 100) ** 0.5)

    def test_linear_interpolation(self):
        cdf = EmpiricalCDF([(0.0, 0.0), (10.0, 1.0)], log_interp=False)
        assert cdf.quantile(0.3) == pytest.approx(3.0)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            self.CDF.quantile(-0.1)
        with pytest.raises(ValueError):
            self.CDF.quantile(1.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_support(self, u):
        v = self.CDF.quantile(u)
        assert 10.0 <= v <= 1000.0

    @given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_quantile_monotone(self, u1, u2):
        lo, hi = sorted((u1, u2))
        assert self.CDF.quantile(lo) <= self.CDF.quantile(hi)


class TestSampling:
    def test_samples_within_support(self):
        rng = random.Random(1)
        for _ in range(100):
            v = BACKGROUND_FLOW_SIZE_CDF.sample(rng)
            assert 1024 <= v <= 50 * 1024 * 1024

    def test_sample_flow_size_at_least_one(self):
        tiny = EmpiricalCDF([(0.1, 0.0), (0.2, 1.0)])
        assert sample_flow_size_bytes(random.Random(1), tiny) == 1

    def test_deterministic_given_seed(self):
        a = [BACKGROUND_FLOW_SIZE_CDF.sample(random.Random(7)) for _ in range(5)]
        b = [BACKGROUND_FLOW_SIZE_CDF.sample(random.Random(7)) for _ in range(5)]
        assert a == b

    def test_heavy_tail_shape(self):
        """Most flows are small, most bytes live in the tail (DCTCP paper)."""
        rng = random.Random(3)
        sizes = sorted(BACKGROUND_FLOW_SIZE_CDF.sample(rng) for _ in range(4000))
        median = sizes[len(sizes) // 2]
        assert median < 100 * 1024  # median well under 100 KB
        top_decile_bytes = sum(sizes[int(0.9 * len(sizes)):])
        assert top_decile_bytes > 0.5 * sum(sizes)

    def test_short_message_band(self):
        rng = random.Random(4)
        for _ in range(100):
            v = SHORT_MESSAGE_SIZE_CDF.sample(rng)
            assert 50 * 1024 <= v <= 1024 * 1024

    def test_interarrival_support(self):
        rng = random.Random(5)
        for _ in range(100):
            v = BACKGROUND_INTERARRIVAL_CDF.sample(rng)
            assert 1_000_000 <= v <= 300_000_000


class TestExponential:
    def test_positive(self):
        rng = random.Random(1)
        for _ in range(100):
            assert exponential_interarrival_ns(rng, 1_000_000) >= 1

    def test_mean_roughly_correct(self):
        rng = random.Random(2)
        n = 5000
        mean = sum(exponential_interarrival_ns(rng, 10_000_000) for _ in range(n)) / n
        assert mean == pytest.approx(10_000_000, rel=0.1)

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            exponential_interarrival_ns(random.Random(1), 0)


class TestMeanEstimate:
    def test_matches_sampling(self):
        cdf = EmpiricalCDF([(1.0, 0.0), (10.0, 1.0)], log_interp=False)
        assert cdf.mean_estimate() == pytest.approx(5.5, rel=0.01)
