"""Smoke matrix: every protocol variant completes every workload shape.

Broad-but-shallow coverage that catches wiring regressions (factory,
demux, timers, close paths) across the full protocol set without pinning
any performance number.
"""

import pytest

from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.workloads.background import BackgroundTraffic
from repro.workloads.benchmark import BenchmarkConfig, BenchmarkWorkload
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import PROTOCOLS, spec_for


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestIncastMatrix:
    def test_small_incast_completes(self, protocol):
        sim = Simulator(seed=3)
        tree = build_two_tier(sim)
        wl = IncastWorkload(sim, tree, spec_for(protocol), IncastConfig(n_flows=6, n_rounds=2))
        wl.run_to_completion(max_events=40_000_000)
        assert wl.finished
        assert all(r.completed for r in wl.rounds)
        assert wl.mean_goodput_bps > 0
        wl.close()

    def test_single_flow_degenerate_case(self, protocol):
        sim = Simulator(seed=3)
        tree = build_two_tier(sim)
        wl = IncastWorkload(sim, tree, spec_for(protocol), IncastConfig(n_flows=1, n_rounds=1))
        wl.run_to_completion(max_events=20_000_000)
        assert wl.finished
        # one flow over a clean path: near line rate, no timeouts
        assert wl.total_timeouts == 0
        assert wl.mean_goodput_bps > 700e6
        wl.close()


@pytest.mark.parametrize("protocol", ("tcp", "dctcp", "dctcp+", "d2tcp+"))
def test_background_matrix(protocol):
    sim = Simulator(seed=3)
    tree = build_two_tier(sim)
    bg = BackgroundTraffic(sim, tree, spec_for(protocol))
    bg.start()
    sim.run(until=30_000_000)
    assert bg.total_delivered_bytes > 1_000_000
    bg.stop()


@pytest.mark.parametrize("protocol", ("dctcp", "dctcp+"))
def test_benchmark_matrix(protocol):
    sim = Simulator(seed=3)
    tree = build_two_tier(sim)
    wl = BenchmarkWorkload(
        sim,
        tree,
        spec_for(protocol),
        BenchmarkConfig(
            n_queries=3,
            n_background=3,
            n_short_messages=1,
            query_fanout=5,
            max_flow_bytes=128 * 1024,
        ),
    )
    wl.run_to_completion(max_events=40_000_000)
    assert wl.finished
    assert len(wl.records) == 7
    wl.close()
