"""Tests for TCP+ (New Reno + slow_time enhancement, Section VII)."""

from repro.core.reno_plus import RenoPlusSender
from repro.core.states import DctcpPlusState
from repro.net.packet import make_ack_packet
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.workloads.ids import next_flow_id
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import spec_for

from .helpers import intern

MSS = 1460


def harness(total=40 * MSS):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS)
    s = RenoPlusSender(sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), config=cfg)
    s.send(total)
    sim.run(until=1)
    return sim, s


class TestConstruction:
    def test_no_ecn(self):
        sim, s = harness()
        assert not s.config.ecn_enabled

    def test_floor_from_plus_config(self):
        sim, s = harness()
        assert s.config.min_cwnd_bytes == 1 * MSS

    def test_starts_normal(self):
        sim, s = harness()
        assert s.state is DctcpPlusState.NORMAL
        assert s.slow_time_ns == 0


class TestLossChannelDrive:
    def test_clean_acks_keep_normal(self):
        sim, s = harness()
        s.on_packet(intern(s.sim, make_ack_packet(s.flow_id, s.dst_node_id, s.host.node_id, MSS)))
        assert s.state is DctcpPlusState.NORMAL

    def test_timeout_engages_machine(self):
        sim, s = harness()
        sim.run(until=sim.now + 20 * MS)  # silent black hole -> RTO
        assert s.stats.timeout_count >= 1
        assert s.state is DctcpPlusState.TIME_INC
        assert s.slow_time_ns > 0

    def test_recovery_acks_keep_growing_slow_time(self):
        sim, s = harness()
        sim.run(until=sim.now + 6 * MS)  # one RTO
        level = s.slow_time_ns
        s.on_packet(intern(s.sim, make_ack_packet(s.flow_id, s.dst_node_id, s.host.node_id, s.snd_una + MSS)))
        assert s.slow_time_ns > level

    def test_post_recovery_clean_acks_relax(self):
        sim, s = harness()
        high_water = s.snd_nxt
        sim.run(until=sim.now + 6 * MS)
        s.on_packet(intern(s.sim, make_ack_packet(s.flow_id, s.dst_node_id, s.host.node_id, high_water)))
        assert not s.in_rto_recovery
        # let the sender push new data past the old high-water mark (the
        # pacer defers it by slow_time, so give it a few milliseconds),
        # then a clean ack for it decays the machine
        sim.run(until=sim.now + 3 * MS)
        assert s.snd_nxt > high_water
        s.on_packet(
            intern(
                s.sim,
                make_ack_packet(
                    s.flow_id, s.dst_node_id, s.host.node_id, min(s.snd_nxt, high_water + MSS)
                ),
            )
        )
        assert s.state in (DctcpPlusState.TIME_DES, DctcpPlusState.NORMAL)


class TestWorkload:
    def test_tcp_plus_at_least_matches_tcp_at_moderate_fanin(self):
        results = {}
        for protocol in ("tcp", "tcp+"):
            sim = Simulator(seed=42)
            tree = __import__("repro.net.topology", fromlist=["build_two_tier"]).build_two_tier(sim)
            wl = IncastWorkload(sim, tree, spec_for(protocol), IncastConfig(n_flows=30, n_rounds=8))
            wl.run_to_completion(max_events=100_000_000)
            results[protocol] = wl.mean_goodput_bps
        assert results["tcp+"] >= results["tcp"] * 0.8
