"""End-to-end: DCTCP senders against delayed-ACK receivers.

Validates that the coalesced ECN echo keeps DCTCP functional — the flows
complete, the switch queue stays regulated, and the marked-fraction
estimate remains meaningful — while the ACK-path packet count drops.
"""

import pytest

from repro.net.packet import make_data_packet
from repro.net.topology import TopologyParams, build_star
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.dctcp import DctcpSender
from repro.tcp.delack import DelayedAckReceiver
from repro.tcp.receiver import TcpReceiver
from repro.workloads.ids import next_flow_id

from .helpers import CaptureEndpoint, intern

TOTAL = 2_000_000
MSS = 1460


def run_pair(receiver_cls):
    sim = Simulator(seed=4)
    params = TopologyParams(buffer_bytes=64 * 1024, ecn_threshold_bytes=16 * 1024)
    tree = build_star(sim, n_senders=2, params=params)
    senders, receivers = [], []
    for i in range(2):
        flow = next_flow_id()
        kwargs = {}
        if receiver_cls is DelayedAckReceiver:
            kwargs["delack_timeout_ns"] = 1_000_000  # 1 ms, DCN-tuned
        receivers.append(
            receiver_cls(
                sim, tree.aggregator, tree.servers[i].node_id, flow,
                expected_bytes=TOTAL, **kwargs,
            )
        )
        cfg = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns())
        sender = DctcpSender(sim, tree.servers[i], tree.aggregator.node_id, flow, cfg)
        sender.send(TOTAL)
        senders.append(sender)
    sim.run(max_events=10_000_000)
    assert all(s.completed for s in senders)
    return sim, tree, senders, receivers


class TestDelayedAckDctcp:
    def test_flows_complete_and_deliver_exactly(self):
        _, _, senders, receivers = run_pair(DelayedAckReceiver)
        for r in receivers:
            assert r.bytes_delivered == TOTAL

    def test_ack_count_roughly_halved(self):
        _, _, senders_imm, _ = run_pair(TcpReceiver)
        _, _, senders_del, _ = run_pair(DelayedAckReceiver)
        acks_imm = sum(s.stats.acks_received for s in senders_imm)
        acks_del = sum(s.stats.acks_received for s in senders_del)
        assert acks_del < 0.7 * acks_imm

    def test_alpha_still_tracks_congestion(self):
        _, _, senders, _ = run_pair(DelayedAckReceiver)
        # two flows squeezing through one marked port: alpha must be
        # meaningfully above zero on both
        for s in senders:
            assert 0.0 < s.alpha <= 1.0
            assert s.ecn_reductions > 0

    def test_queue_still_regulated_near_k(self):
        sim, tree, senders, _ = run_pair(DelayedAckReceiver)
        # no tail drops: ECN control survived the coalescing
        assert tree.bottleneck_port.queue.dropped_packets == 0

    def test_completion_time_comparable_to_immediate_acks(self):
        sim_d, *_ = run_pair(DelayedAckReceiver)
        sim_i, *_ = run_pair(TcpReceiver)
        # delayed ACKs must not degrade throughput by more than ~30%
        assert sim_d.now < 1.3 * sim_i.now


class TestAlphaPinnedToMarkSequence:
    """Pin Eq. (1) against a hand-written CE sequence routed through the
    delayed-ACK receiver's coalesced ECN echo."""

    def test_alpha_matches_hand_computed_ewma(self):
        # Receiver side: six MSS-sized segments with CE = F F T T F F.
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        trap = CaptureEndpoint(sim)
        acks = trap.packets
        tree.servers[0].register_flow(7, trap)
        recv = DelayedAckReceiver(
            sim, tree.aggregator, tree.servers[0].node_id, 7, ack_every=2
        )
        for i, ce in enumerate([False, False, True, True, False, False]):
            pkt = make_data_packet(7, 0, 0, seq=i * MSS, payload_len=MSS, ect=True)
            pkt.ce = ce
            recv.on_packet(intern(sim, pkt))
        sim.run_until_idle()
        # Coalescing: clean pair, marked pair, clean pair -> three ACKs.
        assert [(a.ack_seq, a.ece) for a in acks] == [
            (2 * MSS, False), (4 * MSS, True), (6 * MSS, False),
        ]

        # Sender side: replay the ACK stream into a DCTCP sender.
        sim2 = Simulator()
        tree2 = build_star(sim2, n_senders=1)
        cfg = TcpConfig(seed_rtt_ns=100_000)
        s = DctcpSender(sim2, tree2.servers[0], tree2.aggregator.node_id, next_flow_id(), cfg)
        s.cwnd = 20.0 * MSS
        s.send(6 * MSS)
        assert s.snd_nxt == 6 * MSS  # window 2 closes on the final ACK
        for ack in acks:
            s._on_ack(ack.ack_seq, ack.ece)

        g = cfg.dctcp_g
        # Window 1 ends on the first ACK (win_end_seq starts at 0): F = 0.
        # Window 2 covers the next two ACKs: 2 MSS marked of 4 MSS -> F = 1/2.
        expected = (1.0 - g) * ((1.0 - g) * cfg.dctcp_alpha_init + g * 0.0) + g * 0.5
        assert s.alpha == pytest.approx(expected)
        assert s.ecn_reductions == 1
