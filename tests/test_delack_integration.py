"""End-to-end: DCTCP senders against delayed-ACK receivers.

Validates that the coalesced ECN echo keeps DCTCP functional — the flows
complete, the switch queue stays regulated, and the marked-fraction
estimate remains meaningful — while the ACK-path packet count drops.
"""

from repro.net.topology import TopologyParams, build_dumbbell
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.dctcp import DctcpSender
from repro.tcp.delack import DelayedAckReceiver
from repro.tcp.receiver import TcpReceiver
from repro.workloads.ids import next_flow_id

TOTAL = 2_000_000


def run_pair(receiver_cls):
    sim = Simulator(seed=4)
    params = TopologyParams(buffer_bytes=64 * 1024, ecn_threshold_bytes=16 * 1024)
    tree = build_dumbbell(sim, n_senders=2, params=params)
    senders, receivers = [], []
    for i in range(2):
        flow = next_flow_id()
        kwargs = {}
        if receiver_cls is DelayedAckReceiver:
            kwargs["delack_timeout_ns"] = 1_000_000  # 1 ms, DCN-tuned
        receivers.append(
            receiver_cls(
                sim, tree.aggregator, tree.servers[i].node_id, flow,
                expected_bytes=TOTAL, **kwargs,
            )
        )
        cfg = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns())
        sender = DctcpSender(sim, tree.servers[i], tree.aggregator.node_id, flow, cfg)
        sender.send(TOTAL)
        senders.append(sender)
    sim.run(max_events=10_000_000)
    assert all(s.completed for s in senders)
    return sim, tree, senders, receivers


class TestDelayedAckDctcp:
    def test_flows_complete_and_deliver_exactly(self):
        _, _, senders, receivers = run_pair(DelayedAckReceiver)
        for r in receivers:
            assert r.bytes_delivered == TOTAL

    def test_ack_count_roughly_halved(self):
        _, _, senders_imm, _ = run_pair(TcpReceiver)
        _, _, senders_del, _ = run_pair(DelayedAckReceiver)
        acks_imm = sum(s.stats.acks_received for s in senders_imm)
        acks_del = sum(s.stats.acks_received for s in senders_del)
        assert acks_del < 0.7 * acks_imm

    def test_alpha_still_tracks_congestion(self):
        _, _, senders, _ = run_pair(DelayedAckReceiver)
        # two flows squeezing through one marked port: alpha must be
        # meaningfully above zero on both
        for s in senders:
            assert 0.0 < s.alpha <= 1.0
            assert s.ecn_reductions > 0

    def test_queue_still_regulated_near_k(self):
        sim, tree, senders, _ = run_pair(DelayedAckReceiver)
        # no tail drops: ECN control survived the coalescing
        assert tree.bottleneck_port.queue.dropped_packets == 0

    def test_completion_time_comparable_to_immediate_acks(self):
        sim_d, *_ = run_pair(DelayedAckReceiver)
        sim_i, *_ = run_pair(TcpReceiver)
        # delayed ACKs must not degrade throughput by more than ~30%
        assert sim_d.now < 1.3 * sim_i.now
