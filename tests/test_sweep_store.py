"""The content-addressed columnar store (:mod:`repro.sweep.store`).

The store must be a drop-in for the executor cache slot (same hit/miss
semantics as the JSON :class:`ResultCache`, including the spec-mismatch
collision guard), and its *content identity* must be order-free: stores
filled by resumed, sharded, or imported runs of the same points agree on
``content_digest()`` and export byte-identical canonical snapshots.
"""

import sqlite3

import pytest

from repro.exec import ResultCache, ScenarioSpec, SerialExecutor
from repro.sweep import COLUMNS, StoreError, SweepStore, import_legacy_cache


def tiny_spec(protocol="dctcp", n_flows=2, seed=1, **kwargs):
    return ScenarioSpec.create(protocol, n_flows, rounds=1, seed=seed, **kwargs)


BATCH = [
    tiny_spec("dctcp", 2, seed=1),
    tiny_spec("dctcp", 2, seed=2),
    tiny_spec("dctcp+", 3, seed=1),
    tiny_spec("tcp", 2, seed=1),
]


@pytest.fixture(scope="module")
def computed():
    """The batch's results, computed once for the whole module."""
    return list(zip(BATCH, SerialExecutor().map(BATCH)))


class TestCacheProtocol:
    def test_cold_then_warm_run_identical(self, tmp_path):
        specs = BATCH[:2]
        with SweepStore(tmp_path / "s.sqlite") as store:
            cold = SerialExecutor(cache=store).map(specs)
            assert (store.hits, store.misses) == (0, 2)
            assert len(store) == 2
        with SweepStore(tmp_path / "s.sqlite") as store:
            events = []
            warm = SerialExecutor(cache=store, progress=events.append).map(specs)
            assert (store.hits, store.misses) == (2, 0)
            assert warm == cold
            assert all(e.cached for e in events)

    def test_hit_rebinds_measured_wall_time(self, tmp_path, computed):
        spec, result = computed[0]
        with SweepStore(tmp_path / "s.sqlite") as store:
            store.put(spec, result)
            hit = store.get(spec)
        assert hit == result
        assert hit.wall_time_s == result.wall_time_s

    def test_absent_key_is_a_counted_miss(self, tmp_path):
        with SweepStore(tmp_path / "s.sqlite") as store:
            assert store.get(BATCH[0]) is None
            assert (store.hits, store.misses) == (0, 1)

    def test_spec_collision_is_a_miss(self, tmp_path, computed):
        # Same key, different embedded spec (hand-edited/corrupt row) must
        # miss — the same guard the JSON cache carries.
        spec, result = computed[0]
        with SweepStore(tmp_path / "s.sqlite") as store:
            store.put(spec, result)
            store._conn.execute(
                "UPDATE points SET spec=? WHERE key=?", ('{"forged":1}', spec.cache_key())
            )
            assert store.get(spec) is None
            assert (store.hits, store.misses) == (0, 1)

    def test_corrupt_result_json_is_a_miss(self, tmp_path, computed):
        spec, result = computed[0]
        with SweepStore(tmp_path / "s.sqlite") as store:
            store.put(spec, result)
            store._conn.execute(
                "UPDATE points SET result='not json{' WHERE key=?", (spec.cache_key(),)
            )
            assert store.get(spec) is None
            assert store.misses == 1

    def test_put_counts_write_errors_instead_of_raising(self, tmp_path, computed):
        spec, result = computed[0]
        store = SweepStore(tmp_path / "s.sqlite")
        store._conn.close()  # simulate a dead backend (full disk, etc.)
        store.put(spec, result)
        assert store.write_errors == 1

    def test_executor_progress_line_carries_write_errors(self, tmp_path):
        store = SweepStore(tmp_path / "s.sqlite")
        store._conn.close()
        events = []
        SerialExecutor(cache=store, progress=events.append).map(BATCH[:1])
        assert events[-1].cache_write_errors == 1

    def test_format_mismatch_refuses_to_open(self, tmp_path):
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            "CREATE TABLE points (key TEXT PRIMARY KEY);"
            "CREATE TABLE meta (k TEXT PRIMARY KEY, v TEXT NOT NULL);"
            "INSERT INTO meta VALUES ('format', '999');"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="format"):
            SweepStore(path)


class TestContentIdentity:
    def test_digest_is_insertion_order_free(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "b.sqlite") as b:
            for spec, result in computed:
                a.put(spec, result)
            for spec, result in reversed(computed):
                b.put(spec, result)
            assert a.content_digest() == b.content_digest()

    def test_digest_sees_content_changes(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a:
            a.put(*computed[0])
            one = a.content_digest()
            a.put(*computed[1])
            assert a.content_digest() != one

    def test_canonical_export_is_byte_identical_for_equal_content(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "b.sqlite") as b:
            for spec, result in computed:
                a.put(spec, result)
            for spec, result in reversed(computed):
                b.put(spec, result)
            a.export_canonical(tmp_path / "a-canon.sqlite")
            b.export_canonical(tmp_path / "b-canon.sqlite")
        assert (tmp_path / "a-canon.sqlite").read_bytes() == (
            tmp_path / "b-canon.sqlite"
        ).read_bytes()

    def test_canonical_export_reopens_as_a_store(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a:
            for spec, result in computed:
                a.put(spec, result)
            a.export_canonical(tmp_path / "canon.sqlite")
            digest = a.content_digest()
        with SweepStore(tmp_path / "canon.sqlite") as canon:
            assert canon.content_digest() == digest
            assert canon.get(computed[0][0]) == computed[0][1]


class TestColumnarReads:
    def test_to_rows_orders_by_key_and_matches_results(self, tmp_path, computed):
        with SweepStore(tmp_path / "s.sqlite") as store:
            for spec, result in computed:
                store.put(spec, result)
            rows = store.to_rows(("key", "protocol", "n_flows", "goodput_mbps"))
            assert [r[0] for r in rows] == store.keys() == sorted(store.keys())
            by_key = {s.cache_key(): (s, r) for s, r in computed}
            for key, protocol, n_flows, goodput in rows:
                spec, result = by_key[key]
                assert (protocol, n_flows) == (spec.protocol, spec.n_flows)
                assert goodput == pytest.approx(result.goodput_mbps)

    def test_to_csv_has_header_and_every_point(self, tmp_path, computed):
        with SweepStore(tmp_path / "s.sqlite") as store:
            for spec, result in computed:
                store.put(spec, result)
            lines = store.to_csv().strip().splitlines()
        assert lines[0] == ",".join(COLUMNS)
        assert len(lines) == 1 + len(computed)

    def test_unknown_column_rejected(self, tmp_path):
        with SweepStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(StoreError, match="unknown columns"):
                store.to_rows(("key", "nope"))

    def test_iter_points_round_trips(self, tmp_path, computed):
        with SweepStore(tmp_path / "s.sqlite") as store:
            for spec, result in computed:
                store.put(spec, result)
            decoded = {key: result for key, _, result in store.iter_points()}
        for spec, result in computed:
            assert decoded[spec.cache_key()] == result


class TestLegacyImport:
    def test_import_makes_every_point_a_hit_with_identical_result(self, tmp_path):
        legacy = ResultCache(tmp_path / "legacy")
        results = SerialExecutor(cache=legacy).map(BATCH)
        imported, skipped = import_legacy_cache(tmp_path / "s.sqlite", tmp_path / "legacy")
        assert (imported, skipped) == (len(BATCH), 0)
        with SweepStore(tmp_path / "s.sqlite") as store:
            for spec, expected in zip(BATCH, results):
                hit = store.get(spec)
                assert hit == expected
            assert store.hits == len(BATCH)
            assert store.verify_json_cache(tmp_path / "legacy") == []

    def test_import_skips_corrupt_entries(self, tmp_path):
        legacy = ResultCache(tmp_path / "legacy")
        SerialExecutor(cache=legacy).map(BATCH[:2])
        (tmp_path / "legacy" / "zz-corrupt.json").write_text("not json{")
        with SweepStore(tmp_path / "s.sqlite") as store:
            assert store.import_json_cache(tmp_path / "legacy") == (2, 1)

    def test_import_matches_a_directly_filled_store(self, tmp_path, computed):
        legacy = ResultCache(tmp_path / "legacy")
        SerialExecutor(cache=legacy).map(BATCH)
        with SweepStore(tmp_path / "direct.sqlite") as direct:
            for spec, result in computed:
                direct.put(spec, result)
            digest = direct.content_digest()
        with SweepStore(tmp_path / "imported.sqlite") as imported:
            imported.import_json_cache(tmp_path / "legacy")
            assert imported.content_digest() == digest

    def test_verify_reports_drift(self, tmp_path):
        legacy = ResultCache(tmp_path / "legacy")
        SerialExecutor(cache=legacy).map(BATCH[:1])
        with SweepStore(tmp_path / "s.sqlite") as store:
            store.import_json_cache(tmp_path / "legacy")
            store._conn.execute("UPDATE points SET result='{}'")
            assert store.verify_json_cache(tmp_path / "legacy") == [BATCH[0].cache_key()]


class TestMerge:
    def test_merge_of_disjoint_stores(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "b.sqlite") as b:
            for spec, result in computed[:2]:
                a.put(spec, result)
            for spec, result in computed[2:]:
                b.put(spec, result)
            with SweepStore(tmp_path / "m.sqlite") as merged:
                assert merged.merge_from(a) == (2, 0)
                assert merged.merge_from(b) == (2, 0)
                assert len(merged) == len(computed)

    def test_merge_equals_single_store(self, tmp_path, computed):
        with SweepStore(tmp_path / "full.sqlite") as full:
            for spec, result in computed:
                full.put(spec, result)
            digest = full.content_digest()
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "b.sqlite") as b:
            for spec, result in computed[:2]:
                a.put(spec, result)
            for spec, result in computed[2:]:
                b.put(spec, result)
            with SweepStore(tmp_path / "m.sqlite") as merged:
                merged.merge_from(a)
                merged.merge_from(b)
                assert merged.content_digest() == digest

    def test_overlapping_identical_rows_are_counted_not_conflicts(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "m.sqlite") as m:
            for spec, result in computed:
                a.put(spec, result)
                m.put(spec, result)
            assert m.merge_from(a) == (0, len(computed))

    def test_conflicting_rows_refuse_to_merge(self, tmp_path, computed):
        with SweepStore(tmp_path / "a.sqlite") as a, SweepStore(tmp_path / "m.sqlite") as m:
            for spec, result in computed:
                a.put(spec, result)
                m.put(spec, result)
            m._conn.execute("UPDATE points SET result='{}' WHERE key=?",
                            (computed[0][0].cache_key(),))
            with pytest.raises(StoreError, match="merge conflict"):
                m.merge_from(a)
