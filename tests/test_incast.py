"""Tests for the incast workload (rounds, barrier, persistence)."""

import pytest

from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import spec_for


def run_workload(n_flows=4, n_rounds=3, protocol="dctcp", **cfg_overrides):
    sim = Simulator(seed=1)
    tree = build_two_tier(sim)
    config = IncastConfig(n_flows=n_flows, n_rounds=n_rounds, **cfg_overrides)
    workload = IncastWorkload(sim, tree, spec_for(protocol), config)
    workload.run_to_completion(max_events=20_000_000)
    return sim, tree, workload


class TestConfig:
    def test_sru_split(self):
        cfg = IncastConfig(n_flows=8, total_bytes=1024 * 1024)
        assert cfg.sru_bytes == 131072
        assert cfg.round_bytes == 1024 * 1024

    def test_bytes_per_flow_override(self):
        cfg = IncastConfig(n_flows=8, bytes_per_flow=4096)
        assert cfg.sru_bytes == 4096
        assert cfg.round_bytes == 8 * 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            IncastConfig(n_flows=0)
        with pytest.raises(ValueError):
            IncastConfig(n_flows=10, total_bytes=5)
        with pytest.raises(ValueError):
            IncastConfig(n_flows=1, n_rounds=0)


class TestRounds:
    def test_all_rounds_complete(self):
        _, _, wl = run_workload(n_flows=4, n_rounds=3)
        assert wl.finished
        assert len(wl.rounds) == 3
        assert all(r.completed for r in wl.rounds)

    def test_round_bytes_accounted(self):
        _, _, wl = run_workload(n_flows=4, n_rounds=2)
        for r in wl.rounds:
            assert r.bytes_received == wl.config.round_bytes

    def test_rounds_are_sequential(self):
        _, _, wl = run_workload(n_flows=4, n_rounds=3)
        starts = [r.start_ns for r in wl.rounds]
        assert starts == sorted(starts)
        for prev, nxt in zip(wl.rounds, wl.rounds[1:]):
            assert nxt.start_ns >= prev.start_ns + prev.duration_ns

    def test_goodput_positive_and_bounded(self):
        _, _, wl = run_workload(n_flows=4, n_rounds=2)
        assert 0 < wl.mean_goodput_bps < 1e9

    def test_round_end_callback(self):
        seen = []
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        wl = IncastWorkload(
            sim, tree, spec_for("dctcp"), IncastConfig(n_flows=2, n_rounds=2),
            on_round_end=seen.append,
        )
        wl.run_to_completion(max_events=10_000_000)
        assert [r.index for r in seen] == [0, 1]


class TestPersistence:
    def test_connections_reused_across_rounds(self):
        _, _, wl = run_workload(n_flows=3, n_rounds=3)
        assert len(wl.senders) == 3  # not 3 flows x 3 rounds
        for sender in wl.senders:
            assert sender.stats.total_bytes == 3 * wl.config.sru_bytes

    def test_flows_spread_round_robin(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), IncastConfig(n_flows=12, n_rounds=1))
        hosts = [s.host for s in wl.senders]
        assert hosts[0] is tree.servers[0]
        assert hosts[9] is tree.servers[0]  # wraps after 9 servers
        assert hosts[10] is tree.servers[1]

    def test_close_releases_endpoints(self):
        sim, tree, wl = run_workload(n_flows=2, n_rounds=1)
        wl.close()
        assert all(s.closed for s in wl.senders)
        assert all(r.closed for r in wl.receivers)

    def test_start_twice_rejected(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), IncastConfig(n_flows=1, n_rounds=1))
        wl.start()
        with pytest.raises(RuntimeError):
            wl.start()


class TestStopScope:
    def test_run_to_completion_stops_at_finish(self):
        sim, _, wl = run_workload(n_flows=2, n_rounds=1)
        assert wl.finished
        # Idle timers may remain, but the pump stopped at the last round.
        assert sim.now == wl.rounds[-1].start_ns + wl.rounds[-1].duration_ns

    def test_caller_driven_run_reaches_until(self):
        # A caller pumping sim.run(until=...) itself — e.g. to keep a queue
        # sampler or background traffic going past the last round — must not
        # be stopped early by workload completion.
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), IncastConfig(n_flows=2, n_rounds=1))
        wl.start()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if sim.now < 80 * MS:
                sim.schedule(10 * MS, tick)

        sim.schedule(10 * MS, tick)
        sim.run(until=100 * MS)
        assert wl.finished
        assert sim.now == 100 * MS
        assert ticks[-1] == 80 * MS


class TestDeadline:
    def test_deadline_marks_round_failed(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        # 1-byte-per-flow rounds with an absurdly short deadline
        config = IncastConfig(n_flows=2, n_rounds=1, round_deadline_ns=1000)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), config)
        wl.run_to_completion(max_events=10_000_000)
        assert len(wl.rounds) == 1
        assert not wl.rounds[0].completed


class TestRequestSpacing:
    def test_requests_staggered(self):
        """With spacing S the k-th worker starts ~k*S after the first."""
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        config = IncastConfig(n_flows=4, n_rounds=1, request_spacing_ns=1 * MS)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), config)
        wl.run_to_completion(max_events=10_000_000)
        starts = sorted(s.stats.start_time_ns for s in wl.senders)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        for gap in gaps:
            assert gap == pytest.approx(1 * MS, rel=0.1)

    def test_zero_spacing_back_to_back(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        config = IncastConfig(n_flows=4, n_rounds=1, request_spacing_ns=0)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), config)
        wl.run_to_completion(max_events=10_000_000)
        starts = [s.stats.start_time_ns for s in wl.senders]
        assert max(starts) - min(starts) < 50_000  # only NIC serialization


class TestJitter:
    def test_start_jitter_spreads_starts(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        config = IncastConfig(n_flows=6, n_rounds=1, request_spacing_ns=0, start_jitter_ns=2 * MS)
        wl = IncastWorkload(sim, tree, spec_for("dctcp"), config)
        wl.run_to_completion(max_events=10_000_000)
        starts = [s.stats.start_time_ns for s in wl.senders]
        assert max(starts) - min(starts) > 100_000
