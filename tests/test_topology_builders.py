"""Wiring-invariant property tests for the dumbbell and fat-tree builders.

Every built network must satisfy :func:`repro.net.topology.check_wiring`
(bidirectional rate-consistent cables, all-pairs reachability, truly
equal-cost ECMP candidate sets), and the switch/port/host counts must
match the closed forms implied by (k, hosts_per_edge) / n_pairs.
"""

import pytest

from repro.net.host import Host
from repro.net.shared_buffer import SharedBufferSwitch
from repro.net.topology import (
    TOPOLOGIES,
    TopologyParams,
    WiringError,
    build_dumbbell,
    build_fat_tree,
    build_star,
    build_two_tier,
    check_wiring,
    topology_builder,
    topology_names,
)
from repro.sim.engine import Simulator


class TestRegistry:
    def test_names_in_registry_order(self):
        assert topology_names() == ["two-tier", "dumbbell", "fat-tree"]

    def test_builder_resolution(self):
        assert topology_builder("dumbbell") is build_dumbbell
        assert topology_builder("fat-tree") is build_fat_tree
        assert TOPOLOGIES["two-tier"] is build_two_tier

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_builder("clos")


class TestCheckWiringPasses:
    """Every shipped builder produces a structurally valid network."""

    def test_two_tier(self):
        check_wiring(build_two_tier(Simulator()))

    def test_star(self):
        check_wiring(build_star(Simulator(), n_senders=3))

    @pytest.mark.parametrize("n_pairs", [1, 2, 5])
    def test_dumbbell(self, n_pairs):
        params = TopologyParams(n_pairs=n_pairs, leg_delays_ns=(5_000, 40_000))
        check_wiring(build_dumbbell(Simulator(), params))

    @pytest.mark.parametrize("k,hosts_per_edge", [(2, 1), (4, None), (4, 1), (6, 2)])
    def test_fat_tree(self, k, hosts_per_edge):
        params = TopologyParams(fat_tree_k=k, hosts_per_edge=hosts_per_edge)
        check_wiring(build_fat_tree(Simulator(), params))

    def test_fat_tree_packet_spray_mode(self):
        params = TopologyParams(fat_tree_k=4, hosts_per_edge=1, ecmp_mode="packet")
        check_wiring(build_fat_tree(Simulator(), params))

    def test_shared_buffer_fat_tree(self):
        # SharedBufferSwitch has its own ECMP plumbing (_EcmpRoute); the
        # checker must see through it via ecmp_candidates.
        params = TopologyParams(fat_tree_k=4, hosts_per_edge=1, shared_pool_bytes=512 * 1024)
        net = build_fat_tree(Simulator(), params)
        assert isinstance(net.cores[0], SharedBufferSwitch)
        check_wiring(net)


class TestDumbbellShape:
    def test_closed_form_counts(self):
        params = TopologyParams(n_pairs=3)
        net = build_dumbbell(Simulator(), params)
        assert len(net.senders) == 3 and len(net.receivers) == 3
        # Each side: one access port per pair plus the trunk.
        assert len(net.left.ports) == 3 + 1
        assert len(net.right.ports) == 3 + 1
        assert net.bottleneck_port in net.left.ports
        assert net.reverse_port in net.right.ports

    def test_leg_delays_cycle_and_apply(self):
        params = TopologyParams(n_pairs=4, leg_delays_ns=(5_000, 40_000))
        net = build_dumbbell(Simulator(), params)
        assert net.leg_delays_ns == [5_000, 40_000, 5_000, 40_000]
        for i, sender in enumerate(net.senders):
            assert sender.nic.link.prop_delay_ns == net.leg_delays_ns[i]
        for i, receiver in enumerate(net.receivers):
            assert receiver.nic.link.prop_delay_ns == net.leg_delays_ns[i]

    def test_homogeneous_default_legs(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        assert net.leg_delays_ns == [net.params.prop_delay_ns] * 2

    def test_hops_between(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        s0, s1 = net.senders
        r0 = net.receivers[0]
        assert net.hops_between(s0, s0) == 0
        assert net.hops_between(s0, s1) == 2  # same side
        assert net.hops_between(s0, r0) == 3  # across the trunk

    def test_baseline_rtt_grows_with_leg_delay(self):
        slow = build_dumbbell(Simulator(), TopologyParams(leg_delays_ns=(50_000,)))
        fast = build_dumbbell(Simulator(), TopologyParams(leg_delays_ns=(5_000,)))
        assert slow.baseline_rtt_ns() > fast.baseline_rtt_ns()

    def test_workload_surface(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        assert net.servers is net.senders
        assert net.aggregator is net.receivers[0]
        assert set(net.all_hosts) == set(net.senders) | set(net.receivers)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_dumbbell(Simulator(), TopologyParams(n_pairs=0))
        with pytest.raises(ValueError):
            build_dumbbell(Simulator(), TopologyParams(leg_delays_ns=(-1,)))


class TestFatTreeShape:
    @pytest.mark.parametrize("k,h", [(2, 1), (4, 2), (6, 3)])
    def test_closed_form_counts(self, k, h):
        half = k // 2
        params = TopologyParams(fat_tree_k=k, hosts_per_edge=h)
        net = build_fat_tree(Simulator(), params)
        assert len(net.cores) == half * half
        assert len(net.aggs) == k and all(len(pod) == half for pod in net.aggs)
        assert len(net.edges) == k and all(len(pod) == half for pod in net.edges)
        assert len(net.hosts) == k * half * h
        # Port (and therefore queue) counts per switch role:
        for pod in net.edges:
            for edge in pod:
                assert len(edge.ports) == h + half  # hosts below + aggs above
        for pod in net.aggs:
            for agg in pod:
                assert len(agg.ports) == half + half  # edges below + cores above
        for core in net.cores:
            assert len(core.ports) == k  # one per pod

    def test_default_hosts_per_edge_is_half_k(self):
        net = build_fat_tree(Simulator(), TopologyParams(fat_tree_k=4))
        assert len(net.hosts) == 4 * 2 * 2  # k^3/4

    def test_hops_between(self):
        net = build_fat_tree(Simulator(), TopologyParams(fat_tree_k=4, hosts_per_edge=2))
        hosts = net.hosts
        assert net.hops_between(hosts[0], hosts[0]) == 0
        assert net.hops_between(hosts[0], hosts[1]) == 2  # same edge
        assert net.hops_between(hosts[0], hosts[2]) == 4  # same pod, other edge
        assert net.hops_between(hosts[0], hosts[-1]) == 6  # other pod

    def test_ecmp_candidate_set_sizes(self):
        # Intra-pod remote traffic fans over k/2 uplinks at the edge; the
        # aggs then have a unique down-route.  Inter-pod traffic also fans
        # over k/2 core uplinks at each agg: (k/2)^2 total paths.
        k = 4
        net = build_fat_tree(Simulator(), TopologyParams(fat_tree_k=k, hosts_per_edge=1))
        half = k // 2
        local, remote_same_pod, remote_other_pod = net.hosts[0], net.hosts[1], net.hosts[-1]
        edge = net.edges[0][0]
        assert edge.ecmp_candidates(local.node_id) is None  # direct attachment
        assert len(edge.ecmp_candidates(remote_same_pod.node_id)) == half
        assert len(edge.ecmp_candidates(remote_other_pod.node_id)) == half
        for agg in net.aggs[0]:
            assert agg.ecmp_candidates(remote_same_pod.node_id) is None
            assert len(agg.ecmp_candidates(remote_other_pod.node_id)) == half
        for core in net.cores:
            assert core.ecmp_candidates(remote_other_pod.node_id) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            build_fat_tree(Simulator(), TopologyParams(fat_tree_k=3))
        with pytest.raises(ValueError, match="even"):
            build_fat_tree(Simulator(), TopologyParams(fat_tree_k=0))
        with pytest.raises(ValueError, match="ecmp_mode"):
            build_fat_tree(Simulator(), TopologyParams(ecmp_mode="spray"))
        with pytest.raises(ValueError, match="host"):
            build_fat_tree(Simulator(), TopologyParams(hosts_per_edge=0))


class TestCheckWiringCatchesDefects:
    def test_misdelivery_to_wrong_host(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        # Point receiver-2 traffic at receiver 1's access port.
        wrong = net.right.route_for(net.receivers[0].node_id)
        net.right.add_route(net.receivers[1].node_id, wrong)
        with pytest.raises(WiringError, match="wrong host"):
            check_wiring(net)

    def test_routing_loop(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        # Right switch bounces receiver-1 traffic back across the trunk.
        net.right.add_route(net.receivers[0].node_id, net.reverse_port)
        with pytest.raises(WiringError, match="loop"):
            check_wiring(net)

    def test_missing_route(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        del net.left._routes[net.receivers[1].node_id]
        del net.left._sends[net.receivers[1].node_id]
        with pytest.raises(WiringError, match="no route"):
            check_wiring(net)

    def test_asymmetric_access_cable(self):
        net = build_dumbbell(Simulator(), TopologyParams(n_pairs=2))
        net.senders[0].nic.link.prop_delay_ns += 1
        with pytest.raises(WiringError, match="asymmetric"):
            check_wiring(net)

    def test_unequal_cost_candidates(self):
        net = build_fat_tree(Simulator(), TopologyParams(fat_tree_k=4, hosts_per_edge=1))
        # Replace one core uplink of an agg's inter-pod ECMP group with the
        # agg's *down* port toward its own edge: still delivers (the edge
        # bounces it back up), but the alternatives stop being equal cost.
        agg = net.aggs[0][0]
        dst = net.hosts[-1]
        up = list(agg.ecmp_candidates(dst.node_id))
        down_port = agg.route_for(net.hosts[0].node_id)
        agg.add_ecmp_group(dst.node_id, [up[0], down_port], salt=99)
        with pytest.raises(WiringError):
            check_wiring(net)

    def test_needs_two_hosts(self):
        sim = Simulator()
        net = build_star(sim, n_senders=1)
        net.servers.clear()
        with pytest.raises(WiringError, match="two hosts"):
            check_wiring(net)

    def test_detached_host(self):
        sim = Simulator()
        net = build_star(sim, n_senders=2)
        net.servers.append(Host(sim, "orphan"))
        with pytest.raises(WiringError, match="no access link"):
            check_wiring(net)
