"""Tests for the experiment drivers, registry and CLI plumbing."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    make_spec,
    run_incast_point,
    run_incast_sweep,
)
from repro.experiments.registry import describe, experiment_ids, get_runner
from repro.experiments.runner import build_parser, main


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in ("fig1", "fig2", "table1", "fig6", "fig7", "fig8",
                         "fig9", "fig11", "fig12", "fig13", "fig14"):
            assert required in ids

    def test_get_runner_unknown(self):
        with pytest.raises(KeyError):
            get_runner("fig99")

    def test_describe(self):
        assert describe("fig1").startswith("fig1:")

    def test_runners_callable(self):
        for experiment_id in experiment_ids():
            assert callable(get_runner(experiment_id))


class TestExperimentResult:
    def _result(self):
        return ExperimentResult("figX", "Title", ["a", "b"], [[1, 2], [3, 4]], ["note"])

    def test_to_text(self):
        text = self._result().to_text()
        assert "figX: Title" in text
        assert "note: note" in text

    def test_to_csv(self):
        csv_text = self._result().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"


class TestMakeSpec:
    def test_rto_override(self):
        spec = make_spec("dctcp", rto_min_ms=10.0)
        assert spec.tcp_config.rto_min_ns == 10_000_000

    def test_floor_override(self):
        spec = make_spec("tcp", min_cwnd_mss=1.0)
        assert spec.tcp_config.min_cwnd_mss == 1.0

    def test_plus_overrides(self):
        spec = make_spec("dctcp+", plus_overrides={"divisor_factor": 3.0})
        assert spec.plus_config.divisor_factor == 3.0


class TestRunIncastPoint:
    def test_point_aggregates_seeds(self):
        point = run_incast_point("dctcp", 4, rounds=2, seeds=(1, 2))
        assert point.rounds == 4  # 2 rounds x 2 seeds
        assert point.goodput_mbps > 0
        assert len(point.flow_stats) == 8  # 4 flows x 2 seeds

    def test_queue_sampling_collects(self):
        point = run_incast_point("dctcp", 2, rounds=1, seeds=(1,), sample_queue=True)
        assert len(point.queue_samples_bytes) > 0

    def test_background_attaches(self):
        point = run_incast_point("dctcp", 2, rounds=1, seeds=(1,), with_background=True)
        assert getattr(point, "bg_throughput_mbps", 0) > 0

    def test_sweep_shape(self):
        sweep = run_incast_sweep(("dctcp", "tcp"), (2, 4), rounds=1, seeds=(1,))
        assert set(sweep) == {"dctcp", "tcp"}
        assert [p.n_flows for p in sweep["dctcp"]] == [2, 4]


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert not args.paper

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out


class TestDriversSmoke:
    """Each driver runs end-to-end at minimal scale and emits a table."""

    def test_fig1(self):
        from repro.experiments.fig01_goodput_collapse import run

        result = run(n_values=(2, 4), rounds=1, seeds=(1,))
        assert len(result.rows) == 2
        assert result.to_text()

    def test_fig2(self):
        from repro.experiments.fig02_cwnd_distribution import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        assert result.headers[0] == "cwnd (MSS)"
        # frequencies within each column sum to ~1
        for col in range(1, len(result.headers)):
            total = sum(row[col] for row in result.rows)
            assert total == pytest.approx(1.0, abs=0.02)

    def test_table1(self):
        from repro.experiments.table1_timeout_taxonomy import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        assert len(result.rows) == 1
        assert result.rows[0][0] == "N=4"

    def test_fig6(self):
        from repro.experiments.fig06_partial_dctcp_plus import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        assert len(result.rows) == 1

    def test_fig7(self):
        from repro.experiments.fig07_full_dctcp_plus import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        assert len(result.rows) == 1
        assert len(result.headers) == 7

    def test_fig8(self):
        from repro.experiments.fig08_rto_10ms import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        assert len(result.rows) == 1

    def test_fig9(self):
        from repro.experiments.fig09_queue_cdf import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        # CDF columns are monotone non-decreasing in the threshold
        for col in range(1, len(result.headers)):
            probs = [row[col] for row in result.rows]
            assert probs == sorted(probs)

    def test_fig11(self):
        from repro.experiments.fig11_12_background import run

        result = run(n_values=(4,), rounds=1, seeds=(1,))
        assert len(result.rows) == 1

    def test_fig13(self):
        from repro.experiments.fig13_benchmark import run

        result = run(n_queries=3, n_background=3, n_short=1, query_fanout=4)
        assert any(row[0] == "query" for row in result.rows)

    def test_fig14(self):
        from repro.experiments.fig14_initial_rounds import run

        result = run(n_flows=4, bytes_per_flow=64 * 1024, rounds=1)
        assert result.rows  # time series emitted
