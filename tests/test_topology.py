"""Tests for the two-tier testbed topology builder."""

import pytest

from repro.net.packet import make_data_packet
from repro.net.topology import TopologyParams, build_star, build_two_tier
from repro.sim.engine import Simulator

from .helpers import CaptureEndpoint as Endpoint, intern


class TestStructure:
    def test_default_shape(self):
        tree = build_two_tier(Simulator())
        assert len(tree.servers) == 9
        assert len(tree.leaves) == 2
        assert tree.aggregator.name == "aggregator"
        assert tree.root.name == "switch1"

    def test_servers_round_robin_across_leaves(self):
        tree = build_two_tier(Simulator())
        assert tree.server_leaf == [0, 1, 0, 1, 0, 1, 0, 1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_two_tier(Simulator(), TopologyParams(n_servers=0))
        with pytest.raises(ValueError):
            build_two_tier(Simulator(), TopologyParams(n_leaf_switches=0))


class TestPaperQuantities:
    def test_baseline_rtt_near_100us(self):
        tree = build_two_tier(Simulator())
        rtt = tree.baseline_rtt_ns()
        assert 90_000 <= rtt <= 130_000  # the paper's ~100 us RTT

    def test_pipeline_capacity_near_paper_value(self):
        # paper: C*D + B = 1 Gbps x 100 us + 128 KB ~= 140.5 KB
        tree = build_two_tier(Simulator())
        assert tree.pipeline_capacity_bytes == pytest.approx(140.5 * 1024, rel=0.05)

    def test_hops_between(self):
        tree = build_two_tier(Simulator())
        assert tree.hops_between(tree.servers[0], tree.aggregator) == 3
        assert tree.hops_between(tree.servers[0], tree.servers[2]) == 2  # same leaf
        assert tree.hops_between(tree.servers[0], tree.servers[1]) == 4  # cross leaf
        assert tree.hops_between(tree.servers[0], tree.servers[0]) == 0


class TestReachability:
    def _deliver(self, sim, tree, src, dst):
        ep = Endpoint(sim)
        flow = 999_000 + src.node_id * 1000 + dst.node_id
        dst.register_flow(flow, ep)
        src.send(intern(sim, make_data_packet(flow, src.node_id, dst.node_id, seq=0, payload_len=10)))
        sim.run_until_idle()
        dst.unregister_flow(flow)
        return len(ep.packets)

    def test_every_server_reaches_aggregator(self):
        sim = Simulator()
        tree = build_two_tier(sim)
        for server in tree.servers:
            assert self._deliver(sim, tree, server, tree.aggregator) == 1

    def test_aggregator_reaches_every_server(self):
        sim = Simulator()
        tree = build_two_tier(sim)
        for server in tree.servers:
            assert self._deliver(sim, tree, tree.aggregator, server) == 1

    def test_server_to_server_cross_leaf(self):
        sim = Simulator()
        tree = build_two_tier(sim)
        assert self._deliver(sim, tree, tree.servers[0], tree.servers[1]) == 1

    def test_server_to_server_same_leaf(self):
        sim = Simulator()
        tree = build_two_tier(sim)
        assert self._deliver(sim, tree, tree.servers[0], tree.servers[2]) == 1


class TestBottleneck:
    def test_bottleneck_port_feeds_aggregator(self):
        tree = build_two_tier(Simulator())
        assert tree.bottleneck_port is tree.root.route_for(tree.aggregator.node_id)

    def test_ecn_threshold_applied(self):
        params = TopologyParams(ecn_threshold_bytes=5000)
        tree = build_two_tier(Simulator(), params)
        assert tree.bottleneck_port.queue.ecn_threshold_bytes == 5000

    def test_buffer_size_applied(self):
        params = TopologyParams(buffer_bytes=64 * 1024)
        tree = build_two_tier(Simulator(), params)
        assert tree.bottleneck_port.queue.capacity_bytes == 64 * 1024


class TestDumbbell:
    def test_shape_and_reachability(self):
        sim = Simulator()
        tree = build_star(sim, n_senders=3)
        assert len(tree.servers) == 3
        ep = Endpoint(sim)
        tree.aggregator.register_flow(5, ep)
        tree.servers[2].send(
            intern(
                sim,
                make_data_packet(
                    5, tree.servers[2].node_id, tree.aggregator.node_id, seq=0, payload_len=10
                ),
            )
        )
        sim.run_until_idle()
        assert len(ep.packets) == 1

    def test_baseline_rtt_shorter_than_tree(self):
        assert (
            build_star(Simulator()).baseline_rtt_ns()
            < build_two_tier(Simulator()).baseline_rtt_ns()
        )
