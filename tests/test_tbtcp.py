"""Tests for the TBTCP-style tiny-buffer strategy (pacing + window cap)."""

import pytest

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.tbtcp import TBTCP_CWND_CAP_MSS, TbtcpSender, TinyBufferPacer
from repro.workloads.ids import next_flow_id

MSS = 1460


def harness(seed_rtt=100 * US, total=200 * MSS):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=seed_rtt, rto_min_ns=5 * MS)
    s = TbtcpSender(
        sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), config=cfg
    )
    return sim, s


class TestPacer:
    def test_interval_is_srtt_over_window_segments(self):
        sim, s = harness()
        s.cwnd = 10.0 * MSS
        # srtt/ (cwnd/mss) = 100us / 10 segments = 10us between departures
        assert s.pacer._interval_ns() == 10 * US

    def test_interval_tracks_window(self):
        sim, s = harness()
        s.cwnd = 2.0 * MSS
        wide = s.pacer._interval_ns()
        s.cwnd = 8.0 * MSS
        assert s.pacer._interval_ns() == pytest.approx(wide / 4, rel=0.01)

    def test_unseeded_rtt_falls_back_to_rto_initial(self):
        sim, s = harness(seed_rtt=None)
        assert s.rtt.srtt_ns is None
        assert s.pacer._interval_ns() > 0

    def test_next_send_time_never_in_the_past(self):
        sim, s = harness()
        pacer = s.pacer
        assert pacer.next_send_time(500) == 500
        pacer.on_sent(500)
        assert pacer.next_send_time(500) == 500 + pacer._interval_ns()

    def test_departures_are_spaced(self):
        sim, s = harness()
        s.cwnd = 10.0 * MSS  # a full window in flight without ACK clocking
        s.send(40 * MSS)
        sends = []
        original = TinyBufferPacer.on_sent

        def spy(pacer, now):
            sends.append(now)
            original(pacer, now)

        TinyBufferPacer.on_sent = spy
        try:
            sim.run(until=2 * MS)
        finally:
            TinyBufferPacer.on_sent = original
        assert len(sends) >= 8
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        # Paced: no back-to-back burst (a 1460 B frame serializes in
        # ~1.2 us at 10 Gbps; the pace floor here is srtt/cap = 10 us).
        assert min(gaps) >= 5 * US


class TestWindowCap:
    def test_initial_window_clamped(self):
        sim, s = harness()
        assert s.cwnd <= TBTCP_CWND_CAP_MSS * MSS

    def test_growth_stops_at_cap(self):
        sim, s = harness()
        s.send(500 * MSS)
        sim.run(until=20 * MS)
        assert s.cwnd <= TBTCP_CWND_CAP_MSS * MSS


class TestEndToEnd:
    def test_single_flow_still_link_limited(self):
        result = run_scenario(ScenarioSpec.create(protocol="tbtcp", n_flows=1, rounds=1, seed=1))
        assert result.goodput_mbps > 700

    def test_queue_held_lower_than_dctcp(self):
        tb = run_scenario(
            ScenarioSpec.create(protocol="tbtcp", n_flows=16, rounds=1, seed=1, sample_queue=True)
        )
        dc = run_scenario(
            ScenarioSpec.create(protocol="dctcp", n_flows=16, rounds=1, seed=1, sample_queue=True)
        )
        assert tb.bad_rounds == 0
        assert max(tb.queue_samples_bytes) <= max(dc.queue_samples_bytes)
