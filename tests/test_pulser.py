"""Tests for the Pulser-style explicit incast-notification strategy."""

import pytest

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.packet import make_ack_packet, make_data_packet
from repro.net.queues import DropTailQueue
from repro.net.topology import TopologyParams, build_star, build_two_tier
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.pulser import INC_BACKOFF_FACTOR, PulserSender, install_incast_notification
from repro.tcp.receiver import TcpReceiver
from repro.workloads.ids import next_flow_id
from repro.net.pool import PacketPool

from .helpers import CaptureEndpoint, intern

MSS = 1460


def seg(sim, seq, inc=False):
    pkt = make_data_packet(1, 0, 0, seq=seq, payload_len=1000, ect=True)
    pkt.inc = inc
    return intern(sim, pkt)


class TestQueueMarking:
    def test_disabled_by_default(self):
        sim = Simulator()
        pool = PacketPool.of(sim)
        q = DropTailQueue(capacity_bytes=10_000, ecn_threshold_bytes=None, pool=pool)
        for i in range(9):
            q.enqueue(seg(sim, i * 1000))
        assert q.inc_marked_packets == 0
        assert all(not pool.view(h).inc for h in q._queue)

    def test_marks_above_threshold_only(self):
        sim = Simulator()
        pool = PacketPool.of(sim)
        q = DropTailQueue(capacity_bytes=100_000, ecn_threshold_bytes=None, pool=pool)
        q.inc_threshold_bytes = 3_000
        handles = [seg(sim, i * 1000) for i in range(6)]
        for h in handles:
            q.enqueue(h)
        # Wire size is payload + header, so occupancy passes 3000 after
        # the third admit; the 4th..6th arrivals see occupancy > threshold.
        assert [pool.view(h).inc for h in handles] == [False, False, False, True, True, True]
        assert q.inc_marked_packets == 3

    def test_already_marked_packet_not_recounted(self):
        sim = Simulator()
        pool = PacketPool.of(sim)
        q = DropTailQueue(capacity_bytes=100_000, ecn_threshold_bytes=None, pool=pool)
        q.inc_threshold_bytes = 0
        q.enqueue(seg(sim, 0))  # occupancy 0 at arrival: not > 0, unmarked
        marked = seg(sim, 1000, inc=True)
        q.enqueue(marked)
        assert q.inc_marked_packets == 0


class TestInstall:
    def test_threshold_sits_above_ecn_knee(self):
        sim = Simulator()
        tree = build_two_tier(
            sim, params=TopologyParams(buffer_bytes=128 * 1024, ecn_threshold_bytes=32 * 1024)
        )
        install_incast_notification(tree)
        assert tree.bottleneck_port.queue.inc_threshold_bytes == 64 * 1024

    def test_threshold_capped_at_three_quarters_of_buffer(self):
        sim = Simulator()
        tree = build_two_tier(
            sim, params=TopologyParams(buffer_bytes=64 * 1024, ecn_threshold_bytes=32 * 1024)
        )
        install_incast_notification(tree)
        assert tree.bottleneck_port.queue.inc_threshold_bytes == 48 * 1024

    def test_no_ecn_uses_half_buffer(self):
        sim = Simulator()
        tree = build_two_tier(
            sim, params=TopologyParams(buffer_bytes=64 * 1024, ecn_threshold_bytes=None)
        )
        install_incast_notification(tree)
        assert tree.bottleneck_port.queue.inc_threshold_bytes == 32 * 1024


class TestReceiverEcho:
    def test_inc_echoed_once_then_cleared(self):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        trap = CaptureEndpoint(sim)
        tree.servers[0].register_flow(1, trap)
        recv = TcpReceiver(sim, tree.aggregator, tree.servers[0].node_id, 1)
        marked = make_data_packet(1, 0, 0, seq=0, payload_len=1000, ect=True)
        marked.inc = True
        recv.on_packet(intern(sim, marked))
        recv.on_packet(intern(sim, make_data_packet(1, 0, 0, seq=1000, payload_len=1000, ect=True)))
        sim.run_until_idle()
        assert [a.inc for a in trap.packets] == [True, False]


def harness(total=100 * MSS):
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    cfg = TcpConfig(seed_rtt_ns=100 * US, rto_min_ns=5 * MS)
    s = PulserSender(
        sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), config=cfg
    )
    s.send(total)
    sim.run(until=1)
    return sim, s


def inc_ack(sender, ack_seq):
    """Deliver an incast-echo ACK straight into the sender state machine."""
    sender._on_ack(ack_seq, False, 1)


class TestSenderBackoff:
    def test_inc_echo_halves_window_once_per_window(self):
        sim, s = harness()
        s.cwnd = 20.0 * MSS
        before = s.cwnd
        inc_ack(s, MSS)
        assert s.incast_backoffs == 1
        assert s.cwnd == pytest.approx(before * INC_BACKOFF_FACTOR, rel=0.1)
        after_first = s.cwnd
        # A second echo inside the same window of data is ignored.
        inc_ack(s, 2 * MSS)
        assert s.incast_backoffs == 1
        assert s.inc_acks_received == 2
        assert s.cwnd <= after_first + MSS

    def test_guard_reopens_after_window_advances(self):
        sim, s = harness()
        s.cwnd = 20.0 * MSS
        inc_ack(s, MSS)
        guard = s._inc_guard_seq
        assert s.snd_una < guard <= s.snd_nxt
        # A plain ACK advances snd_una past the guard; the next echo is
        # a fresh window of data and backs off again.
        s._on_ack(guard, False, 0)
        assert s.snd_una >= guard
        inc_ack(s, s.snd_una)
        assert s.incast_backoffs == 2

    def test_window_never_below_floor(self):
        sim, s = harness()
        floor = s.config.min_cwnd_bytes
        s.cwnd = float(floor)
        inc_ack(s, MSS)
        assert s.cwnd >= floor


class TestEndToEnd:
    def test_pulser_incast_completes(self):
        spec = ScenarioSpec.create(protocol="pulser", n_flows=32, rounds=1, seed=1)
        result = run_scenario(spec)
        assert result.goodput_mbps > 0
        assert result.fct_ms > 0

    def test_pulser_single_flow_matches_dctcp_goodput(self):
        pulser = run_scenario(ScenarioSpec.create(protocol="pulser", n_flows=1, rounds=1, seed=1))
        dctcp = run_scenario(ScenarioSpec.create(protocol="dctcp", n_flows=1, rounds=1, seed=1))
        # One flow never trips the onset detector, so Pulser degenerates
        # to plain DCTCP.
        assert pulser.goodput_mbps == pytest.approx(dctcp.goodput_mbps)
