"""Tests for seeded RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry, make_rng, uniform_time


class TestRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(42)
        assert reg.stream("a").random() == reg.stream("a").random()

    def test_different_names_differ(self):
        reg = RngRegistry(42)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("a").random() != RngRegistry(2).stream("a").random()

    def test_stable_across_instances(self):
        # The mapping must not depend on interpreter hash salting.
        assert RngRegistry(7).stream("flow/1").random() == RngRegistry(7).stream("flow/1").random()

    def test_spawn_derives_new_registry(self):
        reg = RngRegistry(3)
        child_a = reg.spawn(1)
        child_b = reg.spawn(2)
        assert child_a.stream("x").random() != child_b.stream("x").random()
        assert reg.spawn(1).stream("x").random() == child_a.stream("x").random()

    def test_adding_consumer_does_not_perturb_existing(self):
        reg1 = RngRegistry(9)
        seq_before = [reg1.stream("flow/1").random() for _ in range(3)]
        reg2 = RngRegistry(9)
        reg2.stream("flow/0")  # a new consumer
        seq_after = [reg2.stream("flow/1").random() for _ in range(3)]
        assert seq_before == seq_after


class TestUniformTime:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            uniform_time(make_rng(1), 0)
        with pytest.raises(ValueError):
            uniform_time(make_rng(1), -10)

    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=0, max_value=2**31))
    def test_in_half_open_interval(self, upper, seed):
        value = uniform_time(make_rng(seed), upper)
        assert 0 < value <= upper

    def test_uses_full_range(self):
        rng = make_rng(0)
        draws = {uniform_time(rng, 4) for _ in range(200)}
        assert draws == {1, 2, 3, 4}
