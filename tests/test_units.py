"""Unit tests for repro.sim.units (time/size/rate conversions)."""

import pytest

from repro.sim import units


class TestTimeConversions:
    def test_constants_ratios(self):
        assert units.SECOND == 1000 * units.MILLISECOND
        assert units.MILLISECOND == 1000 * units.MICROSECOND
        assert units.MICROSECOND == 1000 * units.NANOSECOND

    def test_microseconds_round_trip(self):
        assert units.microseconds(100) == 100_000
        assert units.to_microseconds(units.microseconds(123.4)) == pytest.approx(123.4)

    def test_milliseconds(self):
        assert units.milliseconds(200) == 200_000_000
        assert units.to_milliseconds(units.milliseconds(0.5)) == pytest.approx(0.5)

    def test_seconds(self):
        assert units.seconds(1.5) == 1_500_000_000
        assert units.to_seconds(units.SECOND) == 1.0

    def test_fractional_rounding(self):
        assert units.microseconds(0.4999) == 500  # rounds to nearest ns
        assert units.microseconds(1.5001) == 1500


class TestTransmissionTime:
    def test_full_mss_at_gigabit(self):
        # 1500 B at 1 Gbps = 12 us exactly
        assert units.transmission_time_ns(1500, units.GBPS) == 12_000

    def test_rounds_up(self):
        # 1 byte at 3 bps: 8/3 s -> ceil
        assert units.transmission_time_ns(1, 3) == -(-8 * units.SECOND // 3)

    def test_zero_bytes(self):
        assert units.transmission_time_ns(0, units.GBPS) == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(100, 0)
        with pytest.raises(ValueError):
            units.transmission_time_ns(100, -5)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(-1, units.GBPS)

    def test_back_to_back_never_overlap(self):
        # ceil rounding means k packets take at least k * exact_time
        t1 = units.transmission_time_ns(1461, units.GBPS)
        assert 10 * t1 >= units.transmission_time_ns(14610, units.GBPS)


class TestThroughput:
    def test_bits_per_second(self):
        # 125 MB in 1 s = 1 Gbps
        assert units.bits_per_second(125_000_000, units.SECOND) == pytest.approx(1e9)

    def test_zero_duration(self):
        assert units.bits_per_second(1000, 0) == 0.0

    def test_negative_duration(self):
        assert units.bits_per_second(1000, -5) == 0.0


class TestDataSizes:
    def test_kb_mb(self):
        assert units.MB == 1024 * units.KB
        assert units.KB == 1024
