"""Smoke tests: every example script runs end-to-end (tiny scales)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_state_machine_demo(self, capsys):
        run_example("state_machine_demo.py", [])
        out = capsys.readouterr().out
        assert "DCTCP_Time_Inc" in out
        assert "DCTCP_NORMAL" in out

    def test_incast_sweep(self, capsys):
        run_example(
            "incast_sweep.py",
            ["--protocols", "dctcp", "--flows", "4", "--rounds", "2"],
        )
        out = capsys.readouterr().out
        assert "Incast goodput sweep" in out
        assert "dctcp Mbps" in out

    def test_background_mix(self, capsys):
        run_example("background_mix.py", ["--flows", "6", "--rounds", "2"])
        out = capsys.readouterr().out
        assert "long-flow Mbps" in out

    def test_deadline_flows(self, capsys):
        run_example("deadline_flows.py", ["--flows", "6", "--rounds", "2", "--deadline-ms", "100"])
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_partition_aggregate(self, capsys):
        run_example(
            "partition_aggregate.py",
            ["--queries", "4", "--background", "4", "--fanout", "6"],
        )
        out = capsys.readouterr().out
        assert "Partition/aggregate benchmark" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        run_example("quickstart.py", [])
        out = capsys.readouterr().out
        assert "DCTCP+" in out
