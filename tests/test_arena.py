"""Tests for the arena experiment (every CC head-to-head)."""

from repro.exec import ParallelExecutor, SerialExecutor, using_executor
from repro.experiments.arena import QUICK_KWARGS, run
from repro.experiments.registry import experiment_ids, get_runner, quick_scale_kwargs
from repro.tcp.cc import cc_names

TINY = dict(n_values=(2, 4), rounds=1, seeds=(1,))


class TestArena:
    def test_registered_and_quick_kwargs_exposed(self):
        assert "arena" in experiment_ids()
        assert get_runner("arena") is run
        assert quick_scale_kwargs("arena") == QUICK_KWARGS

    def test_covers_every_registered_cc(self):
        result = run(**TINY)
        ccs_in_table = {row[0] for row in result.rows}
        assert len(ccs_in_table) == len(cc_names()) >= 5
        assert len(result.rows) == len(cc_names()) * 2

    def test_scoring_columns(self):
        result = run(ccs=("dctcp", "dctcp+"), **TINY)
        assert result.headers == [
            "CC", "N", "goodput (Mbps)", "p99 FCT (ms)", "timeouts",
            "FLoss-TO", "LAck-TO", "bad rounds",
        ]
        for row in result.rows:
            assert row[2] > 0        # goodput
            assert row[3] > 0        # p99 FCT
            assert row[4] >= row[5] + row[6]  # taxonomy partitions the timeouts

    def test_serial_and_parallel_tables_identical(self):
        with using_executor(SerialExecutor()):
            serial = run(ccs=("dctcp", "pulser", "tbtcp"), **TINY)
        with using_executor(ParallelExecutor(workers=2)):
            parallel = run(ccs=("dctcp", "pulser", "tbtcp"), **TINY)
        assert serial.rows == parallel.rows

    def test_restricted_field(self):
        result = run(ccs=("tbtcp",), n_values=(2,), rounds=1, seeds=(1,))
        assert [row[0] for row in result.rows] == ["TBTCP"]
