"""Tests for the many-to-many swarm workload."""

import pytest

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.topology import TopologyParams, build_dumbbell, build_fat_tree, build_star
from repro.sim.engine import Simulator
from repro.workloads.protocols import spec_for
from repro.workloads.swarm import SwarmConfig, SwarmWorkload


def _run(config, tree_factory, seed=1, protocol="dctcp+"):
    sim = Simulator(seed=seed)
    tree = tree_factory(sim)
    workload = SwarmWorkload(sim, tree, spec_for(protocol), config)
    workload.run_to_completion(max_events=20_000_000)
    assert workload.finished
    workload.close()
    return workload


def _star(sim):
    return build_star(sim, n_senders=3)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SwarmConfig(n_peers=1)
        with pytest.raises(ValueError):
            SwarmConfig(n_peers=2, n_pieces=0)
        with pytest.raises(ValueError):
            SwarmConfig(n_peers=2, piece_bytes=0)

    def test_needs_two_hosts(self):
        sim = Simulator(seed=1)
        tree = build_star(sim, n_senders=1)
        tree.servers.clear()
        spec = spec_for("dctcp")
        # Pre-seed the RTT: the base class would otherwise derive it from
        # the (deliberately degenerate) topology before the host check.
        spec.tcp_config = spec.tcp_config.with_overrides(seed_rtt_ns=100_000)
        with pytest.raises(ValueError, match="two hosts"):
            SwarmWorkload(sim, tree, spec, SwarmConfig(n_peers=4))


class TestFetchLoop:
    def test_every_piece_fetched_and_recorded(self):
        config = SwarmConfig(n_peers=4, n_pieces=2, piece_bytes=8_192)
        workload = _run(config, _star)
        assert len(workload.peers) == 4
        assert len(workload.rounds) == 4 * 2
        assert all(r.completed for r in workload.rounds)
        assert all(r.bytes_received == 8_192 for r in workload.rounds)
        assert workload.mean_goodput_bps > 0

    def test_peers_clamped_to_host_count(self):
        config = SwarmConfig(n_peers=50, n_pieces=1, piece_bytes=4_096)
        workload = _run(config, _star)
        assert len(workload.peers) == 4  # 1 receiver + 3 senders

    def test_pairs_are_persistent_and_directional(self):
        config = SwarmConfig(n_peers=3, n_pieces=6, piece_bytes=4_096)
        workload = _run(config, _star)
        n = len(workload.peers)
        assert len(workload._pairs) <= n * (n - 1)
        for (src, fetcher) in workload._pairs:
            assert src != fetcher  # nobody fetches from themselves
        # Channels are reused: fewer TCP pairs than total fetches.
        assert len(workload.senders) == len(workload._pairs)
        assert len(workload.rounds) > len(workload._pairs) - n

    def test_giveup_records_failed_fetch(self):
        config = SwarmConfig(
            n_peers=3, n_pieces=4, piece_bytes=1_000_000, fetch_deadline_ns=10_000
        )
        workload = _run(config, _star)
        assert workload.finished
        assert len(workload.rounds) == 3  # each peer fails its first fetch
        assert not any(r.completed for r in workload.rounds)


class TestDeterminism:
    def _trace(self, seed):
        config = SwarmConfig(n_peers=4, n_pieces=3, piece_bytes=16_384)
        workload = _run(config, _star, seed=seed)
        return [(r.start_ns, r.duration_ns) for r in workload.rounds]

    def test_same_seed_identical_rounds(self):
        assert self._trace(9) == self._trace(9)

    def test_seed_changes_source_picks(self):
        assert self._trace(9) != self._trace(10)


class TestMultipath:
    def _fat_tree_run(self, ecmp_mode):
        params = TopologyParams(fat_tree_k=4, hosts_per_edge=1, ecmp_mode=ecmp_mode)
        config = SwarmConfig(n_peers=8, n_pieces=2, piece_bytes=64 * 1024)
        return _run(config, lambda sim: build_fat_tree(sim, params))

    def test_flow_ecmp_preserves_order(self):
        workload = self._fat_tree_run("flow")
        assert all(r.completed for r in workload.rounds)
        assert workload.total_reordered_packets == 0

    def test_packet_spray_reorders_but_still_completes(self):
        workload = self._fat_tree_run("packet")
        assert all(r.completed for r in workload.rounds)
        # The spray splits one flow's segments across unequal queues; the
        # receiver's reassembly buffer must absorb (and count) the shuffle.
        assert workload.total_reordered_packets > 0
        assert workload.total_timeouts == 0

    def test_runs_on_dumbbell_both_directions(self):
        config = SwarmConfig(n_peers=4, n_pieces=2, piece_bytes=16_384)
        workload = _run(
            config,
            lambda sim: build_dumbbell(
                sim, TopologyParams(n_pairs=2, leg_delays_ns=(5_000, 25_000))
            ),
        )
        assert len(workload.rounds) == 8
        assert all(r.completed for r in workload.rounds)


class TestScenarioIntegration:
    def test_run_scenario_swarm_point(self):
        spec = ScenarioSpec.create(
            "dctcp",
            4,
            rounds=2,
            seed=1,
            workload="swarm",
            workload_overrides=dict(piece_bytes=16_384),
        )
        result = run_scenario(spec, validate=True)
        assert result.rounds == 8
        assert result.goodput_mbps > 0
