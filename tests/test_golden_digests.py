"""Golden determinism digests for every registry experiment.

Every experiment in the registry is run at tiny scale (see
``tests/golden_specs.py``) and the SHA-256 of its ``ExperimentResult``
JSON is compared against the committed ``tests/golden/digests.json``.
These digests were generated from the pre-optimization engine, so they
prove that hot-path work (timer rescheduling, event recycling, fused
dispatch, per-simulator packet ids) is *semantically invisible*: same
inputs, byte-identical outputs.

A second pass pins executor equivalence: a two-worker process pool must
produce the exact digest the serial path does, i.e. results cannot depend
on which process ran a point or in what order.

On an intentional behaviour change, regenerate with::

    PYTHONPATH=src python tests/regen_goldens.py
"""

import hashlib
import json
import os

import pytest

from repro.exec.context import using_executor
from repro.exec.executors import ParallelExecutor
from repro.experiments.registry import experiment_ids, get_runner

from .golden_specs import TINY_KWARGS, digest_experiment

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "digests.json")


def _committed_digests():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_every_registry_experiment_has_a_golden_entry():
    committed = _committed_digests()
    assert sorted(committed) == sorted(experiment_ids())
    assert sorted(TINY_KWARGS) == sorted(experiment_ids())


@pytest.mark.parametrize("experiment_id", sorted(TINY_KWARGS))
def test_golden_digest(experiment_id):
    committed = _committed_digests()
    assert digest_experiment(experiment_id) == committed[experiment_id], (
        f"{experiment_id}: simulation output changed.  If intentional, "
        "regenerate with `PYTHONPATH=src python tests/regen_goldens.py`."
    )


def test_two_worker_pool_matches_serial_digest():
    """``--workers 2`` must be bit-for-bit identical to the serial path."""
    experiment_id = "fig1"
    runner = get_runner(experiment_id)
    with using_executor(ParallelExecutor(2)):
        result = runner(**TINY_KWARGS[experiment_id])
    digest = hashlib.sha256(result.to_json().encode()).hexdigest()
    assert digest == _committed_digests()[experiment_id]
