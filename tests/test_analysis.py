"""Tests for the analytic pipeline-capacity models, cross-checked against
the paper's numbers and (coarsely) against the simulator."""

import pytest

from repro.analysis import (
    PathModel,
    collapse_fanin,
    expected_goodput_bps,
    required_slow_time_ns,
    rto_bound_goodput_bps,
)
from repro.sim.units import GBPS, KB, MB, MS, US

#: the paper's testbed path
PAPER_PATH = PathModel(link_rate_bps=GBPS, base_rtt_ns=100 * US, buffer_bytes=128 * KB)


class TestPipelineCapacity:
    def test_paper_value(self):
        # Section IV.C: 1 Gbps x 100 us + 128 KB ~= 140.5 "KB" (the paper
        # mixes decimal kB for C x D with binary KB for the buffer; the
        # exact value is 12_500 + 131_072 bytes)
        assert PAPER_PATH.pipeline_capacity_bytes == pytest.approx(143_572, rel=0.001)
        assert PAPER_PATH.pipeline_capacity_bytes == pytest.approx(140.5 * KB, rel=0.01)

    def test_bdp(self):
        assert PAPER_PATH.bandwidth_delay_product_bytes == pytest.approx(12_500)

    def test_packet_service_time(self):
        assert PAPER_PATH.packet_service_time_ns() == pytest.approx(12_000)


class TestCollapseFanin:
    def test_paper_examples(self):
        # "If w(i,t)=3MSS, 40 flows = 180 KB exceeds Pipeline Capacity":
        # the model must place the w=3 collapse below 40 flows...
        assert collapse_fanin(PAPER_PATH, 3.0) < 40
        # ...and the w=2 collapse between 40 and 60 ("when N=60, even if
        # w=2MSS, 180KB also exceeds").
        assert 40 <= collapse_fanin(PAPER_PATH, 2.0) < 60

    def test_monotone_in_window(self):
        assert collapse_fanin(PAPER_PATH, 1.0) > collapse_fanin(PAPER_PATH, 2.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            collapse_fanin(PAPER_PATH, 0)

    def test_brackets_simulated_dctcp_collapse(self):
        """The simulator's DCTCP collapse point lies in the analytic
        [w=3, w=2] bracket (DCTCP flows oscillate between 2 and 3 MSS)."""
        low = collapse_fanin(PAPER_PATH, 3.0)   # ~31
        high = collapse_fanin(PAPER_PATH, 2.0)  # ~49
        from repro.net.topology import build_two_tier
        from repro.sim.engine import Simulator
        from repro.workloads.incast import IncastConfig, IncastWorkload
        from repro.workloads.protocols import spec_for

        def goodput(n):
            sim = Simulator(seed=42)
            tree = build_two_tier(sim)
            wl = IncastWorkload(sim, tree, spec_for("dctcp"), IncastConfig(n_flows=n, n_rounds=6))
            wl.run_to_completion(max_events=80_000_000)
            return wl.mean_goodput_bps

        assert goodput(max(low - 12, 2)) > 500e6   # healthy below the bracket
        assert goodput(high + 15) < 200e6          # collapsed above it


class TestRequiredSlowTime:
    def test_zero_when_ack_clock_suffices(self):
        # few flows: N * 12 us < RTT -> no pacing needed
        assert required_slow_time_ns(PAPER_PATH, 5) == 0.0

    def test_scales_linearly_at_high_fanin(self):
        s80 = required_slow_time_ns(PAPER_PATH, 80)
        s160 = required_slow_time_ns(PAPER_PATH, 160)
        assert s160 - s80 == pytest.approx(80 * 12_000, rel=0.01)

    def test_paper_scale_magnitude(self):
        # at N=200 the needed interval is ~2.4 ms -> slow_time ~2.3 ms
        assert required_slow_time_ns(PAPER_PATH, 200) == pytest.approx(
            200 * 12_000 - 100_000, rel=0.01
        )

    def test_validates(self):
        with pytest.raises(ValueError):
            required_slow_time_ns(PAPER_PATH, 0)


class TestGoodputModels:
    def test_rto_floor_matches_figures(self):
        # 1 MB rounds with one 200 ms stall: the ~41 Mbps floor of Fig. 1/7
        floor = rto_bound_goodput_bps(1 * MB, 200 * MS)
        assert floor == pytest.approx(41.9e6, rel=0.02)

    def test_transfer_time_included(self):
        with_transfer = rto_bound_goodput_bps(1 * MB, 200 * MS, transfer_ns=8 * MS)
        assert with_transfer < rto_bound_goodput_bps(1 * MB, 200 * MS)

    def test_expected_goodput_interpolates(self):
        clean = expected_goodput_bps(1 * MB, 9 * MS, 0.0, 200 * MS)
        dirty = expected_goodput_bps(1 * MB, 9 * MS, 1.0, 200 * MS)
        mid = expected_goodput_bps(1 * MB, 9 * MS, 0.1, 200 * MS)
        assert dirty < mid < clean

    def test_fluctuation_band_interpretation(self):
        """5-35% stall probability reproduces the paper's 600-900 Mbps
        'fluctuating' band for 1 MB rounds."""
        hi = expected_goodput_bps(1 * MB, 9 * MS, 0.05, 200 * MS)
        lo = expected_goodput_bps(1 * MB, 9 * MS, 0.35, 200 * MS)
        assert 850e6 < hi < 950e6
        assert 550e6 < lo < 700e6

    def test_validation(self):
        with pytest.raises(ValueError):
            rto_bound_goodput_bps(1 * MB, 0)
        with pytest.raises(ValueError):
            expected_goodput_bps(1 * MB, 1, 1.5, 1)
