"""Tests for the congestion-control strategy registry (repro.tcp.cc)."""

import pytest

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.tcp.cc import (
    CongestionControl,
    cc_labels,
    cc_names,
    get_cc,
    register,
    unregister,
)
from repro.tcp.dctcp import DctcpSender
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id
from repro.workloads.protocols import PROTOCOLS, spec_for

#: The paper's protocol matrix, in presentation order, followed by the
#: two arena competitors.
BUILTINS = (
    "tcp", "dctcp", "dctcp+", "dctcp+norand", "tcp+", "d2tcp", "d2tcp+",
    "pulser", "tbtcp",
)


class TestRegistry:
    def test_builtins_registered_in_paper_order(self):
        assert cc_names()[: len(BUILTINS)] == BUILTINS

    def test_protocols_constant_mirrors_registry(self):
        assert PROTOCOLS == cc_names()

    def test_get_cc_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown congestion control"):
            get_cc("vegas")

    def test_labels_cover_every_strategy(self):
        labels = cc_labels()
        assert set(labels) == set(cc_names())
        assert labels["dctcp+"] == "DCTCP+"
        assert labels["pulser"] == "Pulser"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(CongestionControl(name="dctcp", label="X", factory=lambda *a: None))

    def test_replace_and_unregister(self):
        original = get_cc("dctcp")
        try:
            substitute = CongestionControl(
                name="dctcp", label="DCTCP*", factory=original.factory
            )
            register(substitute, replace=True)
            assert get_cc("dctcp") is substitute
        finally:
            register(original, replace=True)
        register(CongestionControl(name="tmp-cc", label="T", factory=original.factory))
        unregister("tmp-cc")
        assert "tmp-cc" not in cc_names()
        unregister("tmp-cc")  # idempotent

    def test_metadata_matches_paper_matrix(self):
        assert not get_cc("tcp").ecn
        assert not get_cc("tcp+").ecn
        assert all(get_cc(n).ecn for n in BUILTINS if n not in ("tcp", "tcp+"))
        assert {n for n in BUILTINS if get_cc(n).slow_time} == {
            "dctcp+", "dctcp+norand", "tcp+", "d2tcp+",
        }
        assert {n for n in BUILTINS if get_cc(n).deadline_aware} == {"d2tcp", "d2tcp+"}
        assert get_cc("pulser").install_network is not None


class TestBuild:
    def _build(self, name, **kwargs):
        sim = Simulator()
        tree = build_star(sim, n_senders=1)
        sender = get_cc(name).build(
            sim, tree.servers[0], tree.aggregator.node_id, next_flow_id(), **kwargs
        )
        return sender

    def test_build_resolves_default_configs(self):
        sender = self._build("dctcp")
        assert isinstance(sender, DctcpSender)
        assert sender.config.ecn_enabled

    def test_tcp_strategy_forces_ecn_off(self):
        sender = self._build("tcp")
        assert type(sender) is TcpSender
        assert not sender.config.ecn_enabled

    def test_deadline_reaches_d2tcp(self):
        sender = self._build("d2tcp", deadline_ns=5_000_000)
        assert sender.deadline_ns == 5_000_000


class TestCustomStrategyEndToEnd:
    def test_registered_strategy_runs_through_spec_and_scenario(self):
        def factory(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline):
            return DctcpSender(sim, host, dst, fid, config=tcp_config, on_complete=on_complete)

        register(CongestionControl(name="test-cc", label="TestCC", factory=factory))
        try:
            assert spec_for("test-cc").label == "TestCC"
            spec = ScenarioSpec.create(
                protocol="dctcp", cc="test-cc", n_flows=2, rounds=1, seed=1
            )
            assert spec.cc_name == "test-cc"
            result = run_scenario(spec)
            assert result.goodput_mbps > 0
        finally:
            unregister("test-cc")

    def test_cc_dimension_changes_cache_key(self):
        base = ScenarioSpec.create(protocol="dctcp", n_flows=2, rounds=1, seed=1)
        routed = ScenarioSpec.create(protocol="dctcp", cc="dctcp", n_flows=2, rounds=1, seed=1)
        assert base.cache_key() != routed.cache_key()
        assert routed.to_dict()["cc"] == "dctcp"
