"""ControlEnv: the step/observe/act loop, its determinism tier, and the
autopilot byte-equivalence to uncontrolled runs."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.control import Action, ControlEnv
from repro.exec.executors import ParallelExecutor, SerialExecutor
from repro.exec.scenario import ScenarioSpec, run_scenario

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _payload(result) -> dict:
    payload = result.to_dict()
    payload.pop("wall_time_s", None)
    return payload


def _episode(protocol="dctcp", agent=None, **kwargs):
    """Run one full episode; returns (observations, summary)."""
    env = ControlEnv(protocol=protocol, **kwargs)
    observations = [env.reset()]
    while not observations[-1].done:
        action = agent(observations[-1]) if agent is not None else None
        observations.append(env.step(action))
    summary = env.summary()
    env.close()
    return observations, summary


# -- the agent loop ----------------------------------------------------------------
def test_reset_step_observe_basics():
    env = ControlEnv(n_flows=4, rounds=1, seed=1)
    obs = env.reset()
    assert obs.flow == 0 and not obs.done
    assert obs.cwnd_bytes > 0 and obs.acked_bytes >= 0
    assert env.observe() is obs
    nxt = env.step(None)
    assert env.observe() is nxt
    assert nxt.step == obs.step + 1
    env.close()


def test_step_before_reset_raises():
    env = ControlEnv(n_flows=4, rounds=1)
    with pytest.raises(RuntimeError):
        env.step(None)
    with pytest.raises(RuntimeError):
        env.observe()


def test_step_after_done_raises():
    env = ControlEnv(n_flows=2, rounds=1, seed=1)
    obs = env.reset()
    while not obs.done:
        obs = env.step(None)
    with pytest.raises(RuntimeError):
        env.step(None)
    env.close()


def test_controlled_ordinals_validated():
    with pytest.raises(ValueError):
        ControlEnv(n_flows=4, controlled=())
    with pytest.raises(ValueError):
        ControlEnv(n_flows=4, controlled=(7,))


def test_observation_stream_is_plausible():
    observations, summary = _episode(n_flows=8, rounds=2, seed=1)
    assert observations[-1].done
    assert all(0.0 <= o.marked_fraction <= 1.0 for o in observations)
    assert any(o.queue_highwater_bytes > 0 for o in observations)
    assert all(o.time_ns >= p.time_ns for p, o in zip(observations, observations[1:]))
    assert summary["goodput_mbps"] > 0
    assert summary["rounds"] == 2.0


# -- autopilot equivalence ---------------------------------------------------------
@pytest.mark.parametrize("protocol", ["dctcp", "dctcp+"])
def test_autopilot_episode_matches_uncontrolled_run(protocol):
    """step(None) on every boundary must reproduce the uncontrolled scenario
    byte-for-byte: same goodput, FCT, timeouts and round count."""
    _, summary = _episode(protocol=protocol, n_flows=8, rounds=2, seed=1)
    spec = ScenarioSpec.create(protocol=protocol, n_flows=8, rounds=2, seed=1)
    reference = run_scenario(spec)
    assert summary["goodput_mbps"] == pytest.approx(reference.goodput_mbps, abs=0)
    assert summary["fct_ms"] == pytest.approx(reference.fct_ms, abs=0)
    assert summary["timeouts"] == reference.timeouts


def test_actions_perturb_the_episode():
    _, autopilot = _episode(n_flows=8, rounds=2, seed=1)
    _, throttled = _episode(
        n_flows=8, rounds=2, seed=1,
        agent=lambda obs: Action(cwnd_scale=0.5),
    )
    assert throttled != autopilot


def test_cwnd_action_is_quantized_and_floored():
    env = ControlEnv(n_flows=4, rounds=1, seed=1)
    obs = env.reset()
    bridge = env._bridge_by_flow[obs.flow]
    env.step(Action(cwnd_bytes=1.0))  # absurdly small: must floor, not die
    sender = bridge.sender
    assert sender.cwnd >= sender.config.min_cwnd_bytes
    assert sender.cwnd % sender.config.mss == 0
    env.close()


def test_pacing_action_spaces_departures():
    _, paced = _episode(
        n_flows=8, rounds=2, seed=1,
        agent=lambda obs: Action(pacing_interval_ns=50_000),
    )
    _, free = _episode(n_flows=8, rounds=2, seed=1)
    assert paced["fct_ms"] > free["fct_ms"]


# -- determinism tier --------------------------------------------------------------
def test_episode_deterministic_across_instances():
    a_obs, a_sum = _episode(n_flows=8, rounds=2, seed=1)
    b_obs, b_sum = _episode(n_flows=8, rounds=2, seed=1)
    assert a_sum == b_sum
    assert [vars(o) for o in a_obs] == [vars(o) for o in b_obs]


def test_external_spec_serial_vs_parallel_and_validate():
    specs = [
        ScenarioSpec.create(
            protocol="dctcp+", cc="external:dctcp-plus-scripted",
            n_flows=n, rounds=2, seed=1,
        )
        for n in (4, 8)
    ]
    serial = [_payload(r) for r in SerialExecutor().map(specs)]
    parallel = [_payload(r) for r in ParallelExecutor(workers=2).map(specs)]
    assert serial == parallel
    validated = [_payload(run_scenario(s, validate=True)) for s in specs]
    assert serial == validated


def test_episode_digest_stable_across_process_restarts():
    code = (
        "import json, sys\n"
        "from repro.control import ControlEnv, Action\n"
        "env = ControlEnv(n_flows=8, rounds=2, seed=1)\n"
        "obs = env.reset()\n"
        "step = 0\n"
        "while not obs.done:\n"
        "    act = Action(cwnd_scale=0.5) if step % 3 == 0 else None\n"
        "    obs = env.step(act)\n"
        "    step += 1\n"
        "print(json.dumps(env.summary(), sort_keys=True))\n"
    )
    outs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=300,
            env=dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="random"),
        )
        assert proc.returncode == 0, proc.stderr
        outs.append(proc.stdout)
    assert outs[0] == outs[1]
    digest = hashlib.sha256(outs[0].encode()).hexdigest()
    assert json.loads(outs[0])["goodput_mbps"] > 0
    assert len(digest) == 64


# -- env vs native/validated dispatch (satellite regression) ------------------------
def test_env_refuses_nothing_but_composes_with_validate():
    _, plain = _episode(n_flows=4, rounds=1, seed=1)
    _, validated = _episode(n_flows=4, rounds=1, seed=1, validate=True)
    assert plain == validated


def test_env_uses_pure_dispatch():
    env = ControlEnv(n_flows=4, rounds=1, seed=1)
    env.reset()
    assert env.sim._core is None
    assert env.sim.control_active
    env.close()
