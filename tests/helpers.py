"""Shared scenario builders for the test suite."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.topology import TopologyParams, TwoTierTree, build_dumbbell
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id

#: a fast-firing RTO so loss tests don't simulate 200 ms of idle time
FAST_RTO = TcpConfig(rto_min_ns=2_000_000, seed_rtt_ns=100_000)


def single_flow(
    n_senders: int = 1,
    buffer_bytes: int = 128 * 1024,
    ecn_threshold: Optional[int] = 32 * 1024,
    config: Optional[TcpConfig] = None,
    sender_cls=TcpSender,
    total_bytes: int = 100_000,
    seed: int = 1,
    **sender_kwargs,
) -> Tuple[Simulator, TwoTierTree, TcpSender, TcpReceiver]:
    """One sender -> one receiver through a single switch (dumbbell)."""
    sim = Simulator(seed=seed)
    params = TopologyParams(buffer_bytes=buffer_bytes, ecn_threshold_bytes=ecn_threshold)
    tree = build_dumbbell(sim, n_senders=n_senders, params=params)
    flow_id = next_flow_id()
    receiver = TcpReceiver(
        sim,
        tree.aggregator,
        tree.servers[0].node_id,
        flow_id,
        expected_bytes=total_bytes,
    )
    cfg = config or TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns())
    sender = sender_cls(
        sim,
        tree.servers[0],
        tree.aggregator.node_id,
        flow_id,
        config=cfg,
        **sender_kwargs,
    )
    return sim, tree, sender, receiver


def drain(sim: Simulator, max_events: int = 5_000_000) -> int:
    """Run the simulator dry with a runaway guard."""
    processed = sim.run(max_events=max_events)
    assert processed < max_events, "simulation did not converge"
    return processed
