"""Shared scenario builders for the test suite."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.pool import PacketPool
from repro.net.topology import TopologyParams, TwoTierTree, build_star
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id


def intern(sim: Simulator, packet) -> int:
    """Copy a legacy :class:`~repro.net.packet.Packet` into ``sim``'s pool.

    Unit tests build packets with the (stable, public) ``make_data_packet``
    / ``make_ack_packet`` constructors and hand the interned *handle* to
    handle-based components (endpoints, queues, links).
    """
    return PacketPool.of(sim).intern(packet)


class Snap:
    """Frozen copy of one pooled packet's fields (survives the free)."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload_len",
        "ack_seq",
        "wire_bytes",
        "packet_id",
        "end_seq",
        "is_ack",
        "ect",
        "ce",
        "ece",
        "inc",
        "is_retransmit",
    )

    def __init__(self, pool: PacketPool, h: int):
        view = pool.view(h)
        for name in self.__slots__:
            setattr(self, name, getattr(view, name))


class CaptureEndpoint:
    """Flow endpoint that snapshots then frees every delivered handle."""

    def __init__(self, sim: Simulator):
        self.pool = PacketPool.of(sim)
        self.packets: list[Snap] = []

    def on_packet(self, h: int) -> None:
        self.packets.append(Snap(self.pool, h))
        self.pool.free(h)

#: a fast-firing RTO so loss tests don't simulate 200 ms of idle time
FAST_RTO = TcpConfig(rto_min_ns=2_000_000, seed_rtt_ns=100_000)


def single_flow(
    n_senders: int = 1,
    buffer_bytes: int = 128 * 1024,
    ecn_threshold: Optional[int] = 32 * 1024,
    config: Optional[TcpConfig] = None,
    sender_cls=TcpSender,
    total_bytes: int = 100_000,
    seed: int = 1,
    **sender_kwargs,
) -> Tuple[Simulator, TwoTierTree, TcpSender, TcpReceiver]:
    """One sender -> one receiver through a single switch (star)."""
    sim = Simulator(seed=seed)
    params = TopologyParams(buffer_bytes=buffer_bytes, ecn_threshold_bytes=ecn_threshold)
    tree = build_star(sim, n_senders=n_senders, params=params)
    flow_id = next_flow_id()
    receiver = TcpReceiver(
        sim,
        tree.aggregator,
        tree.servers[0].node_id,
        flow_id,
        expected_bytes=total_bytes,
    )
    cfg = config or TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns())
    sender = sender_cls(
        sim,
        tree.servers[0],
        tree.aggregator.node_id,
        flow_id,
        config=cfg,
        **sender_kwargs,
    )
    return sim, tree, sender, receiver


def drain(sim: Simulator, max_events: int = 5_000_000) -> int:
    """Run the simulator dry with a runaway guard."""
    processed = sim.run(max_events=max_events)
    assert processed < max_events, "simulation did not converge"
    return processed
