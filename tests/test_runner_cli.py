"""CLI end-to-end tests for ``python -m repro.experiments``."""

import pytest

from repro.experiments.runner import _kwargs_for, build_parser, main


class TestKwargsMapping:
    def test_rounds_and_seeds_forwarded(self):
        args = build_parser().parse_args(["fig1", "--rounds", "3", "--seeds", "2"])
        kwargs = _kwargs_for("fig1", args)
        assert kwargs["rounds"] == 3
        assert kwargs["seeds"] == (1, 2)

    def test_paper_flag_defaults(self):
        args = build_parser().parse_args(["fig1", "--paper"])
        kwargs = _kwargs_for("fig1", args)
        assert kwargs["rounds"] == 100
        assert len(kwargs["seeds"]) == 10

    def test_explicit_overrides_beat_paper(self):
        args = build_parser().parse_args(["fig1", "--paper", "--rounds", "7"])
        assert _kwargs_for("fig1", args)["rounds"] == 7

    def test_fig13_paper_scale(self):
        args = build_parser().parse_args(["fig13", "--paper"])
        kwargs = _kwargs_for("fig13", args)
        assert kwargs["n_queries"] == 7000
        assert kwargs["max_flow_bytes"] is None

    def test_fig14_takes_no_sweep_kwargs(self):
        args = build_parser().parse_args(["fig14", "--rounds", "5"])
        assert _kwargs_for("fig14", args) == {}

    def test_n_values_forwarded(self):
        args = build_parser().parse_args(["fig7", "--n-values", "8,16,32"])
        assert _kwargs_for("fig7", args)["n_values"] == (8, 16, 32)


class TestMainExecution:
    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["nope"])

    def _patch_fig1(self, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.common import ExperimentResult

        def tiny_run(**kwargs):
            return ExperimentResult("fig1", "stub", ["a"], [[1]], ["n"])

        monkeypatch.setitem(registry._MODULES, "fig1", type(
            "M", (), {"run": staticmethod(tiny_run), "EXPERIMENT_ID": "fig1", "TITLE": "stub"}
        ))

    def test_table_output(self, capsys, monkeypatch):
        self._patch_fig1(monkeypatch)
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1: stub" in out
        assert "wall clock" in out

    def test_csv_output(self, capsys, monkeypatch):
        self._patch_fig1(monkeypatch)
        assert main(["fig1", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "a"

    def test_csv_output_keeps_notes(self, capsys, monkeypatch):
        self._patch_fig1(monkeypatch)
        assert main(["fig1", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "# note: n" in out

    def test_json_output(self, capsys, monkeypatch):
        import json

        self._patch_fig1(monkeypatch)
        assert main(["fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "fig1"
        assert payload["rows"] == [[1]]
        assert payload["notes"] == ["n"]

    def test_workers_and_cache_dir_reach_the_executor(self, monkeypatch, tmp_path):
        from repro.exec import ParallelExecutor, get_executor
        from repro.experiments import registry
        from repro.experiments.common import ExperimentResult

        seen = {}

        def spy_run(**kwargs):
            seen["executor"] = get_executor()
            return ExperimentResult("fig1", "stub", ["a"], [[1]])

        monkeypatch.setitem(registry._MODULES, "fig1", type(
            "M", (), {"run": staticmethod(spy_run), "EXPERIMENT_ID": "fig1", "TITLE": "stub"}
        ))
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--workers", "2", "--cache-dir", str(cache_dir)]) == 0
        executor = seen["executor"]
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 2
        assert executor.cache is not None
        assert cache_dir.is_dir()
