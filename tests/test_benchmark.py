"""Tests for the production-cluster benchmark workload."""

import pytest

from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.workloads.benchmark import BenchmarkConfig, BenchmarkWorkload, FlowRecord
from repro.workloads.protocols import spec_for


def run_benchmark(**cfg_overrides):
    defaults = dict(
        n_queries=5,
        n_background=5,
        n_short_messages=2,
        query_fanout=6,
        max_flow_bytes=256 * 1024,
    )
    defaults.update(cfg_overrides)
    sim = Simulator(seed=1)
    tree = build_two_tier(sim)
    wl = BenchmarkWorkload(sim, tree, spec_for("dctcp"), BenchmarkConfig(**defaults))
    wl.run_to_completion(max_events=50_000_000)
    return sim, wl


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(query_fanout=0)
        with pytest.raises(ValueError):
            BenchmarkConfig(to_aggregator_prob=1.5)
        with pytest.raises(ValueError):
            BenchmarkConfig(n_queries=-1)


class TestCompletion:
    def test_all_streams_complete(self):
        sim, wl = run_benchmark()
        assert wl.finished
        by_cat = {}
        for r in wl.records:
            by_cat[r.category] = by_cat.get(r.category, 0) + 1
        assert by_cat == {"query": 5, "background": 5, "short": 2}

    def test_fcts_positive(self):
        _, wl = run_benchmark()
        for r in wl.records:
            assert r.fct_ns > 0

    def test_query_bytes(self):
        _, wl = run_benchmark()
        for r in wl.records:
            if r.category == "query":
                assert r.total_bytes == 6 * 2048

    def test_flow_size_cap_applied(self):
        _, wl = run_benchmark(max_flow_bytes=10_000)
        for r in wl.records:
            if r.category in ("background", "short"):
                assert r.total_bytes <= 10_000

    def test_streams_can_be_disabled(self):
        _, wl = run_benchmark(n_background=0, n_short_messages=0)
        assert {r.category for r in wl.records} == {"query"}

    def test_queries_only_none(self):
        _, wl = run_benchmark(n_queries=0, n_background=2, n_short_messages=0)
        assert {r.category for r in wl.records} == {"background"}
        assert wl.query_engine is None


class TestQueryEngine:
    def test_persistent_connections(self):
        _, wl = run_benchmark(n_queries=4)
        engine = wl.query_engine
        assert len(engine.senders) == 6
        # each connection carried all four responses
        for delivered in engine.delivered:
            assert delivered == 4 * 2048

    def test_queries_complete_in_order_per_flow(self):
        _, wl = run_benchmark(n_queries=4)
        starts = [r.start_ns for r in wl.records if r.category == "query"]
        ends = [r.end_ns for r in wl.records if r.category == "query"]
        assert starts == sorted(starts)
        assert all(e > s for s, e in zip(starts, ends))

    def test_close_releases(self):
        _, wl = run_benchmark()
        wl.close()
        assert all(s.closed for s in wl.query_engine.senders)


class TestSummaries:
    def test_fct_summary(self):
        _, wl = run_benchmark()
        s = wl.fct_summary_ms("query")
        assert s.count == 5
        assert s.mean > 0
        assert s.p99 >= s.p95 >= 0

    def test_timeout_total_by_category(self):
        _, wl = run_benchmark()
        assert wl.timeout_total("query") >= 0
        assert wl.timeout_total("background") >= 0

    def test_start_twice_rejected(self):
        sim = Simulator(seed=1)
        tree = build_two_tier(sim)
        wl = BenchmarkWorkload(
            sim,
            tree,
            spec_for("dctcp"),
            BenchmarkConfig(n_queries=1, n_background=0, n_short_messages=0, query_fanout=2),
        )
        wl.start()
        with pytest.raises(RuntimeError):
            wl.start()


class TestFlowRecord:
    def test_fct(self):
        r = FlowRecord("query", 100, 600, 2048, 0)
        assert r.fct_ns == 500
