"""Unit tests for the bench baseline comparison gates (pure dict in/out).

CI relies on two distinct ``compare`` configurations: a same-machine
relative perf gate (``allow_event_drift=True``) and a committed-baseline
drift check (``perf_gate=False``).  These tests pin both.
"""

from repro.bench.harness import BASELINE_SCHEMA, compare


def payload(**scenarios):
    return {
        "schema": BASELINE_SCHEMA,
        "repeats": 3,
        "environment": {},
        "scenarios": scenarios,
    }


def entry(events, eps):
    return {
        "events": events,
        "median_events_per_sec": eps,
        "median_wall_s": events / eps,
    }


class TestPerfGate:
    def test_within_tolerance_passes(self):
        lines, ok = compare(
            payload(a=entry(100, 900.0)), payload(a=entry(100, 1000.0)), 0.25
        )
        assert ok
        assert "-10.0%" in lines[0]

    def test_regression_fails(self):
        lines, ok = compare(
            payload(a=entry(100, 500.0)), payload(a=entry(100, 1000.0)), 0.25
        )
        assert not ok
        assert "FAIL" in lines[0]

    def test_improvement_passes(self):
        _, ok = compare(
            payload(a=entry(100, 2000.0)), payload(a=entry(100, 1000.0)), 0.25
        )
        assert ok

    def test_no_perf_gate_reports_without_failing(self):
        lines, ok = compare(
            payload(a=entry(100, 500.0)),
            payload(a=entry(100, 1000.0)),
            0.25,
            perf_gate=False,
        )
        assert ok
        assert "informational" in lines[0]
        assert "FAIL" not in lines[0]


class TestEventDrift:
    def test_drift_fails_by_default(self):
        lines, ok = compare(
            payload(a=entry(101, 1000.0)), payload(a=entry(100, 1000.0)), 0.25
        )
        assert not ok
        assert "event count changed" in lines[0]

    def test_drift_still_fails_with_perf_gate_off(self):
        _, ok = compare(
            payload(a=entry(101, 1000.0)),
            payload(a=entry(100, 1000.0)),
            0.25,
            perf_gate=False,
        )
        assert not ok

    def test_allow_event_drift_warns_and_skips_perf(self):
        # Drifted scenario with a huge perf loss: timing is not comparable,
        # so the scenario is warned about and the perf gate skipped.
        lines, ok = compare(
            payload(a=entry(101, 100.0)),
            payload(a=entry(100, 1000.0)),
            0.25,
            allow_event_drift=True,
        )
        assert ok
        assert "not comparable" in lines[0]

    def test_allow_event_drift_keeps_perf_gate_for_stable_scenarios(self):
        _, ok = compare(
            payload(a=entry(101, 100.0), b=entry(50, 500.0)),
            payload(a=entry(100, 1000.0), b=entry(50, 1000.0)),
            0.25,
            allow_event_drift=True,
        )
        assert not ok  # b's count matched, so its 50% regression gates


class TestScenarioSets:
    def test_one_sided_scenarios_never_fail(self):
        lines, ok = compare(
            payload(new=entry(10, 100.0)), payload(old=entry(10, 100.0)), 0.25
        )
        assert ok
        assert any("no baseline entry" in line for line in lines)
        assert any("not benchmarked" in line for line in lines)
