"""Tests for the 100 us queue sampler."""

import pytest

from repro.metrics.queue_sampler import QueueSampler
from repro.net.packet import make_data_packet
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import US

from .helpers import intern


def setup():
    sim = Simulator()
    tree = build_star(sim, n_senders=1)
    return sim, tree, tree.bottleneck_port


class TestSampling:
    def test_cadence(self):
        sim, tree, port = setup()
        sampler = QueueSampler(sim, port, interval_ns=100 * US)
        sampler.start()
        sim.run(until=1_000 * US)
        sampler.stop()
        # t = 0, 100us, ..., 1000us inclusive
        assert len(sampler.times_ns) == 11
        assert sampler.times_ns[1] - sampler.times_ns[0] == 100 * US

    def test_records_occupancy(self):
        sim, tree, port = setup()
        sampler = QueueSampler(sim, port)
        # park packets in the queue (one serializes, the rest wait)
        for i in range(5):
            port.send(
                intern(sim, make_data_packet(1, 0, tree.aggregator.node_id, seq=i, payload_len=1460))
            )
        sampler.start()
        sim.run(max_events=1)  # take the t=0 sample only
        assert sampler.occupancy_bytes[0] == 4 * 1500

    def test_stop_halts_sampling(self):
        sim, tree, port = setup()
        sampler = QueueSampler(sim, port)
        sampler.start()
        sim.run(until=300 * US)
        sampler.stop()
        count = len(sampler.times_ns)
        sim.run(until=600 * US)
        assert len(sampler.times_ns) == count

    def test_start_idempotent(self):
        sim, tree, port = setup()
        sampler = QueueSampler(sim, port)
        sampler.start()
        sampler.start()
        sim.run(until=200 * US)
        # one sampling chain, not two
        assert len(sampler.times_ns) == 3

    def test_rejects_bad_interval(self):
        sim, tree, port = setup()
        with pytest.raises(ValueError):
            QueueSampler(sim, port, interval_ns=0)


class TestPostProcessing:
    def _sampled(self):
        sim, tree, port = setup()
        sampler = QueueSampler(sim, port)
        sampler.occupancy_bytes = [0, 1024, 2048, 4096]
        sampler.times_ns = [0, 100_000, 200_000, 300_000]
        return sampler

    def test_cdf(self):
        values, probs = self._sampled().cdf()
        assert probs[-1] == 1.0
        assert values[0] == 0

    def test_time_series_kb(self):
        t, q = self._sampled().time_series_kb()
        assert q[1] == pytest.approx(1.0)
        assert t[1] == pytest.approx(0.1)

    def test_mean_and_percentile(self):
        sampler = self._sampled()
        assert sampler.mean_occupancy_bytes() == pytest.approx(1792.0)
        assert sampler.percentile_bytes(100) == 4096

    def test_empty(self):
        sim, tree, port = setup()
        sampler = QueueSampler(sim, port)
        assert sampler.mean_occupancy_bytes() == 0.0
        assert sampler.percentile_bytes(99) == 0.0
