"""Tests for the scenario fuzzer (repro.validate.fuzz)."""

import re

import pytest

from repro.validate.fuzz import (
    MUTATIONS,
    _parse_budget,
    check_seed,
    draw_spec,
    main,
    result_digest,
)


class TestDrawSpec:
    def test_deterministic(self):
        assert draw_spec(5) == draw_spec(5)

    def test_distinct_seeds_distinct_specs(self):
        specs = {draw_spec(s) for s in range(1, 30)}
        assert len(specs) > 20  # drawing actually varies

    def test_spec_seed_matches_fuzz_seed(self):
        assert draw_spec(9).seed == 9

    def test_specs_are_runnable_descriptions(self):
        spec = draw_spec(1)
        assert spec.protocol
        assert spec.n_flows >= 2
        # small round deadline: fault-heavy draws must not run 60 sim-sec
        assert dict(spec.incast_overrides)["round_deadline_ns"] <= 5_000_000_000

    def test_draws_cover_the_cc_dimension(self):
        from repro.validate.fuzz import FUZZ_PROTOCOLS

        assert "pulser" in FUZZ_PROTOCOLS and "tbtcp" in FUZZ_PROTOCOLS
        specs = [draw_spec(s) for s in range(1, 60)]
        routed = [s for s in specs if s.cc]
        # ~a fifth of draws set the explicit cc dimension
        assert 3 <= len(routed) <= 30
        assert all(s.cc_name == s.cc for s in routed)
        assert all(s.cc_name == s.protocol for s in specs if not s.cc)

    def test_draws_cover_topologies_and_workloads(self):
        from repro.validate.fuzz import FUZZ_TOPOLOGIES, FUZZ_WORKLOADS

        assert set(FUZZ_TOPOLOGIES) == {"two-tier", "dumbbell", "fat-tree"}
        assert set(FUZZ_WORKLOADS) == {"incast", "http", "swarm"}
        specs = [draw_spec(s) for s in range(1, 60)]
        assert {s.topology for s in specs} == set(FUZZ_TOPOLOGIES)
        assert {s.workload for s in specs} == set(FUZZ_WORKLOADS)

    def test_fat_tree_draws_carry_topology_overrides(self):
        specs = [draw_spec(s) for s in range(1, 80)]
        fat_trees = [s for s in specs if s.topology == "fat-tree"]
        assert fat_trees, "no fat-tree drawn in 80 seeds"
        for spec in fat_trees:
            topo = dict(spec.topo_overrides)
            assert topo["fat_tree_k"] % 2 == 0
            assert topo["ecmp_mode"] in ("flow", "packet")
        dumbbells = [s for s in specs if s.topology == "dumbbell"]
        assert dumbbells, "no dumbbell drawn in 80 seeds"
        assert any(dict(s.topo_overrides).get("leg_delays_ns") for s in dumbbells)

    def test_workload_overrides_only_on_non_incast_draws(self):
        specs = [draw_spec(s) for s in range(1, 80)]
        for spec in specs:
            if spec.workload == "incast":
                assert spec.workload_overrides == ()
            else:
                # Closed-loop draws cap their give-up deadline so a
                # fault-heavy scenario cannot burn 60 sim-seconds.
                overrides = dict(spec.workload_overrides)
                deadline_key = (
                    "request_deadline_ns" if spec.workload == "http" else "fetch_deadline_ns"
                )
                assert overrides[deadline_key] <= 5_000_000_000


class TestBudgetParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [("60s", 60.0), ("500ms", 0.5), ("2m", 120.0), ("45", 45.0)],
    )
    def test_parse(self, text, expected):
        assert _parse_budget(text) == expected


class TestCleanSeeds:
    def test_clean_seed_passes_all_differentials(self):
        spec, digest, events = check_seed(2)
        assert spec == draw_spec(2)
        assert len(digest) == 16
        assert events > 0

    def test_main_clean(self, capsys):
        assert main(["--seeds", "2", "--no-parallel"]) == 0
        out = capsys.readouterr().out
        assert "seed 1: ok" in out
        assert "seed 2: ok" in out
        assert "all checks passed" in out


class TestMutationDetection:
    """Acceptance: an injected accounting bug is found within 20 seeds and
    the printed repro command reproduces it deterministically."""

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_found_within_20_seeds(self, mutation, capsys):
        assert main(["--seeds", "20", "--mutate", mutation]) == 1
        out = capsys.readouterr().out
        match = re.search(r"repro: PYTHONPATH=src python -m repro fuzz "
                          r"--seed (\d+) --mutate " + mutation, out)
        assert match, f"no repro command printed:\n{out}"
        first_failure = out.splitlines()[-2]

        # The repro command replays deterministically: same seed, same
        # mutation, same failure line.
        seed = match.group(1)
        assert main(["--seed", seed, "--mutate", mutation]) == 1
        replay = capsys.readouterr().out
        assert first_failure in replay

    def test_mutation_invisible_without_validation(self):
        """The injected bugs corrupt accounting, not behaviour — scenario
        results stay identical, which is exactly why only the invariant
        checker can catch them."""
        from repro.exec.scenario import run_scenario

        spec = draw_spec(1)
        clean = result_digest(run_scenario(spec, validate=False))
        with MUTATIONS["double-drop"]():
            mutated = result_digest(run_scenario(spec, validate=False))
        assert mutated == clean

    def test_miswired_fat_tree_caught_by_wiring_check(self):
        """A mis-wired fat-tree uplink is a *structural* defect: any
        validated run of any fat-tree scenario must refuse to start."""
        from repro.exec.scenario import ScenarioSpec, run_scenario
        from repro.net.topology import WiringError

        spec = ScenarioSpec.create(
            "dctcp", 2, rounds=1, seed=1, topology="fat-tree", workload="incast"
        )
        run_scenario(spec, validate=True)  # sanity: clean build passes
        with MUTATIONS["miswire-uplink"]():
            with pytest.raises(WiringError, match="wrong host"):
                run_scenario(spec, validate=True)
