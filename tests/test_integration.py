"""End-to-end integration tests: the paper's headline behaviours and
network-wide conservation invariants."""


from repro.net.topology import build_two_tier
from repro.sim.engine import Simulator
from repro.workloads.incast import IncastConfig, IncastWorkload
from repro.workloads.protocols import spec_for


def run(protocol, n_flows, rounds=8, seed=42):
    sim = Simulator(seed=seed)
    tree = build_two_tier(sim)
    wl = IncastWorkload(
        sim, tree, spec_for(protocol), IncastConfig(n_flows=n_flows, n_rounds=rounds)
    )
    wl.run_to_completion(max_events=100_000_000)
    return sim, tree, wl


class TestHeadlineResult:
    """The paper's central claims, at reduced scale."""

    def test_all_protocols_fine_at_low_fanin(self):
        for protocol in ("tcp", "dctcp", "dctcp+"):
            _, _, wl = run(protocol, 5, rounds=4)
            # No collapse: multi-hundred-Mbps goodput
            assert wl.mean_goodput_bps > 300e6, protocol

    def test_dctcp_survives_where_tcp_collapses(self):
        _, _, tcp = run("tcp", 25)
        _, _, dctcp = run("dctcp", 25)
        assert dctcp.mean_goodput_bps > 3 * tcp.mean_goodput_bps

    def test_dctcp_collapses_at_high_fanin(self):
        _, _, dctcp = run("dctcp", 80)
        assert dctcp.mean_goodput_bps < 200e6
        assert dctcp.total_timeouts > 0

    def test_dctcp_plus_survives_high_fanin(self):
        _, _, plus = run("dctcp+", 80)
        assert plus.mean_goodput_bps > 500e6
        assert plus.mean_fct_ns < 50e6  # well under one RTO

    def test_dctcp_plus_beats_dctcp_at_high_fanin(self):
        _, _, dctcp = run("dctcp", 80)
        _, _, plus = run("dctcp+", 80)
        assert plus.mean_goodput_bps > 5 * dctcp.mean_goodput_bps
        assert plus.total_timeouts < dctcp.total_timeouts

    def test_dctcp_plus_senders_actually_pace(self):
        _, _, plus = run("dctcp+", 80, rounds=4)
        delayed = sum(s.pacer.delayed_packets for s in plus.senders)
        assert delayed > 0
        engaged = sum(s.machine.transitions_to_inc for s in plus.senders)
        assert engaged > 0


class TestConservation:
    """Nothing is created or destroyed in the network fabric."""

    def _network_drops(self, tree):
        drops = 0
        for switch in [tree.root, *tree.leaves]:
            drops += sum(p.queue.dropped_packets for p in switch.ports)
            drops += switch.unroutable_drops
        for host in tree.all_hosts:
            if host.nic is not None:
                drops += host.nic.queue.dropped_packets
        return drops

    def test_data_packet_conservation(self):
        sim, tree, wl = run("dctcp", 40, rounds=3)
        sent = sum(s.stats.data_packets_sent for s in wl.senders)
        received = sum(r.data_packets_received for r in wl.receivers)
        drops = self._network_drops(tree)
        in_flight_or_undelivered = sum(h.undeliverable_packets for h in tree.all_hosts)
        # every sent data packet was delivered, dropped, or at worst
        # arrived after its endpoint closed; ACK losses make `received`
        # a lower bound, never higher than sent.
        assert received <= sent
        assert received + drops + in_flight_or_undelivered >= sent

    def test_lossless_run_has_exact_conservation(self):
        sim, tree, wl = run("dctcp+", 10, rounds=3)
        drops = self._network_drops(tree)
        if drops == 0:
            sent = sum(s.stats.data_packets_sent for s in wl.senders)
            received = sum(r.data_packets_received for r in wl.receivers)
            assert sent == received

    def test_all_bytes_delivered_exactly_once(self):
        _, tree, wl = run("dctcp", 40, rounds=3)
        for receiver in wl.receivers:
            assert receiver.bytes_delivered == receiver.rcv_nxt
            assert receiver.bytes_delivered == 3 * wl.config.sru_bytes


class TestDeterminism:
    def test_same_seed_same_result(self):
        _, _, a = run("dctcp+", 20, rounds=3, seed=9)
        _, _, b = run("dctcp+", 20, rounds=3, seed=9)
        assert a.mean_goodput_bps == b.mean_goodput_bps
        assert [r.duration_ns for r in a.rounds] == [r.duration_ns for r in b.rounds]

    def test_different_seed_different_randomization(self):
        _, _, a = run("dctcp+", 40, rounds=3, seed=1)
        _, _, b = run("dctcp+", 40, rounds=3, seed=2)
        # slow_time draws differ, so the microscopic schedule must differ
        assert [r.duration_ns for r in a.rounds] != [r.duration_ns for r in b.rounds]


class TestQueueBehaviour:
    def test_dctcp_plus_avoids_buffer_limit_dctcp_hits_it(self):
        """Fig. 9's ordering at one point (N=50): DCTCP drives the queue to
        the 128 KB buffer limit (and drops); DCTCP+'s worst case stays
        clearly below it.  (The *mean* is not comparable here because a
        collapsed DCTCP idles at zero queue between its RTOs.)"""
        from repro.metrics.queue_sampler import QueueSampler

        peaks = {}
        drops = {}
        for protocol in ("dctcp+", "dctcp"):
            sim = Simulator(seed=42)
            tree = build_two_tier(sim)
            sampler = QueueSampler(sim, tree.bottleneck_port)
            sampler.start()
            wl = IncastWorkload(sim, tree, spec_for(protocol), IncastConfig(n_flows=50, n_rounds=6))
            wl.run_to_completion(max_events=100_000_000)
            sampler.stop()
            peaks[protocol] = sampler.percentile_bytes(99.9)
            drops[protocol] = tree.bottleneck_port.queue.dropped_packets
        assert drops["dctcp"] > 0
        assert peaks["dctcp"] > 120 * 1024
        assert peaks["dctcp+"] < peaks["dctcp"]
        assert drops["dctcp+"] < drops["dctcp"]
