"""Tests for metrics: flow stats, cwnd tracking, stats helpers, tables."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.cwnd_tracker import (
    cwnd_frequency,
    merged_cwnd_histogram,
    stack_state_shares,
    timeout_fraction_by_kind,
)
from repro.metrics.flowstats import FlowStats
from repro.metrics.report import format_percent, format_table
from repro.metrics.stats import Summary, cdf_at, cdf_points, mean, percentile
from repro.tcp.timeouts import TimeoutKind, classify_timeout


class TestFlowStats:
    def test_fct_requires_completion(self):
        fs = FlowStats(flow_id=1)
        assert fs.fct_ns is None
        fs.start_time_ns = 100
        fs.completion_time_ns = 600
        assert fs.fct_ns == 500
        assert fs.completed

    def test_snapshot_accumulation(self):
        fs = FlowStats()
        fs.record_send_snapshot(2, True)
        fs.record_send_snapshot(2, True)
        fs.record_send_snapshot(3, False)
        assert fs.send_snapshots[(2, True)] == 2
        assert fs.snapshot_fraction(2, True) == pytest.approx(2 / 3)

    def test_snapshot_fraction_empty(self):
        assert FlowStats().snapshot_fraction(2, True) == 0.0

    def test_cwnd_histogram_merges_ece(self):
        fs = FlowStats()
        fs.record_send_snapshot(2, True)
        fs.record_send_snapshot(2, False)
        assert fs.cwnd_histogram() == {2: 2}

    def test_timeout_bookkeeping(self):
        fs = FlowStats()
        fs.record_timeout(10, TimeoutKind.FLOSS)
        fs.record_timeout(20, TimeoutKind.LACK)
        fs.record_timeout(30, TimeoutKind.FLOSS)
        assert fs.timeout_count == 3
        assert fs.timeout_count_of(TimeoutKind.FLOSS) == 2


class TestTimeoutClassification:
    def test_silent_is_floss(self):
        assert classify_timeout(0) is TimeoutKind.FLOSS

    def test_any_ack_is_lack(self):
        assert classify_timeout(1) is TimeoutKind.LACK
        assert classify_timeout(2) is TimeoutKind.LACK

    def test_str(self):
        assert str(TimeoutKind.FLOSS) == "FLoss-TO"
        assert str(TimeoutKind.LACK) == "LAck-TO"


class TestCwndTracker:
    def _stats(self):
        a, b = FlowStats(), FlowStats()
        for _ in range(3):
            a.record_send_snapshot(2, True)
        a.record_send_snapshot(4, False)
        b.record_send_snapshot(2, False)
        b.record_send_snapshot(1, False)
        a.record_timeout(1, TimeoutKind.FLOSS)
        b.record_timeout(2, TimeoutKind.LACK)
        return [a, b]

    def test_merged_histogram(self):
        assert merged_cwnd_histogram(self._stats()) == {2: 4, 4: 1, 1: 1}

    def test_frequency_normalized(self):
        freq = cwnd_frequency(self._stats())
        assert sum(freq.values()) == pytest.approx(1.0)
        assert freq[2] == pytest.approx(4 / 6)

    def test_frequency_empty(self):
        assert cwnd_frequency([]) == {}

    def test_stack_state_shares(self):
        shares = stack_state_shares(self._stats())
        assert shares.transmissions == 6
        assert shares.cwnd2_ece1_share == pytest.approx(3 / 6)
        assert shares.timeout_share == pytest.approx(2 / 6)
        assert shares.floss_share == pytest.approx(0.5)
        assert shares.lack_share == pytest.approx(0.5)

    def test_stack_state_shares_empty(self):
        shares = stack_state_shares([])
        assert shares.cwnd2_ece1_share == 0.0
        assert shares.timeout_share == 0.0

    def test_timeout_fraction_by_kind(self):
        counts = timeout_fraction_by_kind(self._stats())
        assert counts == {"FLOSS": 1, "LACK": 1}


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        assert percentile(list(range(101)), 95) == pytest.approx(95.0)
        assert percentile([], 50) == 0.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_cdf_points_last_is_one(self):
        values, probs = cdf_points([3, 1, 2])
        assert list(values) == [1, 2, 3]
        assert probs[-1] == 1.0

    def test_cdf_points_empty(self):
        values, probs = cdf_points([])
        assert len(values) == 0 and len(probs) == 0

    def test_cdf_at(self):
        probs = cdf_at([1, 2, 3, 4], [0, 2, 10])
        assert probs == [0.0, 0.5, 1.0]

    def test_cdf_at_empty(self):
        assert cdf_at([], [1, 2]) == [0.0, 0.0]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_cdf_at_monotone(self, values):
        thresholds = sorted({-1e7, 0.0, 1e7, min(values), max(values)})
        probs = cdf_at(values, thresholds)
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_summary(self):
        s = Summary.of(list(range(1, 101)))
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert s.p95 == pytest.approx(95.05)
        assert s.maximum == 100

    def test_summary_empty(self):
        s = Summary.of([])
        assert s.count == 0 and s.mean == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4.0]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len(lines) == 4  # header, separator, two rows

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.startswith("T\n=")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_percent(self):
        assert format_percent(0.5816) == "58.16%"
        assert format_percent(0) == "0.00%"

    def test_float_rendering(self):
        text = format_table(["v"], [[1234.5], [12.34], [0.1234], [0]])
        assert "1,234" in text or "1,235" in text
        assert "12.3" in text
        assert "0.123" in text
