"""Tests for the TCP receiver (reassembly, ACKs, ECN echo)."""

from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver

from .helpers import CaptureEndpoint, intern


class AckTrap(CaptureEndpoint):
    """Captures ACKs emitted by the receiver's host."""

    @property
    def acks(self):
        return self.packets


def setup(expected=None, on_data=None, on_complete=None):
    """Receiver on host B; ACKs loop back to a trap on host A."""
    sim = Simulator()
    from repro.net.switch import Switch

    switch = Switch(sim, "sw")
    a, b = Host(sim, "a"), Host(sim, "b")
    a.attach_link(Link(switch))
    b.attach_link(Link(switch))
    switch.add_route(a.node_id, switch.add_port(Link(a)))
    switch.add_route(b.node_id, switch.add_port(Link(b)))
    trap = AckTrap(sim)
    a.register_flow(1, trap)
    recv = TcpReceiver(
        sim, b, a.node_id, 1, expected_bytes=expected, on_data=on_data, on_complete=on_complete
    )
    return sim, a, b, recv, trap


def seg(sim, seq, length, ce=False):
    pkt = make_data_packet(1, 0, 0, seq=seq, payload_len=length, ect=True)
    pkt.ce = ce
    return intern(sim, pkt)


class TestInOrder:
    def test_advances_rcv_nxt(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 1000))
        recv.on_packet(seg(sim, 1000, 1000))
        assert recv.rcv_nxt == 2000
        assert recv.bytes_delivered == 2000

    def test_acks_cumulative(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 500))
        sim.run_until_idle()
        assert trap.acks[-1].ack_seq == 500

    def test_on_data_callback_gets_increments(self):
        deliveries = []
        sim, a, b, recv, trap = setup(on_data=deliveries.append)
        recv.on_packet(seg(sim, 0, 300))
        recv.on_packet(seg(sim, 300, 700))
        assert deliveries == [300, 700]


class TestOutOfOrder:
    def test_buffers_gap_then_flushes(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 1000, 1000))  # hole at 0
        assert recv.rcv_nxt == 0
        recv.on_packet(seg(sim, 0, 1000))
        assert recv.rcv_nxt == 2000

    def test_dupack_for_out_of_order(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 1000, 1000))
        sim.run_until_idle()
        assert trap.acks[-1].ack_seq == 0  # duplicate ACK of the hole

    def test_multiple_gaps(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 2000, 1000))
        recv.on_packet(seg(sim, 4000, 1000))
        recv.on_packet(seg(sim, 0, 1000))
        assert recv.rcv_nxt == 1000
        recv.on_packet(seg(sim, 1000, 1000))
        assert recv.rcv_nxt == 3000
        recv.on_packet(seg(sim, 3000, 1000))
        assert recv.rcv_nxt == 5000

    def test_overlapping_retransmission(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 1000))
        # retransmission covering old + new data
        recv.on_packet(seg(sim, 500, 1000))
        assert recv.rcv_nxt == 1500

    def test_duplicate_counted_and_acked(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 1000))
        recv.on_packet(seg(sim, 0, 1000))
        sim.run_until_idle()
        assert recv.duplicate_packets_received == 1
        assert trap.acks[-1].ack_seq == 1000
        assert recv.bytes_delivered == 1000


class TestEcnEcho:
    def test_ce_sets_ece(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 100, ce=True))
        sim.run_until_idle()
        assert trap.acks[-1].ece

    def test_clean_packet_clear_ece(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 100, ce=True))
        recv.on_packet(seg(sim, 100, 100, ce=False))
        sim.run_until_idle()
        # per-packet echo: second ACK must not carry ECE
        assert not trap.acks[-1].ece

    def test_ce_counter(self):
        sim, a, b, recv, trap = setup()
        recv.on_packet(seg(sim, 0, 100, ce=True))
        recv.on_packet(seg(sim, 100, 100, ce=True))
        assert recv.ce_packets_received == 2


class TestCompletion:
    def test_on_complete_at_target(self):
        done = []
        sim, a, b, recv, trap = setup(expected=2000, on_complete=done.append)
        recv.on_packet(seg(sim, 0, 1000))
        assert not done
        recv.on_packet(seg(sim, 1000, 1000))
        assert done == [recv]
        assert recv.complete

    def test_complete_fires_once(self):
        done = []
        sim, a, b, recv, trap = setup(expected=1000, on_complete=done.append)
        recv.on_packet(seg(sim, 0, 1000))
        recv.on_packet(seg(sim, 0, 1000))  # duplicate
        assert len(done) == 1

    def test_expect_rearms_completion(self):
        done = []
        sim, a, b, recv, trap = setup(expected=1000, on_complete=done.append)
        recv.on_packet(seg(sim, 0, 1000))
        recv.expect(500)
        recv.on_packet(seg(sim, 1000, 500))
        assert len(done) == 2

    def test_expect_validates(self):
        sim, a, b, recv, trap = setup(expected=1000)
        import pytest

        with pytest.raises(ValueError):
            recv.expect(0)

    def test_close_unregisters(self):
        sim, a, b, recv, trap = setup()
        recv.close()
        assert recv.closed
        # a second close is harmless
        recv.close()
        b.register_flow(1, AckTrap(sim))  # slot is free again

    def test_stray_ack_ignored(self):
        from repro.net.packet import make_ack_packet

        sim, a, b, recv, trap = setup()
        recv.on_packet(intern(sim, make_ack_packet(1, 0, 0, ack_seq=100)))
        assert recv.rcv_nxt == 0
