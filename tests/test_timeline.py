"""Tests for the per-flow time-series tracer."""

import pytest

from repro.core.dctcp_plus import DctcpPlusSender
from repro.metrics.timeline import SAMPLED_FIELDS, FlowTracer
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.workloads.ids import next_flow_id

MSS = 1460


def traced_flow(sender_cls=TcpSender, total=40 * MSS, deliver=True, **cfg):
    sim = Simulator(seed=2)
    tree = build_star(sim, n_senders=1)
    flow = next_flow_id()
    if deliver:
        TcpReceiver(sim, tree.aggregator, tree.servers[0].node_id, flow, expected_bytes=total)
    config = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns(), rto_min_ns=5 * MS, **cfg)
    sender = sender_cls(sim, tree.servers[0], tree.aggregator.node_id, flow, config=config)
    tracer = FlowTracer(sim, sender, interval_ns=100 * US)
    tracer.start()
    sender.send(total)
    return sim, sender, tracer


class TestSampling:
    def test_samples_all_fields_on_cadence(self):
        sim, sender, tracer = traced_flow()
        sim.run(until=2_000_000)
        assert len(tracer.times_ns) == 21  # t = 0..2ms at 100us
        for field_name in SAMPLED_FIELDS:
            assert len(tracer.samples[field_name]) == 21

    def test_cwnd_series_reflects_slow_start(self):
        sim, sender, tracer = traced_flow()
        sim.run(max_events=1_000_000)
        _, cwnd = tracer.series("cwnd_mss")
        assert cwnd[0] == pytest.approx(2.0)  # initial window
        assert cwnd.max() > 2.0  # grew during the transfer

    def test_stop_halts(self):
        sim, sender, tracer = traced_flow()
        sim.run(until=500_000)
        tracer.stop()
        n = len(tracer.times_ns)
        sim.run(until=1_000_000)
        assert len(tracer.times_ns) == n

    def test_max_samples_bound(self):
        sim, sender, tracer = traced_flow()
        tracer.max_samples = 5
        sim.run(until=5_000_000)
        assert len(tracer.times_ns) == 5
        assert not tracer.running

    def test_stop_after_exhaustion_cannot_cancel_recycled_event(self):
        # Regression: when max_samples exhausts, the just-fired tick event
        # goes to the engine freelist.  A stale tracer handle to it must not
        # let stop() cancel whatever unrelated event reuses the carcass.
        sim = Simulator(seed=2)
        tree = build_star(sim, n_senders=1)
        flow = next_flow_id()
        config = TcpConfig(seed_rtt_ns=tree.baseline_rtt_ns(), rto_min_ns=5 * MS)
        sender = TcpSender(sim, tree.servers[0], tree.aggregator.node_id, flow, config=config)
        tracer = FlowTracer(sim, sender, interval_ns=100 * US, max_samples=3)
        tracer.start()
        sim.run_until_idle()  # idle flow: only tracer ticks fire
        assert len(tracer.times_ns) == 3
        assert not tracer.running
        seen = []
        sim.schedule(1_000, seen.append, "alive")  # reuses the tick carcass
        tracer.stop()
        sim.run_until_idle()
        assert seen == ["alive"]

    def test_validation(self):
        sim, sender, _ = traced_flow()
        with pytest.raises(ValueError):
            FlowTracer(sim, sender, interval_ns=0)
        with pytest.raises(ValueError):
            FlowTracer(sim, sender, max_samples=0)

    def test_unknown_field_rejected(self):
        sim, sender, tracer = traced_flow()
        sim.run(until=200_000)
        with pytest.raises(KeyError):
            tracer.series("nope")


class TestEvents:
    def test_timeout_event_captured(self):
        # black hole (no receiver): the RTO fires and is traced
        sim, sender, tracer = traced_flow(deliver=False)
        sim.run(until=20 * MS)
        timeouts = tracer.events_of("timeout")
        assert len(timeouts) >= 1
        assert timeouts[0].detail in ("FLoss-TO", "LAck-TO")

    def test_plus_sender_state_traced(self):
        sim, sender, tracer = traced_flow(sender_cls=DctcpPlusSender, deliver=False)
        sim.run(until=20 * MS)
        _, states = tracer.series("state")
        # after the RTO the machine sits in TIME_INC (code 1)
        assert states[-1] == 1
        _, slow = tracer.series("slow_time_us")
        assert slow[-1] > 0

    def test_plain_sender_state_is_normal(self):
        sim, sender, tracer = traced_flow()
        sim.run(until=1_000_000)
        _, states = tracer.series("state")
        assert set(states) == {0}


class TestExport:
    def test_csv_shape(self):
        sim, sender, tracer = traced_flow()
        sim.run(until=500_000)
        csv_text = tracer.to_csv()
        lines = csv_text.splitlines()
        assert lines[0].startswith("time_us,cwnd_mss")
        assert len(lines) == len(tracer.times_ns) + 1
