"""Tests for switch forwarding and host demux."""

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet, make_data_packet
from repro.net.switch import Switch
from repro.sim.engine import Simulator

from .helpers import CaptureEndpoint as Endpoint, intern


def wire(sim):
    """host_a -> switch -> host_b."""
    switch = Switch(sim, "sw")
    a, b = Host(sim, "a"), Host(sim, "b")
    a.attach_link(Link(switch))
    b.attach_link(Link(switch))
    pa = switch.add_port(Link(a))
    pb = switch.add_port(Link(b))
    switch.add_route(a.node_id, pa)
    switch.add_route(b.node_id, pb)
    return switch, a, b


class TestSwitch:
    def test_forwards_by_destination(self):
        sim = Simulator()
        switch, a, b = wire(sim)
        ep = Endpoint(sim)
        b.register_flow(1, ep)
        a.send(intern(sim, make_data_packet(1, a.node_id, b.node_id, seq=0, payload_len=100)))
        sim.run_until_idle()
        assert len(ep.packets) == 1

    def test_unroutable_counted_and_dropped(self):
        sim = Simulator()
        switch, a, b = wire(sim)
        a.send(intern(sim, make_data_packet(1, a.node_id, 99_999, seq=0, payload_len=100)))
        sim.run_until_idle()
        assert switch.unroutable_drops == 1

    def test_route_must_use_own_port(self):
        sim = Simulator()
        switch, a, b = wire(sim)
        other = Switch(sim, "other")
        foreign_port = other.add_port(Link(a))
        with pytest.raises(ValueError):
            switch.add_route(a.node_id, foreign_port)

    def test_ports_have_independent_buffers(self):
        sim = Simulator()
        switch, a, b = wire(sim)
        port_a = switch.route_for(a.node_id)
        port_b = switch.route_for(b.node_id)
        assert port_a.queue is not port_b.queue

    def test_route_for_unknown_is_none(self):
        sim = Simulator()
        switch, _, _ = wire(sim)
        assert switch.route_for(123456) is None


class TestHost:
    def test_demux_by_flow_id(self):
        sim = Simulator()
        switch, a, b = wire(sim)
        ep1, ep2 = Endpoint(sim), Endpoint(sim)
        b.register_flow(1, ep1)
        b.register_flow(2, ep2)
        a.send(intern(sim, make_data_packet(2, a.node_id, b.node_id, seq=0, payload_len=10)))
        sim.run_until_idle()
        assert not ep1.packets and len(ep2.packets) == 1

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        host = Host(sim, "h")
        host.register_flow(1, Endpoint(sim))
        with pytest.raises(ValueError):
            host.register_flow(1, Endpoint(sim))

    def test_unregister_allows_reuse(self):
        sim = Simulator()
        host = Host(sim, "h")
        host.register_flow(1, Endpoint(sim))
        host.unregister_flow(1)
        host.register_flow(1, Endpoint(sim))  # no error

    def test_unregister_missing_is_noop(self):
        Host(Simulator(), "h").unregister_flow(42)

    def test_undeliverable_counted(self):
        sim = Simulator()
        switch, a, b = wire(sim)
        a.send(intern(sim, make_data_packet(7, a.node_id, b.node_id, seq=0, payload_len=10)))
        sim.run_until_idle()
        assert b.undeliverable_packets == 1

    def test_send_without_link_raises(self):
        sim = Simulator()
        host = Host(sim, "h")
        with pytest.raises(RuntimeError):
            host.send(intern(sim, Packet(1, 0, 1, wire_bytes=64)))

    def test_node_ids_unique(self):
        sim = Simulator()
        hosts = [Host(sim) for _ in range(5)]
        assert len({h.node_id for h in hosts}) == 5
