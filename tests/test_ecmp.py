"""Deterministic ECMP: seeded hashing, flow pinning, cross-executor and
cross-process reproducibility.

The load-bearing property: path assignment is a pure function of the
scenario seed.  The same seed must pick identical paths — and therefore
produce byte-identical results — in-process, across process restarts,
across the serial and parallel executors, and under the native event
core vs the pure-Python engine.
"""

import os
import subprocess
import sys

import pytest

from repro.exec.executors import ParallelExecutor
from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.host import Host
from repro.net.link import Link
from repro.net.pool import PacketPool
from repro.net.shared_buffer import SharedBufferSwitch
from repro.net.switch import Switch, ecmp_hash
from repro.net.topology import TopologyParams, build_fat_tree
from repro.sim.engine import Simulator
from repro.validate.fuzz import result_digest

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(HERE), "src")


class TestEcmpHash:
    def test_pure_function(self):
        assert ecmp_hash(12345, 999) == ecmp_hash(12345, 999)

    def test_stays_in_64_bits(self):
        for key in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= ecmp_hash(key, 7) < 2**64

    def test_salt_changes_selection(self):
        # Different switches (different salts) must not all agree on the
        # same next hop for the same flow ordinals.
        picks_a = [ecmp_hash(o, 1) % 2 for o in range(64)]
        picks_b = [ecmp_hash(o, 2) % 2 for o in range(64)]
        assert picks_a != picks_b

    def test_spreads_across_candidates(self):
        # splitmix64 over consecutive ordinals should land on every one of
        # n candidates well before 64 draws.
        for n in (2, 3, 4):
            assert {ecmp_hash(o, 42) % n for o in range(64)} == set(range(n))


def _two_path_switch(sim):
    """One switch, two parallel equal links to the same destination host."""
    switch = Switch(sim, "sw")
    dst = Host(sim, "dst")
    port_a = switch.add_port(Link(dst, 10**9, 1000), name="a")
    port_b = switch.add_port(Link(dst, 10**9, 1000), name="b")
    return switch, dst, port_a, port_b


def _inject(sim, switch, dst, flow_id, n_packets=1):
    pool = PacketPool.of(sim)
    for _ in range(n_packets):
        h = pool.alloc_control(flow_id, 0, dst.node_id, 100, sim.next_packet_id())
        switch.receive(h)


class TestSwitchEcmpGroups:
    def test_flow_mode_pins_each_flow_to_one_port(self):
        sim = Simulator(seed=1)
        switch, dst, port_a, port_b = _two_path_switch(sim)
        switch.add_ecmp_group(dst.node_id, [port_a, port_b], salt=7)
        _inject(sim, switch, dst, flow_id=5, n_packets=10)
        counts = (port_a.queue.enqueued_packets, port_b.queue.enqueued_packets)
        assert sorted(counts) == [0, 10]  # all ten on exactly one port

    def test_flow_mode_spreads_distinct_flows(self):
        sim = Simulator(seed=1)
        switch, dst, port_a, port_b = _two_path_switch(sim)
        switch.add_ecmp_group(dst.node_id, [port_a, port_b], salt=7)
        for flow in range(32):
            _inject(sim, switch, dst, flow_id=flow)
        assert port_a.queue.enqueued_packets > 0
        assert port_b.queue.enqueued_packets > 0

    def test_packet_mode_sprays_one_flow(self):
        sim = Simulator(seed=1)
        switch, dst, port_a, port_b = _two_path_switch(sim)
        switch.add_ecmp_group(dst.node_id, [port_a, port_b], salt=7, per_packet=True)
        _inject(sim, switch, dst, flow_id=5, n_packets=32)
        assert port_a.queue.enqueued_packets > 0
        assert port_b.queue.enqueued_packets > 0

    def test_selection_keyed_on_traversal_order_not_flow_id(self):
        # Flow ids come from a process-wide counter; the hash must key on
        # the order flows first traverse the switch, so shifted ids give
        # the same port sequence.
        def port_sequence(id_base):
            sim = Simulator(seed=1)
            switch, dst, port_a, port_b = _two_path_switch(sim)
            switch.add_ecmp_group(dst.node_id, [port_a, port_b], salt=7)
            seq = []
            for i in range(16):
                before = port_a.queue.enqueued_packets
                _inject(sim, switch, dst, flow_id=id_base + i)
                seq.append(port_a.queue.enqueued_packets != before)
            return seq

        assert port_sequence(100) == port_sequence(987_654)

    def test_single_candidate_collapses_to_plain_route(self):
        sim = Simulator(seed=1)
        switch, dst, port_a, _ = _two_path_switch(sim)
        switch.add_ecmp_group(dst.node_id, [port_a], salt=7)
        assert switch.ecmp_candidates(dst.node_id) is None
        assert switch.route_for(dst.node_id) is port_a

    def test_add_route_clears_group(self):
        sim = Simulator(seed=1)
        switch, dst, port_a, port_b = _two_path_switch(sim)
        switch.add_ecmp_group(dst.node_id, [port_a, port_b], salt=7)
        assert switch.ecmp_candidates(dst.node_id) is not None
        switch.add_route(dst.node_id, port_a)
        assert switch.ecmp_candidates(dst.node_id) is None

    def test_rejects_foreign_and_empty_port_sets(self):
        sim = Simulator(seed=1)
        switch, dst, port_a, _ = _two_path_switch(sim)
        other, other_dst, other_port, _ = _two_path_switch(sim)
        with pytest.raises(ValueError, match="belong"):
            switch.add_ecmp_group(dst.node_id, [port_a, other_port], salt=7)
        with pytest.raises(ValueError, match="at least one"):
            switch.add_ecmp_group(dst.node_id, [], salt=7)

    def test_shared_buffer_switch_groups(self):
        sim = Simulator(seed=1)
        switch = SharedBufferSwitch(sim, "sb", shared_pool_bytes=256 * 1024)
        dst = Host(sim, "dst")
        port_a = switch.add_port(Link(dst, 10**9, 1000), name="a")
        port_b = switch.add_port(Link(dst, 10**9, 1000), name="b")
        switch.add_ecmp_group(dst.node_id, [port_a, port_b], salt=3)
        assert switch.ecmp_candidates(dst.node_id) == (port_a, port_b)
        assert switch.route_for(dst.node_id) is None  # multipath: no single port
        _inject(sim, switch, dst, flow_id=1, n_packets=4)
        total = port_a.queue.enqueued_packets + port_b.queue.enqueued_packets
        assert total == 4


def _queue_census(net):
    """Per-switch enqueue counters, keyed by stable switch/port names."""
    switches = [*net.cores]
    for pod_aggs, pod_edges in zip(net.aggs, net.edges):
        switches.extend(pod_aggs)
        switches.extend(pod_edges)
    return {
        sw.name: [p.queue.enqueued_packets for p in sw.ports] for sw in switches
    }


class TestSameSeedSamePaths:
    def _drive(self, seed):
        sim = Simulator(seed=seed)
        net = build_fat_tree(sim, TopologyParams(fat_tree_k=4, hosts_per_edge=1))
        pool = PacketPool.of(sim)
        for flow, src in enumerate(net.hosts):
            for dst in net.hosts:
                if dst is src:
                    continue
                h = pool.alloc_control(
                    flow, src.node_id, dst.node_id, 200, sim.next_packet_id()
                )
                src.send(h)
        sim.run_until_idle()
        return _queue_census(net)

    def test_identical_builds_identical_paths(self):
        assert self._drive(seed=7) == self._drive(seed=7)

    def test_different_seed_different_paths(self):
        assert self._drive(seed=7) != self._drive(seed=8)


FAT_TREE_SPEC_KWARGS = dict(
    protocol="dctcp+",
    n_flows=4,
    rounds=2,
    seed=3,
    topology="fat-tree",
    workload="swarm",
    topo=dict(fat_tree_k=4, hosts_per_edge=2),
    workload_overrides=dict(piece_bytes=32 * 1024),
)

_DIGEST_SCRIPT = """
import sys
from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.validate.fuzz import result_digest

spec = ScenarioSpec.create(
    "dctcp+", 4, rounds=2, seed=3, topology="fat-tree", workload="swarm",
    topo=dict(fat_tree_k=4, hosts_per_edge=2),
    workload_overrides=dict(piece_bytes=32 * 1024),
)
sys.stdout.write(result_digest(run_scenario(spec)))
"""


def _digest_in_subprocess(native: bool) -> str:
    env = dict(os.environ, PYTHONPATH=SRC)
    if native:
        env.pop("REPRO_NATIVE", None)
    else:
        env["REPRO_NATIVE"] = "0"
    out = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


class TestCrossExecutorDeterminism:
    def test_rerun_identical(self):
        spec = ScenarioSpec.create(**FAT_TREE_SPEC_KWARGS)
        assert result_digest(run_scenario(spec)) == result_digest(run_scenario(spec))

    def test_serial_vs_parallel_identical(self):
        specs = [
            ScenarioSpec.create(**dict(FAT_TREE_SPEC_KWARGS, seed=s)) for s in (3, 4)
        ]
        serial = [result_digest(run_scenario(s)) for s in specs]
        parallel = [result_digest(r) for r in ParallelExecutor(workers=2).map(specs)]
        assert serial == parallel

    def test_stable_across_process_restarts(self):
        spec = ScenarioSpec.create(**FAT_TREE_SPEC_KWARGS)
        here = result_digest(run_scenario(spec))
        native = os.environ.get("REPRO_NATIVE") != "0"
        first = _digest_in_subprocess(native=native)
        second = _digest_in_subprocess(native=native)
        assert first == second == here

    def test_native_vs_pure_identical(self):
        assert _digest_in_subprocess(native=True) == _digest_in_subprocess(native=False)
