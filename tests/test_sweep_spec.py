"""Sweep-spec expansion, hashing, and shard-partition properties.

The partition guarantees carry the whole sharding story: two hosts
given ``--shard 0/4`` and ``--shard 1/4`` must never duplicate or drop a
point, no matter which order either enumerates the sweep in — so the
properties here are pinned the same way the golden digests pin results,
including a cross-process determinism check.
"""

import json
import random
import subprocess
import sys

import pytest

from repro.sweep import (
    AXES,
    PRESETS,
    SweepSpec,
    SweepSpecError,
    parse_shard,
    preset,
    shard_index,
    shard_points,
)

SMALL = {
    "name": "small",
    "mode": "grid",
    "rounds": 1,
    "axes": {
        "protocol": ["dctcp", "dctcp+"],
        "n_flows": [2, 4],
        "rto_min_ms": [10.0, 200.0],
        "seed": [1, 2, 3],
    },
}


def small_spec(**overrides):
    data = dict(SMALL, **overrides)
    return SweepSpec.from_dict(data)


class TestGridExpansion:
    def test_point_count_is_the_axis_product(self):
        spec = small_spec()
        assert spec.point_count() == 2 * 2 * 2 * 3
        assert len(spec.points()) == spec.point_count()

    def test_expansion_is_deterministic_and_ordered(self):
        a = [p.cache_key() for p in small_spec().points()]
        b = [p.cache_key() for p in small_spec().points()]
        assert a == b
        assert len(set(a)) == len(a)  # no duplicate points

    def test_axes_map_onto_scenario_knobs(self):
        spec = SweepSpec.from_dict(
            {
                "name": "knobs",
                "rounds": 3,
                "axes": {
                    "n_flows": [7],
                    "rto_min_ms": [10.0],
                    "ecn_threshold_bytes": [16384],
                    "buffer_bytes": [65536],
                    "cc": ["dctcp"],
                    "seed": [5],
                },
            }
        )
        (point,) = spec.points()
        assert point.n_flows == 7
        assert point.rounds == 3
        assert point.seed == 5
        assert point.cc == "dctcp"
        assert dict(point.tcp_overrides)["rto_min_ns"] == 10_000_000
        topo = dict(point.topo_overrides)
        assert topo == {"ecn_threshold_bytes": 16384, "buffer_bytes": 65536}

    def test_absent_axes_fall_back_to_spec_defaults(self):
        spec = SweepSpec.from_dict({"name": "d", "protocol": "tcp", "axes": {"n_flows": [3]}})
        (point,) = spec.points()
        assert point.protocol == "tcp"
        assert point.seed == 1
        assert point.topo_overrides == ()
        assert point.topology == "two-tier"
        assert point.workload == "incast"

    def test_topology_and_workload_axes(self):
        spec = SweepSpec.from_dict(
            {
                "name": "shapes",
                "axes": {
                    "topology": ["two-tier", "dumbbell", "fat-tree"],
                    "workload": ["incast", "http"],
                    "n_flows": [2],
                    "seed": [1],
                },
            }
        )
        points = spec.points()
        assert len(points) == 3 * 2
        assert {(p.topology, p.workload) for p in points} == {
            (t, w)
            for t in ("two-tier", "dumbbell", "fat-tree")
            for w in ("incast", "http")
        }
        assert len({p.cache_key() for p in points}) == 6


class TestRandomExpansion:
    def test_draws_are_seed_deterministic(self):
        spec = preset("ci-random-64")
        assert [p.cache_key() for p in spec.points()] == [
            p.cache_key() for p in preset("ci-random-64").points()
        ]

    def test_sample_seed_changes_the_draw(self):
        base = PRESETS["ci-random-64"]
        a = SweepSpec.from_dict(base).points()
        b = SweepSpec.from_dict(dict(base, sample_seed=99)).points()
        assert [p.cache_key() for p in a] != [p.cache_key() for p in b]

    def test_ranges_are_respected_and_integer_axes_stay_integral(self):
        spec = SweepSpec.from_dict(
            {
                "name": "r",
                "mode": "random",
                "samples": 50,
                "sample_seed": 3,
                "axes": {
                    "n_flows": {"min": 2, "max": 9, "scale": "log"},
                    "rto_min_ms": {"min": 1.0, "max": 100.0},
                },
            }
        )
        for point in spec.points():
            assert 2 <= point.n_flows <= 9
            assert isinstance(point.n_flows, int)
            rto_ns = dict(point.tcp_overrides)["rto_min_ns"]
            assert 1e6 <= rto_ns <= 100e6

    def test_random_mode_requires_samples(self):
        with pytest.raises(SweepSpecError):
            SweepSpec.from_dict({"name": "r", "mode": "random", "axes": {"n_flows": [2]}})


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown axes"):
            SweepSpec.from_dict({"name": "x", "axes": {"flows": [2]}})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown sweep-spec keys"):
            SweepSpec.from_dict({"name": "x", "shards": 4})

    def test_grid_rejects_ranges(self):
        with pytest.raises(SweepSpecError, match="mode='random'"):
            SweepSpec.from_dict({"name": "x", "axes": {"n_flows": {"min": 2, "max": 4}}})

    def test_bad_ranges_rejected(self):
        for axes in (
            {"n_flows": {"min": 9, "max": 2}},
            {"n_flows": {"min": 2}},
            {"n_flows": {"min": 0, "max": 4, "scale": "log"}},
            {"n_flows": {"min": 2, "max": 4, "scale": "cubic"}},
            {"n_flows": {"min": 2, "max": 4, "step": 1}},
        ):
            with pytest.raises(SweepSpecError):
                SweepSpec.from_dict({"name": "x", "mode": "random", "samples": 1, "axes": axes})

    def test_non_integer_values_on_integer_axes_rejected(self):
        with pytest.raises(SweepSpecError, match="expected integers"):
            SweepSpec.from_dict({"name": "x", "axes": {"n_flows": [2.5]}})

    def test_empty_value_list_rejected(self):
        with pytest.raises(SweepSpecError, match="empty value list"):
            SweepSpec.from_dict({"name": "x", "axes": {"seed": []}})


class TestDigest:
    def test_digest_is_stable_and_content_addressed(self):
        assert small_spec().digest() == small_spec().digest()
        assert small_spec().digest() != small_spec(rounds=2).digest()
        assert small_spec().digest() != small_spec(name="other").digest()

    def test_digest_deterministic_across_processes(self):
        """Same discipline as tests/test_golden_digests.py: no per-process
        state (hash randomization, dict order) may leak into the digest."""
        code = (
            "import json;from repro.sweep import SweepSpec;"
            f"print(SweepSpec.from_dict(json.loads({json.dumps(SMALL)!r})).digest())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == small_spec().digest()

    def test_file_roundtrip_preserves_digest(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL))
        assert SweepSpec.from_file(path).digest() == small_spec().digest()


class TestShardPartition:
    POINTS = small_spec().points()

    def test_disjoint_and_exhaustive(self):
        for n in (1, 2, 3, 7):
            shards = [shard_points(self.POINTS, (i, n)) for i in range(n)]
            keys = [{p.cache_key() for p in shard} for shard in shards]
            for i in range(n):
                for j in range(i + 1, n):
                    assert not keys[i] & keys[j], f"shards {i}/{n} and {j}/{n} overlap"
            assert set.union(*keys) == {p.cache_key() for p in self.POINTS}

    def test_stable_under_iteration_order(self):
        shuffled = list(self.POINTS)
        random.Random(7).shuffle(shuffled)
        straight = {p.cache_key() for p in shard_points(self.POINTS, (1, 3))}
        reordered = {p.cache_key() for p in shard_points(shuffled, (1, 3))}
        assert straight == reordered

    def test_membership_is_a_pure_function_of_point_and_n(self):
        # Renumbering i/n (running 0/4 today, 2/4 tomorrow) re-derives the
        # same partition: membership never depends on which process asks.
        for point in self.POINTS:
            owner = shard_index(point, 4)
            for i in range(4):
                assert (point in shard_points(self.POINTS, (i, 4))) == (i == owner)

    def test_none_keeps_everything(self):
        assert shard_points(self.POINTS, None) == list(self.POINTS)

    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "0", "a/b", "1/0"):
            with pytest.raises(SweepSpecError):
                parse_shard(bad)


class TestPresets:
    def test_every_preset_expands(self):
        for name in PRESETS:
            spec = preset(name)
            assert spec.name == name
            assert spec.point_count() >= 1

    def test_ci_512_is_exactly_512_points(self):
        assert preset("ci-512").point_count() == 512
        assert len(preset("ci-512").points()) == 512

    def test_phase_1m_is_a_million_point_study(self):
        # ROADMAP item 3's target; expansion is lazy so counting is cheap.
        assert preset("phase-1m").point_count() > 1_000_000

    def test_unknown_preset_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown preset"):
            preset("nope")

    def test_axis_order_is_fixed(self):
        # Grid expansion order is part of the determinism contract.
        assert AXES.index("protocol") < AXES.index("n_flows") < AXES.index("seed")
