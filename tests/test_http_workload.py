"""Tests for the closed-loop HTTP request/response workload."""

import pytest

from repro.exec.scenario import ScenarioSpec, run_scenario
from repro.net.topology import TopologyParams, build_dumbbell, build_star
from repro.sim.engine import Simulator
from repro.workloads.http import RESPONSE_SIZE_CDFS, HttpConfig, HttpWorkload
from repro.workloads.protocols import spec_for

from .helpers import drain


def _run(config, seed=1, topology=build_star, protocol="dctcp+", **topo_kwargs):
    sim = Simulator(seed=seed)
    if topology is build_star:
        tree = topology(sim, n_senders=4)
    else:
        tree = topology(sim, TopologyParams(**topo_kwargs))
    workload = HttpWorkload(sim, tree, spec_for(protocol), config)
    workload.run_to_completion(max_events=5_000_000)
    assert workload.finished
    workload.close()
    return workload


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            HttpConfig(n_clients=0)
        with pytest.raises(ValueError):
            HttpConfig(n_clients=1, n_requests=0)
        with pytest.raises(ValueError):
            HttpConfig(n_clients=1, response_size="no-such-cdf")
        with pytest.raises(ValueError):
            HttpConfig(n_clients=1, response_size=0)
        with pytest.raises(ValueError):
            HttpConfig(n_clients=1, think_mode="poisson")
        with pytest.raises(ValueError):
            HttpConfig(n_clients=1, think_scale=-1.0)


class TestClosedLoop:
    def test_every_request_completes_and_is_recorded(self):
        config = HttpConfig(
            n_clients=3, n_requests=2, response_size=20_000, think_mode="none"
        )
        workload = _run(config)
        assert len(workload.rounds) == 3 * 2
        assert all(r.completed for r in workload.rounds)
        assert all(r.bytes_received == 20_000 for r in workload.rounds)
        assert workload.mean_goodput_bps > 0
        assert workload.mean_fct_ns > 0
        assert len(workload.flow_stats) == 3  # one persistent flow per client

    def test_cdf_response_sizes_stay_in_support(self):
        config = HttpConfig(
            n_clients=2,
            n_requests=3,
            response_size="short-message",
            think_mode="none",
        )
        workload = _run(config)
        cdf = RESPONSE_SIZE_CDFS["short-message"]
        lo, hi = cdf._values[0], cdf._values[-1]
        for r in workload.rounds:
            assert lo <= r.bytes_received <= hi

    def test_clients_round_robin_over_servers(self):
        sim = Simulator(seed=1)
        tree = build_star(sim, n_senders=2)
        config = HttpConfig(n_clients=4, n_requests=1, response_size=1000)
        workload = HttpWorkload(sim, tree, spec_for("dctcp"), config)
        assert [c.server for c in workload.clients] == [
            tree.servers[0],
            tree.servers[1],
            tree.servers[0],
            tree.servers[1],
        ]
        workload.run_to_completion(max_events=5_000_000)
        workload.close()

    def test_fixed_think_time_delays_reissue(self):
        fast = _run(
            HttpConfig(n_clients=1, n_requests=3, response_size=5_000, think_mode="none")
        )
        slow = _run(
            HttpConfig(
                n_clients=1,
                n_requests=3,
                response_size=5_000,
                think_mode="fixed",
                think_ns=2_000_000,
            )
        )
        gap_fast = fast.rounds[1].start_ns - fast.rounds[0].start_ns
        gap_slow = slow.rounds[1].start_ns - slow.rounds[0].start_ns
        assert gap_slow >= gap_fast + 2_000_000

    def test_giveup_records_failed_request(self):
        config = HttpConfig(
            n_clients=2,
            n_requests=5,
            response_size=1_000_000,
            request_deadline_ns=10_000,  # far shorter than the transfer
        )
        workload = _run(config)
        assert workload.finished
        assert len(workload.rounds) == 2  # one failed request per client
        assert not any(r.completed for r in workload.rounds)

    def test_double_start_rejected(self):
        sim = Simulator(seed=1)
        tree = build_star(sim, n_senders=1)
        workload = HttpWorkload(
            sim, tree, spec_for("dctcp"), HttpConfig(n_clients=1, response_size=100)
        )
        workload.start()
        with pytest.raises(RuntimeError):
            workload.start()
        drain(sim)
        workload.close()


class TestDeterminism:
    def _trace(self, seed):
        config = HttpConfig(
            n_clients=3, n_requests=3, response_size="short-message", think_scale=0.01
        )
        workload = _run(config, seed=seed)
        return [(r.start_ns, r.duration_ns, r.bytes_received) for r in workload.rounds]

    def test_same_seed_identical_rounds(self):
        assert self._trace(5) == self._trace(5)

    def test_seed_changes_draws(self):
        assert self._trace(5) != self._trace(6)


class TestOnDumbbell:
    def test_runs_on_heterogeneous_legs(self):
        config = HttpConfig(
            n_clients=3, n_requests=2, response_size=10_000, think_mode="none"
        )
        workload = _run(
            config,
            topology=build_dumbbell,
            n_pairs=3,
            leg_delays_ns=(5_000, 20_000, 60_000),
        )
        assert len(workload.rounds) == 6
        assert all(r.completed for r in workload.rounds)


class TestScenarioIntegration:
    def test_run_scenario_http_point(self):
        spec = ScenarioSpec.create(
            "dctcp",
            4,
            rounds=2,
            seed=1,
            workload="http",
            workload_overrides=dict(response_size=20_000, think_mode="none"),
        )
        result = run_scenario(spec, validate=True)
        assert result.rounds == 8
        assert result.goodput_mbps > 0
        assert len(result.flow_stats) == 4
