"""Tests for the slow_time pacer (hrtimer-deferral semantics)."""

import random

from repro.core.config import DctcpPlusConfig
from repro.core.pacer import SlowTimePacer
from repro.core.state_machine import SlowTimeStateMachine
from repro.core.states import DctcpPlusState
from repro.sim.units import US


def make(slow_time=0, state=DctcpPlusState.NORMAL):
    machine = SlowTimeStateMachine(DctcpPlusConfig(), random.Random(1))
    machine.state = state
    machine.slow_time_ns = slow_time
    return machine, SlowTimePacer(machine)


class TestNormalState:
    def test_no_delay_in_normal(self):
        _, pacer = make()
        assert pacer.next_send_time(1000) == 1000

    def test_zero_slow_time_no_delay(self):
        _, pacer = make(slow_time=0, state=DctcpPlusState.TIME_INC)
        assert pacer.next_send_time(1000) == 1000

    def test_return_to_normal_clears_pending(self):
        machine, pacer = make(slow_time=100 * US, state=DctcpPlusState.TIME_INC)
        assert pacer.next_send_time(0) == 100 * US
        machine.state = DctcpPlusState.NORMAL
        assert pacer.next_send_time(10) == 10


class TestDeferral:
    def test_each_attempt_deferred_by_slow_time(self):
        """The delay adds to the ACK clock: an attempt at t departs at
        t + slow_time (not max(rate limit, ack clock))."""
        _, pacer = make(slow_time=300 * US, state=DctcpPlusState.TIME_INC)
        assert pacer.next_send_time(1_000_000) == 1_000_000 + 300 * US

    def test_held_packet_keeps_its_release(self):
        _, pacer = make(slow_time=300 * US, state=DctcpPlusState.TIME_INC)
        release = pacer.next_send_time(0)
        # re-querying while waiting must not push the release further out
        assert pacer.next_send_time(100 * US) == release
        assert pacer.next_send_time(release) == release

    def test_consecutive_packets_spaced_by_slow_time(self):
        _, pacer = make(slow_time=200 * US, state=DctcpPlusState.TIME_INC)
        r1 = pacer.next_send_time(0)
        pacer.on_sent(r1)
        r2 = pacer.next_send_time(r1)
        assert r2 - r1 == 200 * US

    def test_delay_statistics(self):
        _, pacer = make(slow_time=100 * US, state=DctcpPlusState.TIME_DES)
        r = pacer.next_send_time(0)
        pacer.on_sent(r)
        pacer.next_send_time(r)
        assert pacer.delayed_packets == 2
        assert pacer.total_delay_ns == 200 * US

    def test_slow_time_change_applies_to_next_packet(self):
        machine, pacer = make(slow_time=100 * US, state=DctcpPlusState.TIME_INC)
        r1 = pacer.next_send_time(0)
        assert r1 == 100 * US
        machine.slow_time_ns = 400 * US  # grew while waiting
        assert pacer.next_send_time(50 * US) == r1  # held packet unchanged
        pacer.on_sent(r1)
        assert pacer.next_send_time(r1) == r1 + 400 * US
