"""DCTCP+ — the paper's contribution.

``DctcpPlusSender`` is a :class:`~repro.tcp.dctcp.DctcpSender` with two
additions (and nothing else — the paper's kernel patch is <100 LoC over
DCTCP):

1. the :class:`~repro.core.state_machine.SlowTimeStateMachine`, fed by
   every ACK (``statuses_evolution()`` in the paper is invoked per ACK),
   plus RTO retransmissions;
2. the :class:`~repro.core.pacer.SlowTimePacer`, gating data departures
   by ``slow_time`` while the machine is out of NORMAL.

The cwnd floor defaults to 1 MSS (paper footnote 3).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..metrics.flowstats import FlowStats
from ..net.host import Host
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.dctcp import DctcpSender
from ..tcp.events import CC_ACK_ECHO, CCEvent
from ..tcp.sender import TcpSender
from .config import DctcpPlusConfig
from .pacer import SlowTimePacer
from .state_machine import SlowTimeStateMachine
from .states import DctcpPlusState


class DctcpPlusSender(DctcpSender):
    """DCTCP + slow_time regulation + sending-time desynchronization."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        config: Optional[TcpConfig] = None,
        plus_config: Optional[DctcpPlusConfig] = None,
        stats: Optional[FlowStats] = None,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        rng: Optional[random.Random] = None,
    ):
        self.plus_config = plus_config or DctcpPlusConfig()
        config = (config or TcpConfig()).with_overrides(min_cwnd_mss=self.plus_config.min_cwnd_mss)
        super().__init__(sim, host, dst_node_id, flow_id, config, stats, on_complete)
        machine_rng = rng if rng is not None else sim.stream(f"dctcp+/{sim.next_sequence()}")
        self.machine = SlowTimeStateMachine(self.plus_config, machine_rng)
        if self.plus_config.backoff_unit_mode == "srtt":
            self.machine.unit_source = self._srtt_unit
        self.pacer = SlowTimePacer(self.machine)
        #: set when an RTO fired and its retransmission is outstanding, so
        #: the next ``statuses_evolution`` input counts as congestion
        #: ("retrans" arc in Fig. 4) even if the ACK carries no ECE.
        self._retrans_pending = False
        hooks = sim.hooks
        if hooks is not None:
            hooks.machine_created(self.machine, self)

    def _srtt_unit(self):
        """Live backoff unit for ``backoff_unit_mode='srtt'``: the smoothed
        RTT estimate, which tracks queueing delay under fan-in."""
        srtt = self.rtt.srtt_ns
        return int(srtt) if srtt is not None else None

    # -- state machine inputs ----------------------------------------------------
    @property
    def _cwnd_at_floor(self) -> bool:
        # Timeouts drop cwnd to 1 MSS, below the nominal floor; both count
        # as "cwnd has diminished to the minimum value".
        return self.cwnd <= self.config.min_cwnd_bytes + 1e-6

    def on_ecn_echo(self, ev: CCEvent) -> None:
        if ev.kind is not CC_ACK_ECHO:
            super().on_ecn_echo(ev)
            return
        # Fig. 4's "retrans" condition, kernel reading: the sender is in
        # loss recovery after a timeout (CA_Loss) — every ACK while the
        # retransmitted window drains counts as congestion evidence, not
        # just the ACK that follows the first resend.
        congested = ev.ece or self._retrans_pending or self.in_rto_recovery
        if congested:
            # Fig. 4: only the NORMAL -> Time_Inc entry requires cwnd at the
            # minimum; once engaged, *any* ECE-marked ACK (or a timeout
            # retransmission) keeps growing slow_time, even if cwnd has
            # crept above the floor.
            if self.machine.state is not DctcpPlusState.NORMAL or self._cwnd_at_floor:
                self.machine.on_congestion_event()
            # NORMAL with cwnd above the floor: plain DCTCP window control
            # is still responsive; the machine stays in NORMAL.
        else:
            self.machine.on_clean_ack(ev.time_ns)
        self._retrans_pending = False
        super().on_ecn_echo(ev)

    def on_rto(self, ev: CCEvent) -> None:
        super().on_rto(ev)
        # The timeout retransmission itself is the "retrans" congestion
        # signal; register it immediately so the pacer spaces the go-back-N
        # resends, and remember it for the next ACK's evaluation.
        self._retrans_pending = True
        if self._cwnd_at_floor:
            self.machine.on_congestion_event()

    # -- views --------------------------------------------------------------------
    @property
    def state(self) -> DctcpPlusState:
        return self.machine.state

    @property
    def slow_time_ns(self) -> int:
        return self.machine.slow_time_ns
