"""The three DCTCP+ sender states (paper Section V.B, Fig. 4)."""

from __future__ import annotations

from enum import Enum


class DctcpPlusState(Enum):
    """Where the sender sits in the slow_time regulation machine."""

    #: DCTCP works normally; no transmission delay is applied.
    NORMAL = "DCTCP_NORMAL"
    #: cwnd is at its floor and congestion feedback keeps arriving; each
    #: event grows ``slow_time`` additively (randomized backoff).
    TIME_INC = "DCTCP_Time_Inc"
    #: Congestion feedback stopped; ``slow_time`` decays multiplicatively
    #: until it drops below ``threshold_T`` and the sender returns to NORMAL.
    TIME_DES = "DCTCP_Time_Des"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
