"""The slow_time regulation state machine (paper Fig. 4 + Algorithm 1).

``slow_time`` follows an AIMD law driven by per-ACK congestion evidence:

- **Additive increase** — every congestion event while cwnd sits at its
  floor (an ECE-marked ACK, or a retransmission after timeout) grows
  ``slow_time`` by ``random(backoff_time_unit)``.  The randomization is the
  desynchronization mechanism: concurrent flows draw different increments
  and stop bursting in lockstep.
- **Multiplicative decrease** — the first clean ACK moves the machine to
  TIME_DES and divides ``slow_time`` by ``divisor_factor``; further clean
  ACKs keep dividing until ``slow_time <= threshold_T``, then the sender
  returns to plain DCTCP (NORMAL, ``slow_time = 0``).

Note: Algorithm 1 line 15 reads ``current_state = DCTCP_Time_Inc`` inside
the Inc->Des branch; Fig. 4 and the surrounding prose make clear this is a
typo for ``DCTCP_Time_Des`` (likewise line 21 for Des->Inc), and we follow
the figure.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim.rng import uniform_time
from .config import DctcpPlusConfig
from .states import DctcpPlusState


class SlowTimeStateMachine:
    """Tracks the DCTCP+ state and the current ``slow_time``."""

    __slots__ = (
        "config",
        "rng",
        "state",
        "slow_time_ns",
        "transitions_to_inc",
        "transitions_to_des",
        "transitions_to_normal",
        "peak_slow_time_ns",
        "_last_decay_ns",
        "unit_source",
        "observer",
        "on_update",
    )

    def __init__(self, config: DctcpPlusConfig, rng: Optional[random.Random] = None):
        self.config = config
        self.rng = rng or random.Random(0)
        self.state = DctcpPlusState.NORMAL
        self.slow_time_ns = 0
        self.transitions_to_inc = 0
        self.transitions_to_des = 0
        self.transitions_to_normal = 0
        self.peak_slow_time_ns = 0
        self._last_decay_ns = -(10**18)
        #: optional callable returning the live backoff unit (e.g. the
        #: connection's SRTT); installed by the sender in "srtt" mode.
        self.unit_source = None
        #: optional hook fired on the NORMAL -> TIME_INC transition; the
        #: validate layer uses it to assert the transition only happens
        #: with cwnd at its floor.  None on the (default) unvalidated path.
        self.observer = None
        #: optional hook fired after every state/slow_time update, with
        #: ``(machine, cause)`` where cause is "congestion" or "decay"; the
        #: telemetry tracer records transitions and slow_time evolution
        #: through it.  None on the (default) untraced path.
        self.on_update = None

    def _current_unit(self) -> int:
        unit = self.config.backoff_time_unit_ns
        if self.unit_source is not None:
            dynamic = self.unit_source()
            if dynamic is not None and dynamic > unit:
                unit = int(dynamic)
        return unit

    def _draw_backoff(self) -> int:
        """One additive increment: randomized per the paper, or the plain
        unit for the "partial DCTCP+" ablation (Fig. 6)."""
        unit = self._current_unit()
        if self.config.randomize:
            return uniform_time(self.rng, unit)
        return unit

    # -- inputs ------------------------------------------------------------------
    def on_congestion_event(self) -> None:
        """cwnd is at the floor *and* the sender was told to slow down
        (ECE-marked ACK, or a retransmission following an RTO)."""
        if self.state is DctcpPlusState.NORMAL:
            if self.observer is not None:
                self.observer(self)
            self.state = DctcpPlusState.TIME_INC
            self.transitions_to_inc += 1
            self.slow_time_ns = self._draw_backoff()
        elif self.state is DctcpPlusState.TIME_INC:
            self.slow_time_ns += self._draw_backoff()
        else:  # TIME_DES -> TIME_INC (Fig. 4)
            self.state = DctcpPlusState.TIME_INC
            self.transitions_to_inc += 1
            self.slow_time_ns += self._draw_backoff()
        if self.slow_time_ns > self.peak_slow_time_ns:
            self.peak_slow_time_ns = self.slow_time_ns
        if self.on_update is not None:
            self.on_update(self, "congestion")

    def on_clean_ack(self, now_ns: int = 0) -> None:
        """An ACK arrived without congestion evidence.

        Decay steps are rate-limited to one per ``decay_interval_ns`` (the
        Fig. 4 "Threshold" guard); clean ACKs inside the same interval are
        absorbed without further division.
        """
        cfg = self.config
        if self.state is DctcpPlusState.NORMAL:
            return
        decay_interval = cfg.decay_interval_ns
        if cfg.decay_interval_mode == "srtt":
            decay_interval = max(decay_interval, self._current_unit())
        if now_ns - self._last_decay_ns < decay_interval:
            return
        self._last_decay_ns = now_ns
        if self.state is DctcpPlusState.TIME_INC:
            self.state = DctcpPlusState.TIME_DES
            self.transitions_to_des += 1
            self.slow_time_ns = int(self.slow_time_ns / cfg.divisor_factor)
        elif self.slow_time_ns > cfg.threshold_t_ns:
            self.slow_time_ns = int(self.slow_time_ns / cfg.divisor_factor)
        else:
            self.state = DctcpPlusState.NORMAL
            self.transitions_to_normal += 1
            self.slow_time_ns = 0
        if self.on_update is not None:
            self.on_update(self, "decay")

    # -- views -------------------------------------------------------------------
    @property
    def pacing_active(self) -> bool:
        return self.state is not DctcpPlusState.NORMAL and self.slow_time_ns > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SlowTimeStateMachine({self.state}, slow_time={self.slow_time_ns}ns)"
