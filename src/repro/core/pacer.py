"""The slow_time send gate — the simulator analogue of the paper's hrtimer.

The kernel implementation postpones each ``tcp_transmit_skb()`` call by
``slow_time`` via a high-resolution timer: *"the sender will wait for a
slow_time to inject the next packet into networks instead of immediate
transmission"*.  The delay therefore adds to the ACK clock — a
window-of-one flow sends once per ``RTT + slow_time`` — rather than merely
rate-capping departures.  This distinction matters: under heavy fan-in the
queueing delay inflates the RTT, and a pure rate cap of ``slow_time``
below that inflated RTT would never bind, leaving the switch queue pinned
at the overflow point.

Mechanics: when the sender finds a packet eligible (window open, data
waiting) it asks the pacer for a release time; the pacer stamps
``attempt + slow_time`` and holds that packet until then.  Packets queued
behind it are each delayed ``slow_time`` after the previous departure,
exactly like consecutive hrtimer-deferred ``tcp_transmit_skb`` calls.
"""

from __future__ import annotations

from .state_machine import SlowTimeStateMachine
from .states import DctcpPlusState


class SlowTimePacer:
    """Per-flow transmission gate driven by a :class:`SlowTimeStateMachine`."""

    __slots__ = ("machine", "_release_ns", "delayed_packets", "total_delay_ns")

    def __init__(self, machine: SlowTimeStateMachine):
        self.machine = machine
        self._release_ns = -1  # pending packet's release time; -1 = none held
        self.delayed_packets = 0
        self.total_delay_ns = 0

    def next_send_time(self, now: int) -> int:
        """Earliest instant the currently eligible packet may depart."""
        slow_time = self.machine.slow_time_ns
        if self.machine.state is DctcpPlusState.NORMAL or slow_time <= 0:
            self._release_ns = -1
            return now
        if self._release_ns < now:
            # Fresh transmission attempt: defer it by slow_time.
            self._release_ns = now + slow_time
            self.delayed_packets += 1
            self.total_delay_ns += slow_time
        return self._release_ns

    def on_sent(self, now: int) -> None:
        """The held packet departed; the next one gets its own deferral."""
        self._release_ns = -1
