"""DCTCP+ — slow_time regulation and sender desynchronization (the paper's
primary contribution)."""

from .config import DctcpPlusConfig
from .dctcp_plus import DctcpPlusSender
from .pacer import SlowTimePacer
from .reno_plus import RenoPlusSender
from .state_machine import SlowTimeStateMachine
from .states import DctcpPlusState

__all__ = [
    "DctcpPlusConfig",
    "DctcpPlusSender",
    "RenoPlusSender",
    "SlowTimePacer",
    "SlowTimeStateMachine",
    "DctcpPlusState",
]
