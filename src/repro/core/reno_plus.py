"""TCP New Reno carrying the slow_time enhancement ("TCP⁺").

Section VII of the paper proposes coalescing the enhancement mechanism
with plain TCP.  Without ECN there is no per-ACK congestion bit, so the
state machine's congestion evidence reduces to the loss channel: an RTO
and the ACKs that arrive while its go-back-N retransmissions are
outstanding (the kernel CA_Loss reading used for DCTCP⁺), plus the entry
condition that cwnd has collapsed to its floor.

This cannot match DCTCP⁺ — losses are a far coarser signal than marks —
but it demonstrates the mechanism's portability and measurably softens
TCP's incast behaviour at moderate fan-in.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..metrics.flowstats import FlowStats
from ..net.host import Host
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.events import CC_ACK_ECHO, CCEvent
from ..tcp.sender import TcpSender
from .config import DctcpPlusConfig
from .pacer import SlowTimePacer
from .state_machine import SlowTimeStateMachine
from .states import DctcpPlusState


class RenoPlusSender(TcpSender):
    """TCP New Reno + slow_time regulation driven by the loss channel."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        config: Optional[TcpConfig] = None,
        plus_config: Optional[DctcpPlusConfig] = None,
        stats: Optional[FlowStats] = None,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
    ):
        self.plus_config = plus_config or DctcpPlusConfig()
        config = (config or TcpConfig()).with_overrides(
            min_cwnd_mss=self.plus_config.min_cwnd_mss, ecn_enabled=False
        )
        super().__init__(sim, host, dst_node_id, flow_id, config, stats, on_complete)
        self.machine = SlowTimeStateMachine(
            self.plus_config, sim.stream(f"tcp+/{sim.next_sequence()}")
        )
        if self.plus_config.backoff_unit_mode == "srtt":
            self.machine.unit_source = self._srtt_unit
        self.pacer = SlowTimePacer(self.machine)
        self._retrans_pending = False
        hooks = sim.hooks
        if hooks is not None:
            hooks.machine_created(self.machine, self)

    def _srtt_unit(self):
        srtt = self.rtt.srtt_ns
        return int(srtt) if srtt is not None else None

    @property
    def _cwnd_at_floor(self) -> bool:
        return self.cwnd <= self.config.min_cwnd_bytes + 1e-6

    def on_ecn_echo(self, ev: CCEvent) -> None:
        if ev.kind is not CC_ACK_ECHO:
            super().on_ecn_echo(ev)
            return
        congested = self._retrans_pending or self.in_rto_recovery
        if congested:
            if self.machine.state is not DctcpPlusState.NORMAL or self._cwnd_at_floor:
                self.machine.on_congestion_event()
        else:
            self.machine.on_clean_ack(ev.time_ns)
        self._retrans_pending = False
        super().on_ecn_echo(ev)

    def on_rto(self, ev: CCEvent) -> None:
        super().on_rto(ev)
        self._retrans_pending = True
        if self._cwnd_at_floor:
            self.machine.on_congestion_event()

    @property
    def state(self) -> DctcpPlusState:
        return self.machine.state

    @property
    def slow_time_ns(self) -> int:
        return self.machine.slow_time_ns
