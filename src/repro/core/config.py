"""DCTCP+ configuration (paper Section V.C/V.D parameter guidance)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.units import US


@dataclass
class DctcpPlusConfig:
    """Knobs of the slow_time regulation law (Algorithm 1).

    The paper's guidance:

    - ``backoff_time_unit``: use the **baseline RTT** (~100 µs on their
      testbed; 100 µs is also quoted as the default).  Too large wastes
      bandwidth; too small fails to relieve the fan-in congestion.
    - ``divisor_factor``: 2.  Too large recovers prematurely; too small
      retards the rate recovery.
    - ``randomize``: the desynchronization mechanism.  The paper's
      "partially implemented DCTCP+" (Fig. 6) disables it and collapses
      past ~100 flows; the full protocol keeps it on.
    - ``threshold_T``: unspecified in the paper; we default to a quarter of
      the backoff unit so a congestion-free flow exits through TIME_DES in
      a couple of ACKs (see DESIGN.md §6).
    """

    backoff_time_unit_ns: int = 100 * US
    #: How the backoff unit tracks the path.  The paper says "we choose to
    #: use the baseline RTT as the backoff time unit"; in a kernel the
    #: available quantity is the connection's smoothed RTT estimate, which
    #: equals the baseline RTT on an idle path and inflates with queueing
    #: delay under fan-in congestion.  ``"srtt"`` (default) draws each
    #: increment from U(0, max(srtt, backoff_time_unit_ns)) — self-scaling:
    #: small nudges at low fan-in, ms-scale backoff when hundreds of flows
    #: inflate the RTT.  ``"fixed"`` always uses ``backoff_time_unit_ns``
    #: (the paper's recommendation: one *baseline* RTT), and is the default
    #: — srtt-scaled increments overshoot and oscillate in our calibration
    #: runs (see EXPERIMENTS.md).
    backoff_unit_mode: str = "fixed"
    divisor_factor: float = 2.0
    threshold_t_ns: int = 25 * US
    randomize: bool = True
    #: Minimum spacing between consecutive multiplicative decreases of
    #: slow_time.  Fig. 4 guards the relaxation path with a *time*
    #: threshold "to guarantee the relatively smooth regulation of the
    #: sending rate"; pacing the decay by roughly one backoff unit keeps a
    #: burst of clean ACKs (e.g. the drain after a round barrier) from
    #: collapsing slow_time in a single RTT.  0 decays on every clean ACK.
    decay_interval_ns: int = 100 * US
    #: ``"srtt"`` paces decay at one division per smoothed RTT (the classic
    #: AIMD cadence — cwnd also halves at most once per RTT); ``"fixed"``
    #: uses ``decay_interval_ns`` as-is.
    decay_interval_mode: str = "srtt"
    #: cwnd floor used by the DCTCP+ experiments (paper footnote 3 lowers
    #: it to 1 MSS for a smoother rate change).
    min_cwnd_mss: float = 1.0

    def __post_init__(self) -> None:
        if self.backoff_time_unit_ns <= 0:
            raise ValueError("backoff_time_unit must be positive")
        if self.backoff_unit_mode not in ("fixed", "srtt"):
            raise ValueError(
                f"backoff_unit_mode must be 'fixed' or 'srtt', got {self.backoff_unit_mode!r}"
            )
        if self.divisor_factor <= 1.0:
            raise ValueError(
                f"divisor_factor must exceed 1 (got {self.divisor_factor}); "
                "values <= 1 would never shrink slow_time"
            )
        if self.threshold_t_ns < 0:
            raise ValueError("threshold_T must be non-negative")
        if self.decay_interval_ns < 0:
            # A negative interval would make the rate limiter's "now - last
            # >= interval" test vacuously true — silently decaying on every
            # clean ACK instead of flagging the bad config.
            raise ValueError("decay_interval must be non-negative")
        if self.decay_interval_mode not in ("fixed", "srtt"):
            raise ValueError(
                f"decay_interval_mode must be 'fixed' or 'srtt', got {self.decay_interval_mode!r}"
            )
        if self.min_cwnd_mss <= 0:
            raise ValueError("cwnd floor must be positive")

    def with_overrides(self, **kwargs) -> "DctcpPlusConfig":
        return replace(self, **kwargs)
