"""One documented namespace for every protocol configuration surface.

The package grew two overlapping config dataclasses — the transport
knobs in :class:`repro.tcp.config.TcpConfig` and the slow_time law in
:class:`repro.core.config.DctcpPlusConfig` — plus the per-protocol
bundle :class:`repro.workloads.protocols.ProtocolSpec` that wires both
into a sender factory.  This module re-exports all of them (the classes
*are* the originals, not copies, so old import paths keep working and
``isinstance`` checks never split) and documents how they compose:

- :class:`TcpConfig` — per-sender transport tunables (MSS, cwnd bounds,
  RTO, ECN, DCTCP's ``g``).  Every sender takes one.
- :class:`DctcpPlusConfig` — the slow_time regulation law (backoff unit,
  divisor, threshold_T, randomization).  Only DCTCP+/TCP+ senders take
  one, alongside their :class:`TcpConfig`.
- :class:`ProtocolSpec` / :func:`spec_for` — a named bundle mapping a
  protocol string ("dctcp+", "tcp", ...) to a sender factory plus its
  default config pair; what scenario specs and workloads consume.

Overlap rule (``min_cwnd_mss``): both dataclasses carry a cwnd-floor
field.  The transport-level :attr:`TcpConfig.min_cwnd_mss` (default 2,
Eq. (2)'s ``W >= 2``) is what the sender enforces; DCTCP+'s
:attr:`DctcpPlusConfig.min_cwnd_mss` (default 1, paper footnote 3) is
the *protocol's choice* for that floor, and the DCTCP+/TCP+ constructors
apply it by overriding the transport config::

    config = (config or TcpConfig()).with_overrides(
        min_cwnd_mss=plus_config.min_cwnd_mss
    )

:func:`effective_tcp_config` exposes that composition for callers who
want the resolved transport config without building a sender.
"""

from __future__ import annotations

from typing import Optional

from .core.config import DctcpPlusConfig
from .tcp.cc import CongestionControl, cc_labels, cc_names, get_cc, register
from .tcp.config import TcpConfig
from .workloads.protocols import ProtocolSpec, spec_for

__all__ = [
    "TcpConfig",
    "DctcpPlusConfig",
    "ProtocolSpec",
    "spec_for",
    "CongestionControl",
    "register",
    "get_cc",
    "cc_names",
    "cc_labels",
    "effective_tcp_config",
]


def effective_tcp_config(
    tcp: Optional[TcpConfig] = None,
    plus: Optional[DctcpPlusConfig] = None,
    *,
    cc: Optional[str] = None,
    ecn_enabled: Optional[bool] = None,
) -> TcpConfig:
    """The transport config a sender of strategy ``cc`` would actually run with.

    Applies the same precedence as the sender constructors: the plus
    config's ``min_cwnd_mss`` overrides the transport floor (only for
    strategies that actually run the slow_time law, when ``cc`` is given),
    and the ECN stance comes from the strategy's registration —
    ``ecn_enabled`` (when given) still wins, for callers modelling a
    hypothetical stance.
    """
    tcp = tcp or TcpConfig()
    strategy = get_cc(cc) if cc is not None else None
    if plus is not None and (strategy is None or strategy.slow_time):
        tcp = tcp.with_overrides(min_cwnd_mss=plus.min_cwnd_mss)
    if ecn_enabled is None and strategy is not None:
        ecn_enabled = strategy.ecn
    if ecn_enabled is not None:
        tcp = tcp.with_overrides(ecn_enabled=ecn_enabled)
    return tcp
