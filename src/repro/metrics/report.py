"""Plain-text tables in the style of the paper's figures/tables.

Every experiment driver renders its result through :func:`format_table`
so ``python -m repro.experiments <id>`` output is uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but table has {len(headers)} columns")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(fraction: float) -> str:
    """0.5816 -> '58.16%'."""
    return f"{fraction * 100:.2f}%"
