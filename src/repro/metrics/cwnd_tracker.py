"""Aggregation of per-transmission (cwnd, ECE) snapshots.

The senders record a ``(cwnd in MSS, ECE pending)`` snapshot before every
data transmission (the paper's ``tcp_probe`` tracing).  This module turns
those snapshots into:

- the cwnd-size frequency distribution of Fig. 2 (``cwnd = 1`` indicating
  a timeout, per the paper's convention), and
- Table I's per-flow percentages: the ``cwnd=2, ECE=1`` "incapable" share,
  the timeout fraction, and the FLoss-TO / LAck-TO split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..tcp.timeouts import TimeoutKind
from ..telemetry.collector import Collector
from .flowstats import FlowStats


def merged_cwnd_histogram(stats: Iterable[FlowStats]) -> Dict[int, int]:
    """Combine per-flow cwnd histograms (counts per cwnd-in-MSS value)."""
    merged: Dict[int, int] = {}
    for fs in stats:
        for cwnd_mss, count in fs.cwnd_histogram().items():
            merged[cwnd_mss] = merged.get(cwnd_mss, 0) + count
    return merged


def cwnd_frequency(stats: Iterable[FlowStats]) -> Dict[int, float]:
    """Normalized cwnd-size distribution across all transmissions (Fig. 2)."""
    hist = merged_cwnd_histogram(stats)
    total = sum(hist.values())
    if total == 0:
        return {}
    return {cwnd: count / total for cwnd, count in sorted(hist.items())}


@dataclass
class StackStateShares:
    """Table I's per-row statistics for one protocol / flow count."""

    #: share of transmissions taken with cwnd == 2 MSS while the last ACK
    #: carried ECE — the state where DCTCP *cannot* slow down further.
    cwnd2_ece1_share: float
    #: timeouts per transmission (the paper's "Timeout" column).
    timeout_share: float
    #: split of those timeouts by kind (fractions of all timeouts).
    floss_share: float
    lack_share: float
    transmissions: int
    timeouts: int


def stack_state_shares(stats: Iterable[FlowStats], incapable_cwnd_mss: int = 2) -> StackStateShares:
    """Compute Table I's percentages over a set of flows.

    The paper traces "one flow randomly selected" over the whole
    experiment; aggregating over all flows gives the same expectation with
    less variance, which is what we report.
    """
    stats = list(stats)
    transmissions = sum(sum(fs.send_snapshots.values()) for fs in stats)
    incapable = sum(fs.send_snapshots.get((incapable_cwnd_mss, True), 0) for fs in stats)
    timeouts = sum(fs.timeout_count for fs in stats)
    floss = sum(fs.timeout_count_of(TimeoutKind.FLOSS) for fs in stats)
    lack = sum(fs.timeout_count_of(TimeoutKind.LACK) for fs in stats)
    return StackStateShares(
        cwnd2_ece1_share=incapable / transmissions if transmissions else 0.0,
        timeout_share=timeouts / transmissions if transmissions else 0.0,
        floss_share=floss / timeouts if timeouts else 0.0,
        lack_share=lack / timeouts if timeouts else 0.0,
        transmissions=transmissions,
        timeouts=timeouts,
    )


class CwndTracker(Collector):
    """Pure-aggregation collector over per-flow cwnd snapshot histograms.

    Unlike the periodic samplers this schedules nothing: the senders
    already record a ``(cwnd, ECE)`` snapshot per transmission, so the
    tracker just accumulates :class:`FlowStats` objects and renders the
    Fig. 2 frequency distribution (plus Table I's shares) through the
    shared :class:`~repro.telemetry.collector.Collector` surface.
    """

    def __init__(self, stats: Iterable[FlowStats] = ()):
        self.flow_stats: List[FlowStats] = list(stats)

    def add(self, stats: FlowStats) -> None:
        self.flow_stats.append(stats)

    def histogram(self) -> Dict[int, int]:
        return merged_cwnd_histogram(self.flow_stats)

    def frequency(self) -> Dict[int, float]:
        return cwnd_frequency(self.flow_stats)

    def shares(self, incapable_cwnd_mss: int = 2) -> StackStateShares:
        return stack_state_shares(self.flow_stats, incapable_cwnd_mss)

    # -- Collector surface ----------------------------------------------------
    def schema(self) -> Tuple[str, ...]:
        return ("cwnd_mss", "transmissions", "frequency")

    def rows(self) -> List[Sequence]:
        hist = self.histogram()
        total = sum(hist.values())
        return [
            [cwnd, count, count / total if total else 0.0]
            for cwnd, count in sorted(hist.items())
        ]


def timeout_fraction_by_kind(stats: Iterable[FlowStats]) -> Dict[str, int]:
    """Raw timeout counts keyed by kind name (instrumentation helper)."""
    out = {kind.name: 0 for kind in TimeoutKind}
    for fs in stats:
        for _, kind in fs.timeouts:
            out[kind.name] += 1
    return out
