"""Per-flow statistics collected by the transport endpoints.

A :class:`FlowStats` is attached to each TCP sender; the sender updates it
inline (cheap counter bumps) and experiment drivers aggregate afterwards.
This mirrors the paper's ``tcp_probe``-based tracing of in-kernel stack
variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..tcp.timeouts import TimeoutKind


@dataclass
class FlowStats:
    """Counters and timestamps for one flow (one data transfer)."""

    flow_id: int = -1
    total_bytes: int = 0
    start_time_ns: int = -1
    completion_time_ns: int = -1

    data_packets_sent: int = 0
    retransmitted_packets: int = 0
    fast_retransmits: int = 0
    timeouts: List[Tuple[int, TimeoutKind]] = field(default_factory=list)
    acks_received: int = 0
    dupacks_received: int = 0
    ece_acks_received: int = 0

    #: Snapshots taken before each data transmission: maps
    #: ``(cwnd_in_mss, ece_pending)`` -> count.  This reproduces the paper's
    #: Fig. 2 histogram and Table I's "cwnd=2, ECE=1" statistic.
    send_snapshots: Dict[Tuple[int, bool], int] = field(default_factory=dict)

    def record_send_snapshot(self, cwnd_mss: int, ece_pending: bool) -> None:
        key = (cwnd_mss, ece_pending)
        self.send_snapshots[key] = self.send_snapshots.get(key, 0) + 1

    def record_timeout(self, time_ns: int, kind: TimeoutKind) -> None:
        self.timeouts.append((time_ns, kind))

    # -- derived ---------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.completion_time_ns >= 0

    @property
    def fct_ns(self) -> Optional[int]:
        """Flow completion time, or None if the flow never finished."""
        if not self.completed or self.start_time_ns < 0:
            return None
        return self.completion_time_ns - self.start_time_ns

    @property
    def timeout_count(self) -> int:
        return len(self.timeouts)

    def timeout_count_of(self, kind: TimeoutKind) -> int:
        return sum(1 for _, k in self.timeouts if k is kind)

    def cwnd_histogram(self) -> Dict[int, int]:
        """Frequency of cwnd sizes (in MSS) observed at transmission time."""
        hist: Dict[int, int] = {}
        for (cwnd_mss, _ece), count in self.send_snapshots.items():
            hist[cwnd_mss] = hist.get(cwnd_mss, 0) + count
        return hist

    def snapshot_fraction(self, cwnd_mss: int, ece_pending: bool) -> float:
        """Fraction of transmissions seen in state ``(cwnd, ECE)``.

        Table I's "cwnd=2, ECE=1 among all transmissions".
        """
        total = sum(self.send_snapshots.values())
        if total == 0:
            return 0.0
        return self.send_snapshots.get((cwnd_mss, ece_pending), 0) / total
