"""Continuous per-flow traces — the ``tcp_probe`` analogue.

While :class:`~repro.metrics.flowstats.FlowStats` aggregates counters,
:class:`FlowTracer` records *time series*: cwnd, ssthresh, slow_time and
DCTCP+ state sampled at a fixed interval, plus discrete congestion events
(timeouts, fast retransmits, ECN reductions) at their exact timestamps.
This is what the paper's Kprobes tracing produced, and what you want when
debugging a new protocol variant ("show me this flow's cwnd over the
round").

``FlowTracer`` is a :class:`~repro.telemetry.collector.PeriodicCollector`,
so the sampling-event lifecycle (start/stop, the clear-handle-on-entry
rule that keeps a late ``stop()`` from cancelling a freelist-recycled
event) lives in the shared base, and the tracer plugs into the telemetry
exporters through ``schema()``/``rows()``.

Usage::

    tracer = FlowTracer(sim, sender, interval_ns=100_000)
    tracer.start()
    ...
    t, cwnd = tracer.series("cwnd_mss")
    tracer.stop()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sim.engine import Simulator
from ..sim.units import US
from ..tcp.sender import TcpSender
from ..telemetry.collector import PeriodicCollector

#: fields captured at every sample tick
SAMPLED_FIELDS = ("cwnd_mss", "ssthresh_mss", "flight_mss", "slow_time_us", "state")

_STATE_CODES = {"DCTCP_NORMAL": 0, "DCTCP_Time_Inc": 1, "DCTCP_Time_Des": 2}


@dataclass
class TraceEvent:
    """A discrete protocol event observed on the traced flow."""

    time_ns: int
    kind: str  # "timeout" | "fast_retransmit" | "ecn_reduction"
    detail: str = ""


class FlowTracer(PeriodicCollector):
    """Samples one sender's stack variables on a fixed clock."""

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        interval_ns: int = 100 * US,
        max_samples: int = 1_000_000,
    ):
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        super().__init__(sim, interval_ns)
        self.sender = sender
        self.max_samples = max_samples
        self.times_ns: List[int] = []
        self.samples: Dict[str, List[float]] = {f: [] for f in SAMPLED_FIELDS}
        self.events: List[TraceEvent] = []
        self._last_counts = (0, 0, 0)

    # -- sampling ----------------------------------------------------------
    def _sample(self) -> None:
        sender = self.sender
        mss = sender.config.mss
        self.times_ns.append(self.sim.now)
        self.samples["cwnd_mss"].append(sender.cwnd / mss)
        self.samples["ssthresh_mss"].append(sender.ssthresh / mss)
        self.samples["flight_mss"].append(sender.bytes_in_flight / mss)
        machine = getattr(sender, "machine", None)
        if machine is not None:
            self.samples["slow_time_us"].append(machine.slow_time_ns / 1000.0)
            self.samples["state"].append(_STATE_CODES.get(machine.state.value, -1))
        else:
            self.samples["slow_time_us"].append(0.0)
            self.samples["state"].append(0)
        self._capture_events()

    def _exhausted(self) -> bool:
        return len(self.times_ns) >= self.max_samples

    def _capture_events(self) -> None:
        """Diff the sender's counters to emit discrete events."""
        stats = self.sender.stats
        timeouts = stats.timeout_count
        frs = stats.fast_retransmits
        reductions = getattr(self.sender, "ecn_reductions", 0)
        last_to, last_fr, last_red = self._last_counts
        now = self.sim.now
        for _ in range(timeouts - last_to):
            kind = stats.timeouts[last_to][1].value if last_to < len(stats.timeouts) else ""
            self.events.append(TraceEvent(now, "timeout", kind))
            last_to += 1
        for _ in range(frs - last_fr):
            self.events.append(TraceEvent(now, "fast_retransmit"))
        for _ in range(reductions - last_red):
            self.events.append(TraceEvent(now, "ecn_reduction"))
        self._last_counts = (timeouts, frs, reductions)

    # -- views ---------------------------------------------------------------
    def series(self, field_name: str) -> Tuple[np.ndarray, np.ndarray]:
        """(time_ns, values) arrays for one sampled field."""
        if field_name not in self.samples:
            raise KeyError(f"unknown field {field_name!r}; choose from {SAMPLED_FIELDS}")
        return (
            np.asarray(self.times_ns, dtype=np.int64),
            np.asarray(self.samples[field_name], dtype=np.float64),
        )

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    # -- Collector surface ----------------------------------------------------
    def schema(self) -> Tuple[str, ...]:
        return ("time_us",) + SAMPLED_FIELDS

    def rows(self) -> List[Sequence]:
        return [
            [t / 1000.0] + [self.samples[f][i] for f in SAMPLED_FIELDS]
            for i, t in enumerate(self.times_ns)
        ]

    def to_csv(self) -> str:
        """Render the sampled series as CSV (time in us, one row per tick)."""
        lines = ["time_us," + ",".join(SAMPLED_FIELDS)]
        for i, t in enumerate(self.times_ns):
            row = [f"{t / 1000.0:.1f}"]
            for field_name in SAMPLED_FIELDS:
                row.append(f"{self.samples[field_name][i]:.3f}")
            lines.append(",".join(row))
        return "\n".join(lines)
