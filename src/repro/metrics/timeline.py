"""Continuous per-flow traces — the ``tcp_probe`` analogue.

While :class:`~repro.metrics.flowstats.FlowStats` aggregates counters,
:class:`FlowTracer` records *time series*: cwnd, ssthresh, slow_time and
DCTCP+ state sampled at a fixed interval, plus discrete congestion events
(timeouts, fast retransmits, ECN reductions) at their exact timestamps.
This is what the paper's Kprobes tracing produced, and what you want when
debugging a new protocol variant ("show me this flow's cwnd over the
round").

Usage::

    tracer = FlowTracer(sim, sender, interval_ns=100_000)
    tracer.start()
    ...
    t, cwnd = tracer.series("cwnd_mss")
    tracer.stop()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..sim.engine import Simulator
from ..sim.units import US
from ..tcp.sender import TcpSender

#: fields captured at every sample tick
SAMPLED_FIELDS = ("cwnd_mss", "ssthresh_mss", "flight_mss", "slow_time_us", "state")

_STATE_CODES = {"DCTCP_NORMAL": 0, "DCTCP_Time_Inc": 1, "DCTCP_Time_Des": 2}


@dataclass
class TraceEvent:
    """A discrete protocol event observed on the traced flow."""

    time_ns: int
    kind: str  # "timeout" | "fast_retransmit" | "ecn_reduction"
    detail: str = ""


class FlowTracer:
    """Samples one sender's stack variables on a fixed clock."""

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        interval_ns: int = 100 * US,
        max_samples: int = 1_000_000,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.sim = sim
        self.sender = sender
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self.times_ns: List[int] = []
        self.samples: Dict[str, List[float]] = {f: [] for f in SAMPLED_FIELDS}
        self.events: List[TraceEvent] = []
        self._event = None
        self.running = False
        self._last_counts = (0, 0, 0)

    # -- control -----------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._event = self.sim.schedule(0, self._tick)

    def stop(self) -> None:
        self.running = False
        self.sim.cancel(self._event)
        self._event = None

    # -- sampling ----------------------------------------------------------
    def _tick(self) -> None:
        # The event that invoked us has fired: its handle is dead, and the
        # engine will recycle the object.  Clear it *before* any early
        # return so a later stop() can never cancel whatever unrelated
        # event ends up reusing the carcass.
        self._event = None
        if not self.running:
            return
        sender = self.sender
        mss = sender.config.mss
        self.times_ns.append(self.sim.now)
        self.samples["cwnd_mss"].append(sender.cwnd / mss)
        self.samples["ssthresh_mss"].append(sender.ssthresh / mss)
        self.samples["flight_mss"].append(sender.bytes_in_flight / mss)
        machine = getattr(sender, "machine", None)
        if machine is not None:
            self.samples["slow_time_us"].append(machine.slow_time_ns / 1000.0)
            self.samples["state"].append(_STATE_CODES.get(machine.state.value, -1))
        else:
            self.samples["slow_time_us"].append(0.0)
            self.samples["state"].append(0)
        self._capture_events()
        if len(self.times_ns) < self.max_samples:
            self._event = self.sim.schedule(self.interval_ns, self._tick)
        else:
            self.running = False

    def _capture_events(self) -> None:
        """Diff the sender's counters to emit discrete events."""
        stats = self.sender.stats
        timeouts = stats.timeout_count
        frs = stats.fast_retransmits
        reductions = getattr(self.sender, "ecn_reductions", 0)
        last_to, last_fr, last_red = self._last_counts
        now = self.sim.now
        for _ in range(timeouts - last_to):
            kind = stats.timeouts[last_to][1].value if last_to < len(stats.timeouts) else ""
            self.events.append(TraceEvent(now, "timeout", kind))
            last_to += 1
        for _ in range(frs - last_fr):
            self.events.append(TraceEvent(now, "fast_retransmit"))
        for _ in range(reductions - last_red):
            self.events.append(TraceEvent(now, "ecn_reduction"))
        self._last_counts = (timeouts, frs, reductions)

    # -- views ---------------------------------------------------------------
    def series(self, field_name: str) -> Tuple[np.ndarray, np.ndarray]:
        """(time_ns, values) arrays for one sampled field."""
        if field_name not in self.samples:
            raise KeyError(f"unknown field {field_name!r}; choose from {SAMPLED_FIELDS}")
        return (
            np.asarray(self.times_ns, dtype=np.int64),
            np.asarray(self.samples[field_name], dtype=np.float64),
        )

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_csv(self) -> str:
        """Render the sampled series as CSV (time in us, one row per tick)."""
        lines = ["time_us," + ",".join(SAMPLED_FIELDS)]
        for i, t in enumerate(self.times_ns):
            row = [f"{t / 1000.0:.1f}"]
            for field_name in SAMPLED_FIELDS:
                row.append(f"{self.samples[field_name][i]:.3f}")
            lines.append(",".join(row))
        return "\n".join(lines)
