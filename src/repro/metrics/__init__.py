"""Instrumentation: per-flow stats, queue sampling, cwnd histograms, tables."""

from .cwnd_tracker import (
    CwndTracker,
    StackStateShares,
    cwnd_frequency,
    merged_cwnd_histogram,
    stack_state_shares,
    timeout_fraction_by_kind,
)
from .flowstats import FlowStats
from .queue_sampler import DEFAULT_SAMPLE_INTERVAL_NS, QueueSampler
from .report import format_percent, format_table
from .stats import Summary, cdf_at, cdf_points, mean, percentile
from .timeline import SAMPLED_FIELDS, FlowTracer, TraceEvent

__all__ = [
    "FlowStats",
    "CwndTracker",
    "QueueSampler",
    "DEFAULT_SAMPLE_INTERVAL_NS",
    "StackStateShares",
    "cwnd_frequency",
    "merged_cwnd_histogram",
    "stack_state_shares",
    "timeout_fraction_by_kind",
    "Summary",
    "cdf_at",
    "cdf_points",
    "mean",
    "percentile",
    "format_table",
    "format_percent",
    "FlowTracer",
    "TraceEvent",
    "SAMPLED_FIELDS",
]
