"""Periodic switch-queue occupancy sampling.

The paper "collect[s] the instant queue length every 100us on Switch 1"
(Fig. 9's CDFs, Fig. 14's time series).  :class:`QueueSampler` re-creates
that probe: a repeating simulator event records the bottleneck port's
backlog into a plain list, post-processed with numpy.  The repeating-event
machinery (and its clear-handle-on-entry discipline) comes from the shared
:class:`~repro.telemetry.collector.PeriodicCollector` base.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..net.port import OutputPort
from ..sim.engine import Simulator
from ..sim.units import US
from ..telemetry.collector import PeriodicCollector
from .stats import cdf_points

DEFAULT_SAMPLE_INTERVAL_NS = 100 * US


class QueueSampler(PeriodicCollector):
    """Samples one port's queue occupancy at a fixed interval."""

    def __init__(
        self,
        sim: Simulator,
        port: OutputPort,
        interval_ns: int = DEFAULT_SAMPLE_INTERVAL_NS,
    ):
        super().__init__(sim, interval_ns)
        self.port = port
        self.times_ns: List[int] = []
        self.occupancy_bytes: List[int] = []

    def _sample(self) -> None:
        self.times_ns.append(self.sim.now)
        self.occupancy_bytes.append(self.port.backlog_bytes)

    # -- views ---------------------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        return np.asarray(self.occupancy_bytes, dtype=np.float64)

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of queue occupancy (paper Fig. 9)."""
        return cdf_points(self.occupancy_bytes)

    def time_series_kb(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time in ms, queue in KB) — the axes of the paper's Fig. 14."""
        t = np.asarray(self.times_ns, dtype=np.float64) / 1e6
        q = self.samples / 1024.0
        return t, q

    def mean_occupancy_bytes(self) -> float:
        arr = self.samples
        return float(arr.mean()) if arr.size else 0.0

    def percentile_bytes(self, q: float) -> float:
        arr = self.samples
        return float(np.percentile(arr, q)) if arr.size else 0.0

    # -- Collector surface ----------------------------------------------------
    def schema(self) -> Tuple[str, ...]:
        return ("time_ns", "occupancy_bytes")

    def rows(self) -> List[Sequence]:
        return [
            [t, occ]
            for t, occ in zip(self.times_ns, self.occupancy_bytes)
        ]
