"""Periodic switch-queue occupancy sampling.

The paper "collect[s] the instant queue length every 100us on Switch 1"
(Fig. 9's CDFs, Fig. 14's time series).  :class:`QueueSampler` re-creates
that probe: a repeating simulator event records the bottleneck port's
backlog into a plain list, post-processed with numpy.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..net.port import OutputPort
from ..sim.engine import Simulator
from ..sim.units import US
from .stats import cdf_points

DEFAULT_SAMPLE_INTERVAL_NS = 100 * US


class QueueSampler:
    """Samples one port's queue occupancy at a fixed interval."""

    __slots__ = ("sim", "port", "interval_ns", "times_ns", "occupancy_bytes", "_event", "running")

    def __init__(
        self,
        sim: Simulator,
        port: OutputPort,
        interval_ns: int = DEFAULT_SAMPLE_INTERVAL_NS,
    ):
        if interval_ns <= 0:
            raise ValueError(f"sample interval must be positive, got {interval_ns}")
        self.sim = sim
        self.port = port
        self.interval_ns = interval_ns
        self.times_ns: List[int] = []
        self.occupancy_bytes: List[int] = []
        self._event = None
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._event = self.sim.schedule(0, self._tick)

    def stop(self) -> None:
        self.running = False
        self.sim.cancel(self._event)
        self._event = None

    def _tick(self) -> None:
        # Our own event just fired; drop the dead handle before any early
        # return so stop() never cancels a recycled event.
        self._event = None
        if not self.running:
            return
        self.times_ns.append(self.sim.now)
        self.occupancy_bytes.append(self.port.backlog_bytes)
        self._event = self.sim.schedule(self.interval_ns, self._tick)

    # -- views ---------------------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        return np.asarray(self.occupancy_bytes, dtype=np.float64)

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of queue occupancy (paper Fig. 9)."""
        return cdf_points(self.occupancy_bytes)

    def time_series_kb(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time in ms, queue in KB) — the axes of the paper's Fig. 14."""
        t = np.asarray(self.times_ns, dtype=np.float64) / 1e6
        q = self.samples / 1024.0
        return t, q

    def mean_occupancy_bytes(self) -> float:
        arr = self.samples
        return float(arr.mean()) if arr.size else 0.0

    def percentile_bytes(self, q: float) -> float:
        arr = self.samples
        return float(np.percentile(arr, q)) if arr.size else 0.0
