"""Small numeric helpers on top of numpy (percentiles, CDFs, summaries).

All experiment post-processing funnels through these so that every figure
uses the same definitions (e.g. the same percentile interpolation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if len(values) == 0:
        return 0.0
    return float(np.mean(np.asarray(values, dtype=np.float64)))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation); 0.0 when empty."""
    if len(values) == 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted_values, cumulative_probability)``.

    The probability at the i-th sorted value is ``(i + 1) / n``, so the
    largest sample maps to exactly 1.0 — the convention used when plotting
    the paper's Fig. 9 queue-length CDFs.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, probs


def cdf_at(values: Sequence[float], thresholds: Iterable[float]) -> List[float]:
    """P(X <= t) for each threshold t (vectorized searchsorted)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    out = []
    for t in thresholds:
        if arr.size == 0:
            out.append(0.0)
        else:
            out.append(float(np.searchsorted(arr, t, side="right")) / arr.size)
    return out


@dataclass
class Summary:
    """mean / p95 / p99 triple — the statistics the paper's Fig. 13 reports."""

    count: int
    mean: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if len(values) == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
        )
