"""``python -m repro`` — the umbrella command-line interface.

One front door over the package's tools::

    python -m repro experiments fig7           # paper experiments
    python -m repro bench --quick              # engine benchmark / CI gate
    python -m repro fuzz --seeds 20            # invariant fuzzer
    python -m repro trace --quick              # telemetry trace report

Shared flags may be given *before* the command and apply to any of them:

- ``--workers N``     parallel scenario workers (``REPRO_WORKERS``)
- ``--cache-dir P``   on-disk result cache (``REPRO_CACHE_DIR``)
- ``--validate``      attach the invariant checker (``REPRO_VALIDATE=1``)
- ``--seed N``        forwarded to commands that take a single seed
  (``trace``, ``fuzz``); experiments take ``--seeds`` after the command.

The shared flags travel as environment variables, which is exactly how
worker processes already inherit them — so ``--workers 8`` before the
command and ``--workers 8`` after it (where a command defines its own)
behave identically.  Each command declares its own subset of the shared
flags through :mod:`repro.cli`, so the wording and environment plumbing
are identical everywhere.  This umbrella is the only entry point: the
old per-module ones (``python -m repro.experiments``,
``python -m repro.bench``, ``python -m repro.validate.fuzz``) are gone.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional, Sequence

USAGE = """\
usage: python -m repro [--workers N] [--cache-dir PATH] [--validate] [--seed N]
                       {experiments,bench,fuzz,trace,sweep} [args...]

commands:
  experiments   run paper experiments (figures and tables)
  bench         engine throughput benchmark and CI gate
  fuzz          seeded scenario fuzzer under full invariant checking
  trace         run one scenario with telemetry and print the trace report
  sweep         million-point sweep service: run/status/merge/import/export

shared flags (before the command):
  --workers N       parallel scenario workers (sets REPRO_WORKERS)
  --cache-dir PATH  on-disk result cache (sets REPRO_CACHE_DIR)
  --validate        attach the invariant checker (sets REPRO_VALIDATE=1)
  --seed N          forwarded to commands taking a single seed (trace, fuzz)
  --version         print the package version and exit
  -h, --help        show this message and exit

run 'python -m repro <command> --help' for command-specific options.
"""

COMMANDS = ("experiments", "bench", "fuzz", "trace", "sweep")

#: Commands whose own CLI accepts ``--seed N`` for the umbrella flag to
#: forward to.  ``experiments`` deliberately isn't here: it takes a seed
#: *count* (``--seeds``), not a single seed.
SEED_COMMANDS = ("trace", "fuzz")


def _fail(message: str) -> int:
    print(f"python -m repro: {message}", file=sys.stderr)
    print(USAGE, file=sys.stderr, end="")
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: List[str] = list(sys.argv[1:] if argv is None else argv)

    # Hand-rolled leading-flag scan: everything before the first known
    # command name is an umbrella flag; everything after belongs verbatim
    # to the command (argparse's REMAINDER handling of interleaved options
    # is unreliable, so we never let argparse see the command tail).
    seed: Optional[str] = None
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-h", "--help"):
            print(USAGE, end="")
            return 0
        if arg == "--version":
            from . import __version__

            print(f"repro {__version__}")
            return 0
        if arg == "--validate":
            os.environ["REPRO_VALIDATE"] = "1"
            del args[i]
            continue
        if arg in ("--workers", "--cache-dir", "--seed") or arg.startswith(
            ("--workers=", "--cache-dir=", "--seed=")
        ):
            if "=" in arg:
                name, value = arg.split("=", 1)
                del args[i]
            else:
                name = arg
                if i + 1 >= len(args):
                    return _fail(f"{name} requires a value")
                value = args[i + 1]
                del args[i : i + 2]
            if name == "--workers":
                if not value.isdigit() or int(value) < 1:
                    return _fail(f"--workers must be a positive integer, got {value!r}")
                os.environ["REPRO_WORKERS"] = value
            elif name == "--cache-dir":
                os.environ["REPRO_CACHE_DIR"] = value
            else:
                seed = value
            continue
        break

    if not args:
        return _fail("missing command")
    command, tail = args[0], args[1:]
    if command not in COMMANDS:
        return _fail(f"unknown command {command!r}")

    if (
        seed is not None
        and command in SEED_COMMANDS
        and not any(t == "--seed" or t.startswith("--seed=") for t in tail)
    ):
        tail = ["--seed", seed] + tail

    if command == "experiments":
        from .experiments.runner import main as run

    elif command == "bench":
        from .bench.cli import main as run

    elif command == "fuzz":
        from .validate.fuzz import main as run

    elif command == "sweep":
        from .sweep.cli import main as run

    else:
        from .telemetry.cli import main as run

    return run(tail)


if __name__ == "__main__":
    sys.exit(main())
