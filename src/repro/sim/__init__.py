"""Discrete-event simulation engine (clock, events, RNG streams)."""

from .engine import SimulationError, Simulator
from .events import Event, EventQueue
from .rng import RngRegistry, make_rng, uniform_time
from . import units

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventQueue",
    "RngRegistry",
    "make_rng",
    "uniform_time",
    "units",
]
