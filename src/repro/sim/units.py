"""Time and data-size units for the simulator.

All simulation timestamps are **integer nanoseconds**.  Integer time keeps
event ordering exact (no float-comparison hazards in the event heap) and is
cheap to add/compare in the hot path.  Helpers here convert between human
units and nanoseconds, and between data sizes and transmission times.
"""

from __future__ import annotations

# --- time constants (nanoseconds) -------------------------------------------
NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000

#: Alias matching the paper's notation (RTTs are quoted in microseconds).
US = MICROSECOND
MS = MILLISECOND
NS = NANOSECOND
SEC = SECOND


def microseconds(value: float) -> int:
    """Convert a duration in microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert a duration in milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert a duration in seconds to integer nanoseconds."""
    return round(value * SECOND)


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECOND


def to_microseconds(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds (for reporting)."""
    return ns / MICROSECOND


def to_milliseconds(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds (for reporting)."""
    return ns / MILLISECOND


# --- data-size constants (bytes) ---------------------------------------------
BYTE: int = 1
KB: int = 1024
MB: int = 1024 * 1024

# --- rate helpers -------------------------------------------------------------
GBPS: int = 1_000_000_000
MBPS: int = 1_000_000


def transmission_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Serialization delay of ``size_bytes`` on a link of ``rate_bps``.

    Rounds up to a whole nanosecond so that back-to-back transmissions can
    never overlap on a link.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    bits = size_bytes * 8
    return -(-bits * SECOND // rate_bps)  # ceil division


def bits_per_second(bytes_transferred: int, duration_ns: int) -> float:
    """Throughput in bits/second over ``duration_ns`` (reporting helper)."""
    if duration_ns <= 0:
        return 0.0
    return bytes_transferred * 8 * SECOND / duration_ns
