/* _evcore: native event core for the repro discrete-event simulator.
 *
 * Two jobs, both bit-compatible with the pure-Python engine in
 * repro/sim/engine.py (which remains the ground truth and the fallback):
 *
 * 1. A binary heap of *light events* — one-shot, never-cancelled
 *    callbacks — keyed by native (int64 time, int64 seq) pairs, so heap
 *    maintenance costs a few integer compares instead of Python tuple
 *    comparisons.  ~94% of all events in a packet simulation are light
 *    (serialization-finish and propagation-arrival).
 *
 * 2. The fused dispatch loop: pops the global minimum across the native
 *    light heap and the Python EventQueue heap (regular, cancellable
 *    Events) and invokes callbacks until a stop condition holds.
 *
 * Ordering is *provably* identical to the pure path: both heaps draw
 * sequence numbers from one shared counter (owned here in native mode),
 * every key (time, seq) is unique, and dispatch always takes the global
 * minimum — so the dispatch order is the unique total order by
 * (time, seq), independent of heap internals.
 *
 * Field access uses __slots__ member offsets resolved once per run (with
 * a GetAttr fallback should a field ever stop being a slot), so the
 * per-event engine overhead is a few pointer reads, not dict lookups.
 *
 * The module is optional: repro/sim/_native.py compiles it on demand
 * with the host toolchain and the engine silently falls back to pure
 * Python when unavailable (REPRO_NATIVE=0 forces the fallback).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* Light-event heap: C struct entries, native int64 keys.              */

typedef struct {
    long long t;    /* absolute fire time (ns)  */
    long long s;    /* global sequence number   */
    PyObject *cb;   /* owned                    */
    PyObject *arg;  /* owned                    */
} LEntry;

typedef struct {
    PyObject_HEAD
    LEntry *heap;
    Py_ssize_t size;
    Py_ssize_t capacity;
    long long seq;  /* the simulation-wide sequence counter (shared with
                       the Python EventQueue via take_seq) */
} EventCore;

static int
core_grow(EventCore *self)
{
    Py_ssize_t cap = self->capacity ? self->capacity * 2 : 256;
    LEntry *heap = PyMem_Realloc(self->heap, cap * sizeof(LEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->capacity = cap;
    return 0;
}

/* entry a sorts before b?  Keys are unique, so no tie-break is needed
   beyond seq. */
#define LENTRY_LT(a, b) ((a).t < (b).t || ((a).t == (b).t && (a).s < (b).s))

static void
core_siftup(EventCore *self, Py_ssize_t pos)
{
    LEntry *heap = self->heap;
    LEntry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!LENTRY_LT(item, heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

static void
core_siftdown(EventCore *self, Py_ssize_t pos)
{
    LEntry *heap = self->heap;
    Py_ssize_t n = self->size;
    LEntry item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && LENTRY_LT(heap[child + 1], heap[child]))
            child += 1;
        if (!LENTRY_LT(heap[child], item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

static int
core_push_entry(EventCore *self, long long t, long long s, PyObject *cb, PyObject *arg)
{
    if (self->size == self->capacity && core_grow(self) < 0)
        return -1;
    LEntry *e = &self->heap[self->size];
    e->t = t;
    e->s = s;
    Py_INCREF(cb);
    Py_INCREF(arg);
    e->cb = cb;
    e->arg = arg;
    self->size += 1;
    core_siftup(self, self->size - 1);
    return 0;
}

/* Pop the root into *out (ownership of cb/arg transfers to caller). */
static void
core_pop_entry(EventCore *self, LEntry *out)
{
    *out = self->heap[0];
    self->size -= 1;
    if (self->size > 0) {
        self->heap[0] = self->heap[self->size];
        core_siftdown(self, 0);
    }
}

/* ------------------------------------------------------------------ */
/* Interned attribute names + shared constants (module init).          */

static PyObject *str_now, *str_stop, *str_heap, *str_free, *str_live;
static PyObject *str_cancelled, *str_deadline, *str_time, *str_seq;
static PyObject *str_dseq, *str_callback, *str_args, *str_processed;
static PyObject *long_minus_one, *empty_tuple;

/* ------------------------------------------------------------------ */
/* __slots__ member offsets, resolved once per run() call.             */

typedef struct {
    Py_ssize_t now, stop;                                  /* Simulator  */
    Py_ssize_t live;                                       /* EventQueue */
    Py_ssize_t cancelled, deadline, time, seq, dseq;       /* Event      */
    Py_ssize_t callback, args;                             /* Event      */
} Offsets;

static Py_ssize_t
slot_offset(PyTypeObject *tp, PyObject *name)
{
    PyObject *descr = PyObject_GetAttr((PyObject *)tp, name);
    Py_ssize_t off = -1;
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
        if (def->type == T_OBJECT_EX || def->type == T_OBJECT)
            off = def->offset;
    }
    Py_DECREF(descr);
    return off;
}

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Borrowed read of an object field; falls back to GetAttr when the
 * offset is unknown (then *ownedp holds a reference the caller must
 * release).  Returns NULL with an exception set on failure. */
static inline PyObject *
field_get(PyObject *obj, Py_ssize_t off, PyObject *name, PyObject **ownedp)
{
    if (off >= 0) {
        PyObject *v = SLOT(obj, off);
        *ownedp = NULL;
        if (v == NULL)
            PyErr_SetObject(PyExc_AttributeError, name);
        return v;
    }
    *ownedp = PyObject_GetAttr(obj, name);
    return *ownedp;
}

static inline int
field_set(PyObject *obj, Py_ssize_t off, PyObject *name, PyObject *v)
{
    if (off >= 0) {
        PyObject *old = SLOT(obj, off);
        Py_INCREF(v);
        SLOT(obj, off) = v;
        Py_XDECREF(old);
        return 0;
    }
    return PyObject_SetAttr(obj, name, v);
}

/* ------------------------------------------------------------------ */
/* Python-level methods                                               */

static PyObject *
EventCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EventCore *self = (EventCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->seq = 0;
    return (PyObject *)self;
}

static void
EventCore_dealloc(EventCore *self)
{
    for (Py_ssize_t i = 0; i < self->size; i++) {
        Py_DECREF(self->heap[i].cb);
        Py_DECREF(self->heap[i].arg);
    }
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
EventCore_take_seq(EventCore *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(self->seq++);
}

/* push(time, callback, arg): schedule a light event at absolute `time`. */
static PyObject *
EventCore_push(EventCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "push expects (time, callback, arg)");
        return NULL;
    }
    long long t = PyLong_AsLongLong(args[0]);
    if (t == -1 && PyErr_Occurred())
        return NULL;
    if (core_push_entry(self, t, self->seq++, args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static Py_ssize_t
EventCore_len(PyObject *op)
{
    return ((EventCore *)op)->size;
}

static PyObject *
EventCore_peek_time(EventCore *self, PyObject *Py_UNUSED(ignored))
{
    if (self->size == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].t);
}

static PyObject *
EventCore_clear(EventCore *self, PyObject *Py_UNUSED(ignored))
{
    for (Py_ssize_t i = 0; i < self->size; i++) {
        Py_DECREF(self->heap[i].cb);
        Py_DECREF(self->heap[i].arg);
    }
    self->size = 0;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Object-heap (the Python EventQueue `_heap` of (time, seq, Event)
 * tuples) — the same sift algorithm as heapq, via rich comparison.
 * Entries are tuples whose first two elements are unique ints, so
 * comparisons are C tuple comparisons and never reach the Event.      */

static int
obj_siftdown(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *item = PyList_GET_ITEM(heap, pos);
    Py_INCREF(item);
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n) {
            int lt = PyObject_RichCompareBool(
                PyList_GET_ITEM(heap, child + 1), PyList_GET_ITEM(heap, child), Py_LT);
            if (lt < 0) {
                Py_DECREF(item);
                return -1;
            }
            if (lt)
                child += 1;
        }
        PyObject *c = PyList_GET_ITEM(heap, child);
        int lt = PyObject_RichCompareBool(c, item, Py_LT);
        if (lt < 0) {
            Py_DECREF(item);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(c);
        PyList_SetItem(heap, pos, c);
        pos = child;
    }
    PyList_SetItem(heap, pos, item);
    return 0;
}

/* Remove heap[0]; returns new reference to it (or NULL on error). */
static PyObject *
obj_heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *root = PyList_GET_ITEM(heap, 0);
    Py_INCREF(root);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(root);
        Py_DECREF(last);
        return NULL;
    }
    if (n > 1) {
        PyList_SetItem(heap, 0, last);  /* steals ref */
        if (obj_siftdown(heap, 0) < 0) {
            Py_DECREF(root);
            return NULL;
        }
    } else {
        Py_DECREF(last);
    }
    return root;
}

/* Replace heap[0] with newentry (ref stolen) and restore heap order. */
static int
obj_heap_replace(PyObject *heap, PyObject *newentry)
{
    PyList_SetItem(heap, 0, newentry);  /* steals ref */
    return obj_siftdown(heap, 0);
}

/* sim.events_processed += n, preserving any pending exception (mirrors
 * the pure loop's `finally` accounting so partial progress is credited
 * even when a callback raises). */
static void
bump_processed(PyObject *sim, long long n)
{
    PyObject *type, *value, *tb;
    PyErr_Fetch(&type, &value, &tb);
    PyObject *cur = PyObject_GetAttr(sim, str_processed);
    if (cur != NULL) {
        long long total = PyLong_AsLongLong(cur);
        Py_DECREF(cur);
        if (!(total == -1 && PyErr_Occurred())) {
            PyObject *upd = PyLong_FromLongLong(total + n);
            if (upd != NULL) {
                (void)PyObject_SetAttr(sim, str_processed, upd);
                Py_DECREF(upd);
            }
        }
    }
    PyErr_Clear();
    PyErr_Restore(type, value, tb);
}

/* run(sim, queue, until, limit, stop_when, noop, freelist_max, evtype)
 *
 * The dispatch loop.  Mirrors Simulator.run()'s batched pure-Python
 * loop exactly: same head-scan semantics (skip cancelled carcasses,
 * re-file deferred reschedules), same stop-condition order after every
 * callback (_stop, then stop_when, then the event limit), same freelist
 * recycling.  The pure loop batches same-timestamp events purely to
 * amortize *interpreter* overhead; here the clock store is skipped when
 * the timestamp repeats, which is observably identical.
 *
 * Returns the number of events processed.
 */
static PyObject *
EventCore_run(EventCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 8) {
        PyErr_SetString(
            PyExc_TypeError,
            "run expects (sim, queue, until, limit, stop_when, noop, freelist_max, evtype)");
        return NULL;
    }
    PyObject *sim = args[0];
    PyObject *queue = args[1];
    PyObject *until_obj = args[2];
    long long limit = PyLong_AsLongLong(args[3]);
    PyObject *stop_when = args[4];
    PyObject *noop = args[5];
    Py_ssize_t freelist_max = PyLong_AsSsize_t(args[6]);
    if (PyErr_Occurred())
        return NULL;
    if (!PyType_Check(args[7])) {
        PyErr_SetString(PyExc_TypeError, "evtype must be the Event class");
        return NULL;
    }
    PyTypeObject *evtype = (PyTypeObject *)args[7];

    int have_until = (until_obj != Py_None);
    long long until = 0;
    if (have_until) {
        until = PyLong_AsLongLong(until_obj);
        if (until == -1 && PyErr_Occurred())
            return NULL;
    }
    if (stop_when == Py_None)
        stop_when = NULL;

    Offsets off;
    off.now = slot_offset(Py_TYPE(sim), str_now);
    off.stop = slot_offset(Py_TYPE(sim), str_stop);
    off.live = slot_offset(Py_TYPE(queue), str_live);
    off.cancelled = slot_offset(evtype, str_cancelled);
    off.deadline = slot_offset(evtype, str_deadline);
    off.time = slot_offset(evtype, str_time);
    off.seq = slot_offset(evtype, str_seq);
    off.dseq = slot_offset(evtype, str_dseq);
    off.callback = slot_offset(evtype, str_callback);
    off.args = slot_offset(evtype, str_args);

    PyObject *heap = PyObject_GetAttr(queue, str_heap);
    PyObject *free_list = PyObject_GetAttr(queue, str_free);
    if (heap == NULL || free_list == NULL) {
        Py_XDECREF(heap);
        Py_XDECREF(free_list);
        return NULL;
    }

    long long processed = 0;
    long long last_now = -1;

    while (processed < limit) {
        /* -- establish the live head of the object heap ------------- */
        long long s_time = 0, s_seq = 0;
        int have_slow = 0;
        while (PyList_GET_SIZE(heap) > 0) {
            PyObject *entry = PyList_GET_ITEM(heap, 0);
            PyObject *ev = PyTuple_GET_ITEM(entry, 2);
            PyObject *owned;
            PyObject *flag = field_get(ev, off.cancelled, str_cancelled, &owned);
            if (flag == NULL)
                goto error;
            int cancelled = (flag == Py_True);
            Py_XDECREF(owned);
            if (cancelled) {
                PyObject *dead = obj_heap_pop(heap);
                if (dead == NULL)
                    goto error;
                if (PyList_GET_SIZE(free_list) < freelist_max) {
                    if (PyList_Append(free_list, ev) < 0) {
                        Py_DECREF(dead);
                        goto error;
                    }
                }
                Py_DECREF(dead);
                continue;
            }
            PyObject *dl_obj = field_get(ev, off.deadline, str_deadline, &owned);
            if (dl_obj == NULL)
                goto error;
            long long deadline = PyLong_AsLongLong(dl_obj);
            Py_XDECREF(owned);
            if (deadline == -1 && PyErr_Occurred())
                goto error;
            long long etime = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
            if (etime == -1 && PyErr_Occurred())
                goto error;
            if (deadline > etime) {
                /* stale slot from a reschedule: re-file at the true
                 * deadline under the deferred sequence number */
                PyObject *dseq_owned;
                PyObject *dseq = field_get(ev, off.dseq, str_dseq, &dseq_owned);
                if (dseq == NULL)
                    goto error;
                if (dseq_owned == NULL)
                    Py_INCREF(dseq);  /* normalize: hold our own ref */
                PyObject *dl_new = PyLong_FromLongLong(deadline);
                if (dl_new == NULL) {
                    Py_DECREF(dseq);
                    goto error;
                }
                if (field_set(ev, off.time, str_time, dl_new) < 0 ||
                    field_set(ev, off.seq, str_seq, dseq) < 0) {
                    Py_DECREF(dl_new);
                    Py_DECREF(dseq);
                    goto error;
                }
                PyObject *refiled = PyTuple_Pack(3, dl_new, dseq, ev);
                Py_DECREF(dl_new);
                Py_DECREF(dseq);
                if (refiled == NULL)
                    goto error;
                if (obj_heap_replace(heap, refiled) < 0)
                    goto error;
                continue;
            }
            s_time = etime;
            s_seq = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
            if (s_seq == -1 && PyErr_Occurred())
                goto error;
            have_slow = 1;
            break;
        }

        /* -- pick the global minimum across both heaps --------------- */
        int take_light;
        long long ev_time;
        if (self->size > 0) {
            if (have_slow && (s_time < self->heap[0].t ||
                              (s_time == self->heap[0].t && s_seq < self->heap[0].s))) {
                take_light = 0;
                ev_time = s_time;
            } else {
                take_light = 1;
                ev_time = self->heap[0].t;
            }
        } else if (have_slow) {
            take_light = 0;
            ev_time = s_time;
        } else {
            break;  /* idle */
        }

        if (have_until && ev_time > until) {
            /* Head lies beyond the bound: advance the clock to `until`
             * and leave the event queued (pure loop does the same). */
            if (until != last_now) {
                PyObject *now = PyLong_FromLongLong(until);
                if (now == NULL || field_set(sim, off.now, str_now, now) < 0) {
                    Py_XDECREF(now);
                    goto error;
                }
                Py_DECREF(now);
            }
            break;
        }

        if (ev_time != last_now) {
            PyObject *now = PyLong_FromLongLong(ev_time);
            if (now == NULL || field_set(sim, off.now, str_now, now) < 0) {
                Py_XDECREF(now);
                goto error;
            }
            Py_DECREF(now);
            last_now = ev_time;
        }

        /* -- dispatch ------------------------------------------------ */
        if (take_light) {
            LEntry e;
            core_pop_entry(self, &e);
            PyObject *res = PyObject_CallOneArg(e.cb, e.arg);
            Py_DECREF(e.cb);
            Py_DECREF(e.arg);
            if (res == NULL)
                goto error;
            Py_DECREF(res);
        } else {
            PyObject *entry = obj_heap_pop(heap);
            if (entry == NULL)
                goto error;
            PyObject *ev = PyTuple_GET_ITEM(entry, 2);
            Py_INCREF(ev);
            Py_DECREF(entry);
            if (field_set(ev, off.deadline, str_deadline, long_minus_one) < 0) {
                Py_DECREF(ev);
                goto error;
            }
            /* queue._live -= 1 */
            PyObject *owned;
            PyObject *live = field_get(queue, off.live, str_live, &owned);
            if (live == NULL) {
                Py_DECREF(ev);
                goto error;
            }
            long long nlive = PyLong_AsLongLong(live);
            Py_XDECREF(owned);
            PyObject *nlive_obj = PyLong_FromLongLong(nlive - 1);
            if (nlive_obj == NULL ||
                field_set(queue, off.live, str_live, nlive_obj) < 0) {
                Py_XDECREF(nlive_obj);
                Py_DECREF(ev);
                goto error;
            }
            Py_DECREF(nlive_obj);
            PyObject *cb_owned, *args_owned;
            PyObject *cb = field_get(ev, off.callback, str_callback, &cb_owned);
            if (cb == NULL) {
                Py_DECREF(ev);
                goto error;
            }
            if (cb_owned == NULL)
                Py_INCREF(cb);  /* hold across the call */
            PyObject *cargs = field_get(ev, off.args, str_args, &args_owned);
            if (cargs == NULL) {
                Py_DECREF(cb);
                Py_DECREF(ev);
                goto error;
            }
            if (args_owned == NULL)
                Py_INCREF(cargs);
            PyObject *res = PyObject_Call(cb, cargs, NULL);
            Py_DECREF(cb);
            Py_DECREF(cargs);
            if (res == NULL) {
                Py_DECREF(ev);
                goto error;
            }
            Py_DECREF(res);
            if (PyList_GET_SIZE(free_list) < freelist_max) {
                if (field_set(ev, off.callback, str_callback, noop) < 0 ||
                    field_set(ev, off.args, str_args, empty_tuple) < 0 ||
                    PyList_Append(free_list, ev) < 0) {
                    Py_DECREF(ev);
                    goto error;
                }
            }
            Py_DECREF(ev);
        }
        processed += 1;

        /* -- stop conditions, in the pure loop's order --------------- */
        PyObject *stop_owned;
        PyObject *stop_flag = field_get(sim, off.stop, str_stop, &stop_owned);
        if (stop_flag == NULL)
            goto error;
        int stop = (stop_flag == Py_True);
        Py_XDECREF(stop_owned);
        if (stop)
            break;
        if (stop_when != NULL) {
            PyObject *verdict = PyObject_CallNoArgs(stop_when);
            if (verdict == NULL)
                goto error;
            int truthy = PyObject_IsTrue(verdict);
            Py_DECREF(verdict);
            if (truthy < 0)
                goto error;
            if (truthy)
                break;
        }
    }

    Py_DECREF(heap);
    Py_DECREF(free_list);
    bump_processed(sim, processed);
    return PyLong_FromLongLong(processed);

error:
    Py_DECREF(heap);
    Py_DECREF(free_list);
    bump_processed(sim, processed);
    return NULL;
}

static PyMethodDef EventCore_methods[] = {
    {"take_seq", (PyCFunction)EventCore_take_seq, METH_NOARGS,
     "Consume and return the next global sequence number."},
    {"push", (PyCFunction)(void (*)(void))EventCore_push, METH_FASTCALL,
     "push(time, callback, arg): schedule a light event at absolute time."},
    {"peek_time", (PyCFunction)EventCore_peek_time, METH_NOARGS,
     "Earliest pending light-event time, or None."},
    {"clear", (PyCFunction)EventCore_clear, METH_NOARGS,
     "Drop all pending light events."},
    {"run", (PyCFunction)(void (*)(void))EventCore_run, METH_FASTCALL,
     "Dispatch events until idle or a stop condition; returns count."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods EventCore_as_sequence = {
    .sq_length = EventCore_len,
};

static PyTypeObject EventCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_evcore.EventCore",
    .tp_basicsize = sizeof(EventCore),
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Native light-event heap + fused dispatch loop.",
    .tp_new = EventCore_new,
    .tp_dealloc = (destructor)EventCore_dealloc,
    .tp_methods = EventCore_methods,
    .tp_as_sequence = &EventCore_as_sequence,
};

static struct PyModuleDef evcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_evcore",
    .m_doc = "Native event core for repro.sim (see repro/sim/_native.py).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__evcore(void)
{
#define INTERN(var, s)                         \
    do {                                       \
        var = PyUnicode_InternFromString(s);   \
        if (var == NULL)                       \
            return NULL;                       \
    } while (0)
    INTERN(str_now, "now");
    INTERN(str_stop, "_stop");
    INTERN(str_heap, "_heap");
    INTERN(str_free, "_free");
    INTERN(str_live, "_live");
    INTERN(str_cancelled, "cancelled");
    INTERN(str_deadline, "deadline");
    INTERN(str_time, "time");
    INTERN(str_seq, "seq");
    INTERN(str_dseq, "_dseq");
    INTERN(str_callback, "callback");
    INTERN(str_args, "args");
    INTERN(str_processed, "events_processed");
#undef INTERN
    long_minus_one = PyLong_FromLong(-1);
    empty_tuple = PyTuple_New(0);
    if (long_minus_one == NULL || empty_tuple == NULL)
        return NULL;
    if (PyType_Ready(&EventCoreType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&evcore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&EventCoreType);
    if (PyModule_AddObject(m, "EventCore", (PyObject *)&EventCoreType) < 0) {
        Py_DECREF(&EventCoreType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
