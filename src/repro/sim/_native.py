"""Build/load shim for the optional ``_evcore`` C extension.

The native event core (see ``_evcore.c``) is a pure accelerator: it owns
the light-event heap and the fused dispatch loop, with event ordering
bit-for-bit identical to the pure-Python engine.  Because this repo ships
as source, the extension is compiled **on demand** with the host C
toolchain the first time a :class:`~repro.sim.engine.Simulator` wants it,
and cached under ``_build/`` keyed by a hash of the C source (so editing
``_evcore.c`` transparently rebuilds).

Everything here fails *soft*: no compiler, no headers, a build error, or
``REPRO_NATIVE=0`` in the environment all yield ``core_factory() ->
None`` and the engine silently runs the pure-Python loops.  ``status()``
reports what happened for debugging (also surfaced by
``python -m repro.bench --probe``-style tooling).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

#: Environment opt-out: set to ``0``/``false``/``off``/``no`` to force the
#: pure-Python engine (checked per call, so tests can flip it at runtime).
NATIVE_ENV = "REPRO_NATIVE"

_factory = None  # the EventCore type once loaded
_build_attempted = False
_status = "not attempted"


def _enabled() -> bool:
    return os.environ.get(NATIVE_ENV, "").strip().lower() not in ("0", "false", "off", "no")


def _build_dir() -> Path:
    """Writable cache directory for the compiled extension.

    Prefers ``_build/`` next to the source (gitignored, shared across
    processes and test runs); falls back to a per-user temp directory when
    the tree is read-only (e.g. an installed package).
    """
    local = Path(__file__).resolve().parent / "_build"
    try:
        local.mkdir(exist_ok=True)
        probe = local / ".write-probe"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        fallback = Path(tempfile.gettempdir()) / f"repro-evcore-{os.getuid()}"
        fallback.mkdir(exist_ok=True)
        return fallback


def _compile_and_load():
    source = Path(__file__).with_name("_evcore.c")
    code = source.read_bytes()
    tag = hashlib.sha256(code).hexdigest()[:16]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    out = _build_dir() / f"_evcore-{tag}{suffix}"
    if not out.exists():
        cc = os.environ.get("CC", "cc")
        include = sysconfig.get_paths()["include"]
        # Compile to a private name, then atomically publish: concurrent
        # test workers may race to build the same cache entry.
        tmp = out.with_name(out.name + f".tmp-{os.getpid()}")
        cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{include}", str(source), "-o", str(tmp)]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=180)
        if proc.returncode != 0:
            raise RuntimeError(f"cc failed: {proc.stderr.strip()[:500]}")
        os.replace(tmp, out)
    spec = importlib.util.spec_from_file_location("repro.sim._evcore", out)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.EventCore


def core_factory() -> Optional[type]:
    """The ``EventCore`` type, or ``None`` when native mode is unavailable.

    The build is attempted at most once per process; the ``REPRO_NATIVE``
    opt-out is honoured on every call.
    """
    global _factory, _build_attempted, _status
    if not _enabled():
        return None
    if not _build_attempted:
        _build_attempted = True
        try:
            _factory = _compile_and_load()
            _status = "loaded"
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            _factory = None
            _status = f"unavailable ({type(exc).__name__}: {exc})"
    return _factory


def status() -> str:
    """Human-readable outcome of the last load attempt."""
    if not _enabled():
        return f"disabled ({NATIVE_ENV})"
    return _status
