"""Seeded randomness with per-component streams.

Reproducibility rule: every stochastic component (each DCTCP+ pacer, each
workload generator) draws from its **own** named stream derived from the
experiment's master seed.  Adding a new consumer therefore never perturbs
the draws seen by existing components, so experiments stay comparable
across code revisions.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional


class RngRegistry:
    """Factory for named, independently seeded ``random.Random`` streams."""

    __slots__ = ("master_seed",)

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed

    def stream(self, name: str) -> random.Random:
        """Return a fresh ``random.Random`` for ``name``.

        The stream seed mixes the master seed with a CRC of the name, so the
        mapping is stable across processes and Python versions (unlike
        ``hash()``, which is salted).
        """
        mixed = (self.master_seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFFFFFFFFFF
        return random.Random(mixed)

    def spawn(self, salt: int) -> "RngRegistry":
        """Derive a sub-registry (e.g. one per experiment repetition)."""
        return RngRegistry((self.master_seed * 0x100000001B3 + salt) & 0xFFFFFFFFFFFFFFFF)


def uniform_time(rng: random.Random, upper_ns: int) -> int:
    """Draw an integer duration uniformly from ``(0, upper_ns]``.

    This is the paper's ``random(backoff_time_unit)``: a strictly positive
    jitter bounded by the backoff unit, used to desynchronize senders.
    """
    if upper_ns <= 0:
        raise ValueError(f"upper bound must be positive, got {upper_ns}")
    return rng.randrange(upper_ns) + 1


def make_rng(seed: Optional[int]) -> random.Random:
    """Convenience constructor used by examples and tests."""
    return random.Random(seed)
