"""Event handles and the binary-heap event queue.

The queue is the hottest data structure in the simulator, so it stays
minimal: a ``heapq`` of ``Event`` objects ordered by ``(time, seq)``.
Cancellation is *lazy* — a cancelled event stays in the heap and is skipped
when popped — which keeps ``cancel()`` O(1) and avoids heap surgery. Timer
churn in TCP (every ACK restarts the retransmission timer) makes cheap
cancellation essential.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker, so two events at the same timestamp fire in the
    order they were scheduled (deterministic FIFO within a timestamp).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
        # Drop references eagerly so cancelled timers don't pin senders,
        # packets, etc. in memory while they wait to be popped.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed when an event is cancelled."""


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def push(self, time: int, callback: Callable[..., None], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a cancellable handle."""
        ev = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, skipping cancelled ones.

        Returns ``None`` when the queue holds no live events.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev.cancelled:
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def clear(self) -> None:
        """Drop all events."""
        self._heap.clear()
        self._live = 0
