"""Event handles and the binary-heap event queue.

The queue is the hottest data structure in the simulator, so it is built
for throughput:

- Heap entries are ``(time, seq, event)`` **tuples**, so ``heapq`` orders
  them with C tuple comparison on the two integers and never calls back
  into Python (``seq`` is unique, so the ``Event`` itself is never
  compared).
- **Light entries**: one-shot, never-cancelled callbacks (the two
  scheduling sites every packet hop pays — serialization-finish and
  propagation-arrival, ~94% of all events) skip the :class:`Event`
  object entirely and sit in the same heap as bare
  ``(time, seq, callback, arg)`` 4-tuples, pushed by
  :meth:`repro.sim.engine.Simulator.schedule_light`.  They draw from the
  same ``seq`` stream, and since ``seq`` is unique the comparison never
  reaches element 2, so 3- and 4-tuples mix freely with ordering
  bit-for-bit identical to the all-``Event`` implementation.  Consumers
  discriminate with ``entry[2].__class__ is Event``.
- Cancellation is *lazy* — a cancelled event stays in the heap and is
  skipped when popped — which keeps ``cancel()`` O(1) and avoids heap
  surgery.  Skipped carcasses go to a bounded **freelist** and are
  recycled by the next ``push`` instead of becoming garbage.
- :meth:`EventQueue.reschedule` moves a pending event to a *later* time
  without touching the heap at all: it records the new deadline on the
  handle, and when the stale heap entry surfaces the event is re-filed at
  its true deadline.  Timer churn in TCP (every ACK restarts the
  retransmission timer, and the new deadline is almost always later)
  makes this the difference between O(ACKs) and O(expiries) heap traffic.

The reschedule path consumes exactly one sequence number per call — the
same as the historical ``cancel(); push()`` idiom — and the deferred
re-file reuses that number, so event ordering (including FIFO ties at
one timestamp) is bit-for-bit identical to the naive implementation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Recycled-event pool cap; enough to absorb timer churn bursts without
#: pinning memory after a large simulation drains.
FREELIST_MAX = 4096


class Event:
    """A scheduled callback.

    ``time``/``seq`` mirror the heap entry currently filing this event;
    ``deadline`` is the authoritative fire time (later than ``time`` when a
    reschedule deferred the event), and ``deadline`` < 0 means the event is
    no longer pending (already fired, or cancelled).
    """

    __slots__ = ("time", "seq", "deadline", "_dseq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.deadline = time
        self._dseq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
        self.deadline = -1
        # Drop references eagerly so cancelled timers don't pin senders,
        # packets, etc. in memory while they wait to be popped.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed when an event is cancelled."""


#: One heap entry: ``(time, seq, event)`` — or the light form
#: ``(time, seq, callback, arg)``; ``seq`` uniqueness keeps comparisons
#: from ever reaching element 2, so the two shapes mix freely.
Entry = Tuple[int, int, Any]


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy cancellation.

    ``_heap``/``_free`` are accessed directly by the fused dispatch loop in
    :meth:`repro.sim.engine.Simulator.run`; any change to the entry layout
    must be mirrored there.
    """

    __slots__ = ("_heap", "_seq", "_live", "_free", "_core")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self._seq = 0
        self._live = 0
        self._free: List[Event] = []
        # Native event core (set by the owning Simulator when the C engine
        # is active).  When attached, it owns the simulation-wide sequence
        # counter — light events filed in its C heap and regular events
        # filed here must share one totally ordered (time, seq) stream —
        # so push/reschedule draw from it instead of ``_seq``.
        self._core = None

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def push(self, time: int, callback: Callable[..., None], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a cancellable handle."""
        core = self._core
        if core is None:
            seq = self._seq
            self._seq = seq + 1
        else:
            seq = core.take_seq()
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.deadline = time
            ev._dseq = seq
            ev.callback = callback
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, callback, args)
        self._live += 1
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    def reschedule(
        self,
        event: Optional[Event],
        time: int,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> Event:
        """Move a timer to ``time``, recycling its heap entry when possible.

        Equivalent to ``cancel(event); push(time, ...)`` but with zero heap
        traffic in the common case (``event`` still pending and the new
        deadline not earlier than its current heap slot).  Always returns
        the live handle, which may or may not be ``event`` itself.
        """
        if (
            event is not None
            and not event.cancelled
            and event.deadline >= 0
            and event.time <= time
        ):
            event.deadline = time
            core = self._core
            if core is None:
                event._dseq = self._seq
                self._seq += 1
            else:
                event._dseq = core.take_seq()
            event.callback = callback
            event.args = args
            return event
        if event is not None:
            self.cancel(event)
        return self.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent; fired events no-op)."""
        if not event.cancelled and event.deadline >= 0:
            event.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, skipping cancelled ones.

        Returns ``None`` when the queue holds no live events.  A light
        entry (see module docstring) is materialized into an already-fired
        :class:`Event` so callers see one uniform type; the fused dispatch
        loops never pay this, it only serves the queue-level API.
        """
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            time, _seq, ev = entry[:3]
            if ev.__class__ is not Event:
                heapq.heappop(heap)
                self._live -= 1
                fired = Event(time, _seq, ev, (entry[3],))
                fired.deadline = -1  # fired: no longer pending
                return fired
            if ev.cancelled:
                heapq.heappop(heap)
                if len(free) < FREELIST_MAX:
                    free.append(ev)
                continue
            deadline = ev.deadline
            if deadline > time:
                # Stale slot from a reschedule: re-file at the true deadline.
                ev.time = deadline
                ev.seq = ev._dseq
                heapq.heapreplace(heap, (deadline, ev._dseq, ev))
                continue
            heapq.heappop(heap)
            ev.deadline = -1  # fired: no longer pending
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            time = entry[0]
            ev = entry[2]
            if ev.__class__ is not Event:
                return time  # light entries are always live
            if ev.cancelled:
                heapq.heappop(heap)
                if len(free) < FREELIST_MAX:
                    free.append(ev)
                continue
            deadline = ev.deadline
            if deadline > time:
                ev.time = deadline
                ev.seq = ev._dseq
                heapq.heapreplace(heap, (deadline, ev._dseq, ev))
                continue
            return time
        return None

    def clear(self) -> None:
        """Drop all events."""
        self._heap.clear()
        self._free.clear()
        self._live = 0
