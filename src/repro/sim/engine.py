"""The discrete-event simulator core.

A :class:`Simulator` owns the clock (integer nanoseconds), the event queue
and the RNG registry.  Components schedule callbacks with
:meth:`Simulator.schedule` / :meth:`Simulator.at` and the experiment driver
pumps events with :meth:`Simulator.run`.

The engine is deliberately tiny — all protocol behaviour lives in the
components — so the hot loop is a ``pop -> callback`` cycle with no
dispatch indirection.  :meth:`Simulator.run` fuses the peek/pop scan of
:class:`~repro.sim.events.EventQueue` into one loop over the raw heap with
``heapq`` bound to locals, which removes two method calls and several
attribute lookups per event.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush, heapreplace
from typing import Callable, Optional

from .events import FREELIST_MAX, Event, EventQueue, _noop
from .rng import RngRegistry

#: Environment opt-in for runtime invariant checking (see ``repro.validate``).
VALIDATE_ENV = "REPRO_VALIDATE"


def _env_validate() -> bool:
    return os.environ.get(VALIDATE_ENV, "").strip().lower() in ("1", "true", "on", "yes")


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Simulator:
    """Event loop + simulated clock.

    Parameters
    ----------
    seed:
        Master seed for the per-component RNG registry.
    validate:
        Attach a :class:`repro.validate.InvariantChecker` that components
        register with at construction and that the (separate, slower)
        validated dispatch loop sweeps while running.  ``None`` (default)
        consults the ``REPRO_VALIDATE`` environment variable; ``False``
        leaves ``checker`` as ``None`` and the hot path untouched.
    tracer:
        Attach a :class:`repro.telemetry.Tracer` recording typed event
        records from the component hook points.  The tracer schedules no
        events, so event counts and digests match untraced runs exactly.
    profiler:
        Attach a :class:`repro.telemetry.EngineProfiler`; dispatch then
        runs through a (slower) timing loop attributing wall time per
        callback kind.  Ignored while a checker is attached (the validated
        loop takes priority).

    ``checker`` and ``tracer`` both observe the simulation through one
    :class:`repro.telemetry.HookRegistry` (``self.hooks``); components
    announce themselves to it at construction.  ``hooks`` is ``None`` when
    neither observer is active, so the plain path pays exactly one
    attribute test per component construction and nothing per event.
    """

    __slots__ = (
        "now",
        "queue",
        "rng",
        "checker",
        "tracer",
        "profiler",
        "hooks",
        "_running",
        "events_processed",
        "_sequence",
        "_packet_seq",
        "_push",
        "_stop",
    )

    def __init__(
        self,
        seed: int = 0,
        validate: Optional[bool] = None,
        tracer=None,
        profiler=None,
    ):
        self.now: int = 0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self._running = False
        self.events_processed: int = 0
        self._sequence = 0
        self._packet_seq = 0
        # Bound once: scheduling happens for every packet hop, and the
        # attribute chain + bound-method allocation is measurable there.
        self._push = self.queue.push
        self._stop = False
        if validate is None:
            validate = _env_validate()
        if validate:
            # Imported lazily: the validate layer is optional and the
            # common (disabled) path must not pay for it.
            from ..validate.checker import InvariantChecker

            self.checker = InvariantChecker(self)
        else:
            self.checker = None
        self.tracer = tracer
        self.profiler = profiler
        if tracer is not None or self.checker is not None:
            # One fan-out point for every observer; lazy import keeps the
            # unobserved path free of the telemetry layer entirely.
            from ..telemetry.hooks import HookRegistry

            hooks = HookRegistry()
            if self.checker is not None:
                hooks.subscribe(self.checker)
            if tracer is not None:
                tracer.bind(self)
                hooks.subscribe(tracer)
            self.hooks = hooks
        else:
            self.hooks = None

    def next_sequence(self) -> int:
        """Per-simulation monotonically increasing id.

        Components use this (not any process-global counter) to derive RNG
        stream names, so that two simulations built identically from the
        same seed draw identical randomness regardless of what ran before
        them in the process.
        """
        self._sequence += 1
        return self._sequence

    def next_packet_id(self) -> int:
        """Per-simulation packet id (separate from :meth:`next_sequence` so
        packet churn cannot perturb RNG stream naming).

        Owning ids here — not in a process-global counter — makes packet
        ids reproducible: two identical simulations emit identical id
        streams no matter what ran before them in the process, which keeps
        any id-derived artifact stable across serial and worker-pool runs.
        """
        self._packet_seq += 1
        return self._packet_seq

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        # Mirrors EventQueue.push, inlined: this is called once per packet
        # hop and the extra call frame is measurable at that rate.  Any
        # change to the push protocol must be made in both places.
        time = self.now + delay
        queue = self.queue
        seq = queue._seq
        queue._seq = seq + 1
        free = queue._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.deadline = time
            ev._dseq = seq
            ev.callback = callback
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, callback, args)
        queue._live += 1
        heappush(queue._heap, (time, seq, ev))
        return ev

    def at(self, time: int, callback: Callable[..., None], *args) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} before current time t={self.now}")
        return self._push(time, callback, args)

    def reschedule(
        self, event: Optional[Event], delay: int, callback: Callable[..., None], *args
    ) -> Event:
        """Re-arm a timer ``delay`` ns from now without heap churn.

        Drop-in replacement for the ``cancel(); schedule()`` idiom (and
        bit-for-bit equivalent to it, including event ordering): the
        returned handle supersedes ``event``, which must not be used
        afterwards.  ``None`` is accepted and behaves like ``schedule``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.queue.reschedule(event, self.now + delay, callback, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event handle (``None`` is accepted and ignored)."""
        if event is not None:
            self.queue.cancel(event)

    def request_stop(self) -> None:
        """Stop :meth:`run` after the currently executing event completes.

        Called from inside event callbacks by workload drivers when their
        completion condition is reached; cheaper than a per-event
        ``stop_when`` predicate because the loop only tests a flag.
        """
        self._stop = True

    # -- execution -------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process events in timestamp order.

        Parameters
        ----------
        until:
            Absolute simulated time bound.  Events strictly after ``until``
            are left in the queue and the clock is advanced to ``until``.
        max_events:
            Safety valve for runaway simulations (mainly used by tests).
        stop_when:
            Predicate checked after each event; the loop stops when it
            returns True (used by experiment drivers to stop at workload
            completion without draining idle timers).

        Returns the number of events processed in this call.
        """
        if self.checker is not None:
            return self._run_validated(until, max_events, stop_when)
        if self.profiler is not None:
            return self._run_profiled(until, max_events, stop_when)
        queue = self.queue
        # The dispatch loop works on the queue's raw heap (same entry
        # layout as EventQueue.pop) so each event costs one tuple unpack
        # instead of two method calls; heapq functions and the freelist
        # are bound to locals for the same reason.
        heap = queue._heap
        free = queue._free
        free_append = free.append
        processed = 0
        self._running = True
        self._stop = False
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                ev = None
                while heap:
                    entry = heap[0]
                    ev = entry[2]
                    if ev.cancelled:
                        heappop(heap)
                        if len(free) < FREELIST_MAX:
                            free_append(ev)
                        ev = None
                        continue
                    deadline = ev.deadline
                    ev_time = entry[0]
                    if deadline > ev_time:
                        # Stale slot from a reschedule: re-file at the
                        # true deadline.
                        ev.time = deadline
                        ev.seq = ev._dseq
                        heapreplace(heap, (deadline, ev._dseq, ev))
                        ev = None
                        continue
                    break
                if ev is None:
                    break
                if until is not None and ev_time > until:
                    self.now = until
                    break
                heappop(heap)
                ev.deadline = -1  # fired: no longer pending
                queue._live -= 1
                self.now = ev_time
                ev.callback(*ev.args)
                processed += 1
                # Recycle the fired event.  Safe because handles are
                # single-use: every component that stores one clears or
                # overwrites its reference inside the callback (and
                # cancel/reschedule on a fired handle are no-ops), so
                # nothing can reach `ev` once its callback has run.
                if len(free) < FREELIST_MAX:
                    ev.callback = _noop
                    ev.args = ()
                    free_append(ev)
                if self._stop:
                    break
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until and queue.peek_time() is None:
            self.now = until
        return processed

    def _run_validated(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Dispatch loop used when an :class:`InvariantChecker` is attached.

        Semantically identical to :meth:`run` — same ordering, same stop
        conditions, same ``events_processed`` accounting — but it asserts
        monotone non-decreasing dispatch timestamps and sweeps the checker
        inline every ``checker.sweep_every`` events.  Sweeps are *not*
        scheduled events, so event counts and digests match unvalidated
        runs exactly.  Fired events are not recycled to the freelist here;
        the only difference is object identity, which no component can
        observe (handles are single-use).
        """
        queue = self.queue
        heap = queue._heap
        checker = self.checker
        sweep_every = checker.sweep_every
        since_sweep = 0
        processed = 0
        self._running = True
        self._stop = False
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                ev = None
                while heap:
                    entry = heap[0]
                    ev = entry[2]
                    if ev.cancelled:
                        heappop(heap)
                        ev = None
                        continue
                    deadline = ev.deadline
                    ev_time = entry[0]
                    if deadline > ev_time:
                        ev.time = deadline
                        ev.seq = ev._dseq
                        heapreplace(heap, (deadline, ev._dseq, ev))
                        ev = None
                        continue
                    break
                if ev is None:
                    break
                if until is not None and ev_time > until:
                    self.now = until
                    break
                checker.check_dispatch_time(ev_time)
                heappop(heap)
                ev.deadline = -1
                queue._live -= 1
                self.now = ev_time
                ev.callback(*ev.args)
                processed += 1
                since_sweep += 1
                if since_sweep >= sweep_every:
                    since_sweep = 0
                    checker.sweep()
                if self._stop:
                    break
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
            self.events_processed += processed
        checker.sweep()
        if until is not None and self.now < until and queue.peek_time() is None:
            self.now = until
        return processed

    def _run_profiled(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Dispatch loop used when an :class:`EngineProfiler` is attached.

        Semantically identical to :meth:`run` — same ordering, same stop
        conditions, same freelist recycling, same ``events_processed``
        accounting — but each callback is timed and attributed to its
        ``__qualname__`` in the profiler.  The timing itself perturbs
        nothing the simulation can observe.
        """
        from time import perf_counter

        queue = self.queue
        heap = queue._heap
        free = queue._free
        free_append = free.append
        profiler = self.profiler
        counts = profiler.counts
        times = profiler.times_s
        processed = 0
        self._running = True
        self._stop = False
        wall_started = perf_counter()
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                ev = None
                while heap:
                    entry = heap[0]
                    ev = entry[2]
                    if ev.cancelled:
                        heappop(heap)
                        if len(free) < FREELIST_MAX:
                            free_append(ev)
                        ev = None
                        continue
                    deadline = ev.deadline
                    ev_time = entry[0]
                    if deadline > ev_time:
                        ev.time = deadline
                        ev.seq = ev._dseq
                        heapreplace(heap, (deadline, ev._dseq, ev))
                        ev = None
                        continue
                    break
                if ev is None:
                    break
                if until is not None and ev_time > until:
                    self.now = until
                    break
                heappop(heap)
                ev.deadline = -1
                queue._live -= 1
                self.now = ev_time
                callback = ev.callback
                started = perf_counter()
                callback(*ev.args)
                elapsed = perf_counter() - started
                kind = getattr(callback, "__qualname__", None) or type(callback).__name__
                counts[kind] = counts.get(kind, 0) + 1
                times[kind] = times.get(kind, 0.0) + elapsed
                processed += 1
                if len(free) < FREELIST_MAX:
                    ev.callback = _noop
                    ev.args = ()
                    free_append(ev)
                if self._stop:
                    break
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
            self.events_processed += processed
            profiler.record_run(processed, perf_counter() - wall_started)
        if until is not None and self.now < until and queue.peek_time() is None:
            self.now = until
        return processed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue completely."""
        return self.run(until=None, max_events=max_events)

    # -- helpers ---------------------------------------------------------------
    def stream(self, name: str):
        """Named RNG stream (see :class:`repro.sim.rng.RngRegistry`)."""
        return self.rng.stream(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={len(self.queue)})"
