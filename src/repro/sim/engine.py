"""The discrete-event simulator core.

A :class:`Simulator` owns the clock (integer nanoseconds), the event queue
and the RNG registry.  Components schedule callbacks with
:meth:`Simulator.schedule` / :meth:`Simulator.at` and the experiment driver
pumps events with :meth:`Simulator.run`.

The engine is deliberately tiny — all protocol behaviour lives in the
components — so the hot loop is a ``pop -> callback`` cycle with no
dispatch indirection.
"""

from __future__ import annotations

from typing import Callable, Optional

from .events import Event, EventQueue
from .rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Simulator:
    """Event loop + simulated clock.

    Parameters
    ----------
    seed:
        Master seed for the per-component RNG registry.
    """

    __slots__ = ("now", "queue", "rng", "_running", "events_processed", "_sequence")

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self._running = False
        self.events_processed: int = 0
        self._sequence = 0

    def next_sequence(self) -> int:
        """Per-simulation monotonically increasing id.

        Components use this (not any process-global counter) to derive RNG
        stream names, so that two simulations built identically from the
        same seed draw identical randomness regardless of what ran before
        them in the process.
        """
        self._sequence += 1
        return self._sequence

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.queue.push(self.now + delay, callback, args)

    def at(self, time: int, callback: Callable[..., None], *args) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        return self.queue.push(time, callback, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event handle (``None`` is accepted and ignored)."""
        if event is not None:
            self.queue.cancel(event)

    # -- execution -------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process events in timestamp order.

        Parameters
        ----------
        until:
            Absolute simulated time bound.  Events strictly after ``until``
            are left in the queue and the clock is advanced to ``until``.
        max_events:
            Safety valve for runaway simulations (mainly used by tests).
        stop_when:
            Predicate checked after each event; the loop stops when it
            returns True (used by experiment drivers to stop at workload
            completion without draining idle timers).

        Returns the number of events processed in this call.
        """
        queue = self.queue
        processed = 0
        self._running = True
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                ev = queue.pop()
                if ev is None:  # pragma: no cover - peek said otherwise
                    break
                self.now = ev.time
                ev.callback(*ev.args)
                processed += 1
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and queue.peek_time() is None and self.now < until:
            self.now = until
        return processed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue completely."""
        return self.run(until=None, max_events=max_events)

    # -- helpers ---------------------------------------------------------------
    def stream(self, name: str):
        """Named RNG stream (see :class:`repro.sim.rng.RngRegistry`)."""
        return self.rng.stream(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={len(self.queue)})"
