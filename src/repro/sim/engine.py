"""The discrete-event simulator core.

A :class:`Simulator` owns the clock (integer nanoseconds), the event queue
and the RNG registry.  Components schedule callbacks with
:meth:`Simulator.schedule` / :meth:`Simulator.at` and the experiment driver
pumps events with :meth:`Simulator.run`.

The engine is deliberately tiny — all protocol behaviour lives in the
components — so the hot loop is a ``pop -> callback`` cycle with no
dispatch indirection.  :meth:`Simulator.run` fuses the peek/pop scan of
:class:`~repro.sim.events.EventQueue` into one loop over the raw heap with
``heapq`` bound to locals, and **batches same-timestamp dispatch**: once
the head event's time is established, every consecutive event at that
time is drained in one inner loop, so the clock store, the ``until``
bound and the head-of-heap rescan are paid once per distinct timestamp
instead of once per event (packet-level simulations tie heavily — fan-in
arrivals, ACK bursts, zero-delay control packets).

The simulator also owns the struct-of-arrays stores the components share:
``sim.pool`` (the :class:`~repro.net.pool.PacketPool` packet flyweights)
and ``sim.flows`` (the :class:`~repro.tcp.flowstate.FlowLedger` per-flow
counter columns).  Both are created lazily by their layer — the engine
never imports net or tcp.

Automatic garbage collection is paused while :meth:`run` pumps events
(and restored on exit, exception-safe).  The hot path allocates almost
nothing cyclic — events and packets are recycled through freelists, and
acyclic temporaries die by refcount — so the collector's periodic
traversals were pure overhead (~10% of runtime at the default thresholds).
"""

from __future__ import annotations

import gc
import os
from heapq import heappop, heappush, heapreplace
from sys import maxsize
from typing import Callable, Optional

from ._native import core_factory
from .events import FREELIST_MAX, Event, EventQueue, _noop
from .rng import RngRegistry

#: Environment opt-in for runtime invariant checking (see ``repro.validate``).
VALIDATE_ENV = "REPRO_VALIDATE"


def _env_validate() -> bool:
    return os.environ.get(VALIDATE_ENV, "").strip().lower() in ("1", "true", "on", "yes")


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Simulator:
    """Event loop + simulated clock.

    Parameters
    ----------
    seed:
        Master seed for the per-component RNG registry.
    validate:
        Attach a :class:`repro.validate.InvariantChecker` that components
        register with at construction and that the (separate, slower)
        validated dispatch loop sweeps while running.  ``None`` (default)
        consults the ``REPRO_VALIDATE`` environment variable; ``False``
        leaves ``checker`` as ``None`` and the hot path untouched.
    tracer:
        Attach a :class:`repro.telemetry.Tracer` recording typed event
        records from the component hook points.  The tracer schedules no
        events, so event counts and digests match untraced runs exactly.
    profiler:
        Attach a :class:`repro.telemetry.EngineProfiler`; dispatch then
        runs through a (slower) timing loop attributing wall time per
        callback kind.  Ignored while a checker is attached (the validated
        loop takes priority).

    ``checker`` and ``tracer`` both observe the simulation through one
    :class:`repro.telemetry.HookRegistry` (``self.hooks``); components
    announce themselves to it at construction.  ``hooks`` is ``None`` when
    neither observer is active, so the plain path pays exactly one
    attribute test per component construction and nothing per event.
    """

    __slots__ = (
        "now",
        "queue",
        "rng",
        "checker",
        "tracer",
        "profiler",
        "hooks",
        "pool",
        "flows",
        "_running",
        "events_processed",
        "_sequence",
        "_packet_seq",
        "_core",
        "push_light",
        "_stop",
        "control_active",
    )

    def __init__(
        self,
        seed: int = 0,
        validate: Optional[bool] = None,
        tracer=None,
        profiler=None,
        native: Optional[bool] = None,
    ):
        self.now: int = 0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self._running = False
        self.events_processed: int = 0
        self._sequence = 0
        self._packet_seq = 0
        # Struct-of-arrays stores, attached lazily by their owning layers
        # (PacketPool.of / FlowLedger.of) so the engine stays import-free.
        self.pool = None
        self.flows = None
        self._stop = False
        # Set by repro.control.ControlEnv while step boundaries are armed;
        # pins dispatch to the pure Python loops (see run()).
        self.control_active = False
        if validate is None:
            validate = _env_validate()
        if validate:
            # Imported lazily: the validate layer is optional and the
            # common (disabled) path must not pay for it.
            from ..validate.checker import InvariantChecker

            self.checker = InvariantChecker(self)
        else:
            self.checker = None
        self.tracer = tracer
        self.profiler = profiler
        if tracer is not None or self.checker is not None:
            # One fan-out point for every observer; lazy import keeps the
            # unobserved path free of the telemetry layer entirely.
            from ..telemetry.hooks import HookRegistry

            hooks = HookRegistry()
            if self.checker is not None:
                hooks.subscribe(self.checker)
            if tracer is not None:
                tracer.bind(self)
                hooks.subscribe(tracer)
            self.hooks = hooks
        else:
            self.hooks = None
        # Native event core (see repro/sim/_evcore.c): owns the light-event
        # heap, the global sequence counter, and the dispatch loop.  The
        # mode is fixed here, once — the validated and profiled loops are
        # the ground truth the native loop is measured against, so a
        # checker or profiler always pins the simulator to pure Python.
        core = None
        if native is None:
            native = self.checker is None and profiler is None
        elif native and (self.checker is not None or profiler is not None):
            raise SimulationError("native dispatch cannot be combined with validate/profiler")
        if native:
            factory = core_factory()
            if factory is not None:
                core = factory()
        self._core = core
        self.queue._core = core
        # `push_light(abs_time, callback, arg)` is the unchecked light-event
        # scheduling primitive, bound once so per-hop call sites pay a
        # single call (a C call in native mode).
        self.push_light = core.push if core is not None else self._push_light_py

    @property
    def native(self) -> bool:
        """True when this simulator dispatches through the C event core."""
        return self._core is not None

    def next_sequence(self) -> int:
        """Per-simulation monotonically increasing id.

        Components use this (not any process-global counter) to derive RNG
        stream names, so that two simulations built identically from the
        same seed draw identical randomness regardless of what ran before
        them in the process.
        """
        self._sequence += 1
        return self._sequence

    def next_packet_id(self) -> int:
        """Per-simulation packet id (separate from :meth:`next_sequence` so
        packet churn cannot perturb RNG stream naming).

        Owning ids here — not in a process-global counter — makes packet
        ids reproducible: two identical simulations emit identical id
        streams no matter what ran before them in the process, which keeps
        any id-derived artifact stable across serial and worker-pool runs.
        """
        self._packet_seq += 1
        return self._packet_seq

    # -- scheduling -----------------------------------------------------------
    def _push_event(self, time: int, callback: Callable[..., None], args: tuple) -> Event:
        # Mirrors EventQueue.push, inlined: this runs for every regular
        # event and the queue-level call frame is measurable at that rate.
        # Any change to the push protocol must be made in both places.
        queue = self.queue
        core = self._core
        if core is None:
            seq = queue._seq
            queue._seq = seq + 1
        else:
            # The native core owns the simulation-wide sequence counter so
            # light events (filed in its C heap) and regular events (filed
            # here) share one totally ordered (time, seq) stream.
            seq = core.take_seq()
        free = queue._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.deadline = time
            ev._dseq = seq
            ev.callback = callback
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, callback, args)
        queue._live += 1
        heappush(queue._heap, (time, seq, ev))
        return ev

    def schedule(self, delay: int, callback: Callable[..., None], *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self._push_event(self.now + delay, callback, args)

    def _push_light_py(self, time: int, callback: Callable[[int], None], arg: int) -> None:
        # Pure-Python implementation behind `push_light` (native mode binds
        # the core's C push instead): a bare (time, seq, callback, arg)
        # tuple on the regular heap.
        queue = self.queue
        seq = queue._seq
        queue._seq = seq + 1
        queue._live += 1
        heappush(queue._heap, (time, seq, callback, arg))

    def schedule_light(self, delay: int, callback: Callable[[int], None], arg: int) -> None:
        """Schedule a one-shot ``callback(arg)`` after ``delay`` ns — no handle.

        The fast path for the two scheduling sites every packet hop pays
        (serialization-finish and propagation-arrival, ~94% of all events):
        no :class:`Event` is allocated — the entry is a bare
        ``(time, seq, callback, arg)`` record (a tuple on the regular heap,
        or a C struct in the native core's heap) consuming the same sequence
        stream as :meth:`schedule`, so event ordering (including FIFO ties
        at one timestamp) is bit-for-bit identical to the heavyweight path.
        Light events cannot be cancelled or rescheduled — callers that need
        a handle use :meth:`schedule`.  Per-hop call sites bind
        ``sim.push_light`` (same primitive, absolute time, no validation)
        to skip this method's frame.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        self.push_light(self.now + delay, callback, arg)

    def at(self, time: int, callback: Callable[..., None], *args) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} before current time t={self.now}")
        return self._push_event(time, callback, args)

    def reschedule(
        self, event: Optional[Event], delay: int, callback: Callable[..., None], *args
    ) -> Event:
        """Re-arm a timer ``delay`` ns from now without heap churn.

        Drop-in replacement for the ``cancel(); schedule()`` idiom (and
        bit-for-bit equivalent to it, including event ordering): the
        returned handle supersedes ``event``, which must not be used
        afterwards.  ``None`` is accepted and behaves like ``schedule``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.queue.reschedule(event, self.now + delay, callback, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event handle (``None`` is accepted and ignored)."""
        if event is not None:
            self.queue.cancel(event)

    def request_stop(self) -> None:
        """Stop :meth:`run` after the currently executing event completes.

        Called from inside event callbacks by workload drivers when their
        completion condition is reached; cheaper than a per-event
        ``stop_when`` predicate because the loop only tests a flag.
        """
        self._stop = True

    # -- execution -------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process events in timestamp order.

        Parameters
        ----------
        until:
            Absolute simulated time bound.  Events strictly after ``until``
            are left in the queue and the clock is advanced to ``until``.
        max_events:
            Safety valve for runaway simulations (mainly used by tests).
        stop_when:
            Predicate checked after each event; the loop stops when it
            returns True (used by experiment drivers to stop at workload
            completion without draining idle timers).

        Returns the number of events processed in this call.
        """
        if self.checker is not None:
            return self._run_validated(until, max_events, stop_when)
        if self.profiler is not None:
            return self._run_profiled(until, max_events, stop_when)
        if self._core is not None:
            if self.control_active:
                # Mirror of the native/validate exclusion above: a control
                # env relies on request_stop() step boundaries, and light
                # events already live in the C core's heap, so silently
                # falling back to the pure loop would drop them.  The env
                # must build its Simulator with native=False.
                raise SimulationError(
                    "native dispatch cannot be combined with an attached "
                    "ControlEnv; build the Simulator with native=False"
                )
            return self._run_native(until, max_events, stop_when)
        queue = self.queue
        # The dispatch loop works on the queue's raw heap (same entry
        # layout as EventQueue.pop) so each event costs one tuple unpack
        # instead of two method calls; heapq functions and the freelist
        # are bound to locals for the same reason.
        heap = queue._heap
        free = queue._free
        free_append = free.append
        limit = maxsize if max_events is None else max_events
        processed = 0
        self._running = True
        self._stop = False
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            running = True
            while running and processed < limit:
                # Establish the next live head event (skipping cancelled
                # carcasses, re-filing deferred reschedules).  Light
                # entries — bare (time, seq, callback, arg) tuples, see
                # Simulator.schedule_light — are always live, so they
                # skip every check.
                ev = None
                while heap:
                    entry = heap[0]
                    ev = entry[2]
                    ev_time = entry[0]
                    if ev.__class__ is Event:
                        if ev.cancelled:
                            heappop(heap)
                            if len(free) < FREELIST_MAX:
                                free_append(ev)
                            ev = None
                            continue
                        deadline = ev.deadline
                        if deadline > ev_time:
                            # Stale slot from a reschedule: re-file at the
                            # true deadline.
                            ev.time = deadline
                            ev.seq = ev._dseq
                            heapreplace(heap, (deadline, ev._dseq, ev))
                            ev = None
                            continue
                    break
                if ev is None:
                    break
                if until is not None and ev_time > until:
                    self.now = until
                    break
                self.now = ev_time
                # Same-timestamp batch: every consecutive live event at
                # ev_time dispatches here without re-checking `until` or
                # re-storing the clock.  Events scheduled *during* the
                # batch with zero delay land at ev_time with higher seq
                # and are picked up by the same loop, preserving exact
                # (time, seq) order.
                while True:
                    heappop(heap)
                    queue._live -= 1
                    if ev.__class__ is Event:
                        ev.deadline = -1  # fired: no longer pending
                        ev.callback(*ev.args)
                        # Recycle the fired event.  Safe because handles
                        # are single-use: every component that stores one
                        # clears or overwrites its reference inside the
                        # callback (and cancel/reschedule on a fired
                        # handle are no-ops), so nothing can reach `ev`
                        # once its callback has run.
                        if len(free) < FREELIST_MAX:
                            ev.callback = _noop
                            ev.args = ()
                            free_append(ev)
                    else:
                        ev(entry[3])
                    processed += 1
                    if (
                        self._stop
                        or (stop_when is not None and stop_when())
                        or processed >= limit
                    ):
                        running = False
                        break
                    if not heap:
                        break
                    entry = heap[0]
                    if entry[0] != ev_time:
                        break
                    ev = entry[2]
                    if ev.__class__ is Event and (ev.cancelled or ev.deadline > ev_time):
                        # Rare in-batch carcass/deferral: fall back to the
                        # outer scan, which re-enters the batch if more
                        # live events remain at this timestamp.
                        break
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until and queue.peek_time() is None:
            self.now = until
        return processed

    def _run_native(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Dispatch through the C event core (see ``_evcore.c``).

        Semantically identical to :meth:`run` — same (time, seq) dispatch
        order, same stop-condition order, same freelist recycling, same
        ``events_processed`` accounting (the core credits partial progress
        even when a callback raises, matching the pure loop's ``finally``).
        """
        core = self._core
        queue = self.queue
        limit = maxsize if max_events is None else max_events
        self._running = True
        self._stop = False
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            processed = core.run(
                self, queue, until, limit, stop_when, _noop, FREELIST_MAX, Event
            )
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
        if (
            until is not None
            and self.now < until
            and len(core) == 0
            and queue.peek_time() is None
        ):
            self.now = until
        return processed

    def _run_validated(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Dispatch loop used when an :class:`InvariantChecker` is attached.

        Semantically identical to :meth:`run` — same ordering, same stop
        conditions, same ``events_processed`` accounting — but it asserts
        monotone non-decreasing dispatch timestamps and sweeps the checker
        inline every ``checker.sweep_every`` events.  Sweeps are *not*
        scheduled events, so event counts and digests match unvalidated
        runs exactly.  Fired events are not recycled to the freelist here;
        the only difference is object identity, which no component can
        observe (handles are single-use).  Dispatch stays strictly
        per-event (no batching) so ``check_dispatch_time`` sees every
        event — the checker is the ground truth the batched loop is
        measured against.
        """
        queue = self.queue
        heap = queue._heap
        checker = self.checker
        sweep_every = checker.sweep_every
        since_sweep = 0
        processed = 0
        self._running = True
        self._stop = False
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                ev = None
                while heap:
                    entry = heap[0]
                    ev = entry[2]
                    ev_time = entry[0]
                    if ev.__class__ is Event:
                        if ev.cancelled:
                            heappop(heap)
                            ev = None
                            continue
                        deadline = ev.deadline
                        if deadline > ev_time:
                            ev.time = deadline
                            ev.seq = ev._dseq
                            heapreplace(heap, (deadline, ev._dseq, ev))
                            ev = None
                            continue
                    break
                if ev is None:
                    break
                if until is not None and ev_time > until:
                    self.now = until
                    break
                checker.check_dispatch_time(ev_time)
                heappop(heap)
                queue._live -= 1
                self.now = ev_time
                if ev.__class__ is Event:
                    ev.deadline = -1
                    ev.callback(*ev.args)
                else:
                    ev(entry[3])
                processed += 1
                since_sweep += 1
                if since_sweep >= sweep_every:
                    since_sweep = 0
                    checker.sweep()
                if self._stop:
                    break
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
            self.events_processed += processed
        checker.sweep()
        if until is not None and self.now < until and queue.peek_time() is None:
            self.now = until
        return processed

    def _run_profiled(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Dispatch loop used when an :class:`EngineProfiler` is attached.

        Semantically identical to :meth:`run` — same ordering, same batched
        same-timestamp dispatch, same stop conditions, same freelist
        recycling, same ``events_processed`` accounting — but each callback
        is timed and attributed to its ``__qualname__``, and each
        same-timestamp batch's size is attributed to every kind dispatched
        inside it (so the profiler can report per-event-type batch sizes).
        The timing itself perturbs nothing the simulation can observe.
        """
        from time import perf_counter

        queue = self.queue
        heap = queue._heap
        free = queue._free
        free_append = free.append
        profiler = self.profiler
        counts = profiler.counts
        times = profiler.times_s
        batch_kinds: list = []
        limit = maxsize if max_events is None else max_events
        processed = 0
        self._running = True
        self._stop = False
        wall_started = perf_counter()
        try:
            running = True
            while running and processed < limit:
                ev = None
                while heap:
                    entry = heap[0]
                    ev = entry[2]
                    ev_time = entry[0]
                    if ev.__class__ is Event:
                        if ev.cancelled:
                            heappop(heap)
                            if len(free) < FREELIST_MAX:
                                free_append(ev)
                            ev = None
                            continue
                        deadline = ev.deadline
                        if deadline > ev_time:
                            ev.time = deadline
                            ev.seq = ev._dseq
                            heapreplace(heap, (deadline, ev._dseq, ev))
                            ev = None
                            continue
                    break
                if ev is None:
                    break
                if until is not None and ev_time > until:
                    self.now = until
                    break
                self.now = ev_time
                del batch_kinds[:]
                while True:
                    heappop(heap)
                    queue._live -= 1
                    if ev.__class__ is Event:
                        ev.deadline = -1
                        callback = ev.callback
                        started = perf_counter()
                        callback(*ev.args)
                        elapsed = perf_counter() - started
                        if len(free) < FREELIST_MAX:
                            ev.callback = _noop
                            ev.args = ()
                            free_append(ev)
                    else:
                        callback = ev
                        started = perf_counter()
                        callback(entry[3])
                        elapsed = perf_counter() - started
                    kind = getattr(callback, "__qualname__", None) or type(callback).__name__
                    counts[kind] = counts.get(kind, 0) + 1
                    times[kind] = times.get(kind, 0.0) + elapsed
                    batch_kinds.append(kind)
                    processed += 1
                    if (
                        self._stop
                        or (stop_when is not None and stop_when())
                        or processed >= limit
                    ):
                        running = False
                        break
                    if not heap:
                        break
                    entry = heap[0]
                    if entry[0] != ev_time:
                        break
                    ev = entry[2]
                    if ev.__class__ is Event and (ev.cancelled or ev.deadline > ev_time):
                        break
                profiler.record_batch(batch_kinds)
        finally:
            self._running = False
            self.events_processed += processed
            profiler.record_run(processed, perf_counter() - wall_started)
        if until is not None and self.now < until and queue.peek_time() is None:
            self.now = until
        return processed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue completely."""
        return self.run(until=None, max_events=max_events)

    # -- helpers ---------------------------------------------------------------
    def stream(self, name: str):
        """Named RNG stream (see :class:`repro.sim.rng.RngRegistry`)."""
        return self.rng.stream(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pending = len(self.queue) + (len(self._core) if self._core is not None else 0)
        return f"Simulator(now={self.now}, pending={pending})"
