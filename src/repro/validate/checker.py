"""The invariant checker: conservation laws swept while a simulation runs.

The checker is a subscriber of the shared
:class:`repro.telemetry.hooks.HookRegistry`: components announce
themselves to ``sim.hooks`` at construction (``sim.hooks is not None`` —
the *only* cost paid on the normal, unobserved path) and the registry
fans the lifecycle and per-queue drop/mark events out to the checker, the
tracer, or both — no parallel callback chains.  The engine's validated
dispatch loop then calls :meth:`InvariantChecker.check_dispatch_time` per
event and :meth:`InvariantChecker.sweep` every ``sweep_every`` events;
sweeps are plain in-loop calls, never scheduled events, so validated runs
process the exact same event sequence as unvalidated ones and produce
identical results.

Checked invariants
------------------
Per queue (every switch port and host NIC):

- packet conservation: ``enqueued == dequeued + resident``
- byte conservation: ``enqueued_bytes == dequeued_bytes + occupancy``
- occupancy within ``[0, capacity]``
- drops and ECN marks counted exactly once (cross-checked against an
  independent count taken from the hook registry's ``queue_dropped`` /
  ``queue_marked`` events)
- marks only issued when the instantaneous occupancy exceeds K
- every resident packet handle is live in the packet pool

Packet pool (``sim.pool``): handle conservation —
``allocated_total - freed_total`` equals the number of live flags set,
the freelist holds exactly the dead handles (no leaks, no double-frees
that slipped past the pool's own guard), and every freelist entry is
dead.

Per port: the egress pump holds at most one in-flight frame
(``dequeued == tx + (1 if serializing else 0)``).

Per shared-buffer switch: the incrementally maintained pool occupancy
equals the sum of per-port occupancies and stays within the pool.

Per flow (sender/receiver pair): sequence-number sanity
(``0 <= snd_una <= snd_nxt <= total``), ``bytes_in_flight`` equals the
unacked range, and byte conservation across the network —
``snd_una <= rcv_nxt <= high-water mark of bytes ever sent``.

Per DCTCP+/Reno+ state machine: the ``NORMAL -> DCTCP_Time_Inc``
transition only happens with cwnd at its floor (paper Fig. 4's entry
condition).

Engine: dispatch timestamps are monotone non-decreasing.

Any violation raises :class:`InvariantViolation` immediately (fail-fast:
the first broken account is the one closest to the bug).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.state_machine import SlowTimeStateMachine
    from ..net.port import OutputPort
    from ..net.queues import DropTailQueue
    from ..net.shared_buffer import SharedBufferSwitch
    from ..sim.engine import Simulator
    from ..tcp.receiver import TcpReceiver
    from ..tcp.sender import TcpSender

#: Sweep cadence (events between full conservation sweeps).  Low enough to
#: localize a violation to a small event window, high enough that sweeping
#: stays a small fraction of validated run time.
DEFAULT_SWEEP_EVERY = 256


class InvariantViolation(AssertionError):
    """A conservation law or state-machine invariant does not hold."""


class _QueueRecord:
    """One monitored queue plus independent drop/mark counts.

    The independent counts come from the hook registry's ``queue_dropped``
    / ``queue_marked`` events (the registry chains over the queue's
    callback slots, so user instrumentation still fires) and are compared
    against the queue's counters at every sweep — a mutation that
    double-counts or skips a drop shows up as a mismatch.
    """

    __slots__ = ("queue", "name", "drops_seen", "marks_seen")

    def __init__(self, queue: "DropTailQueue", name: str):
        self.queue = queue
        self.name = name
        self.drops_seen = 0
        self.marks_seen = 0


class InvariantChecker:
    """Registry + sweep engine for runtime invariants (see module docs)."""

    __slots__ = (
        "sim",
        "sweep_every",
        "sweeps",
        "_queues",
        "_ports",
        "_switches",
        "_senders",
        "_receivers",
        "_record_by_queue",
        "_last_dispatch_ns",
    )

    def __init__(self, sim: "Simulator", sweep_every: int = DEFAULT_SWEEP_EVERY):
        self.sim = sim
        self.sweep_every = sweep_every
        self.sweeps = 0
        self._queues: List[_QueueRecord] = []
        self._ports: List["OutputPort"] = []
        self._switches: List["SharedBufferSwitch"] = []
        self._senders: List["TcpSender"] = []
        self._receivers: Dict[int, "TcpReceiver"] = {}
        self._record_by_queue: Dict["DropTailQueue", _QueueRecord] = {}
        self._last_dispatch_ns = 0

    # -- registration (dispatched by the shared HookRegistry) -------------------
    def register_port(self, port: "OutputPort") -> None:
        self._ports.append(port)
        record = _QueueRecord(port.queue, port.name or f"port#{len(self._ports)}")
        self._queues.append(record)
        self._record_by_queue[port.queue] = record

    def register_switch(self, switch: "SharedBufferSwitch") -> None:
        """Shared-buffer switches: pool accounting is cross-checked too.

        The switch's ports register themselves (each creates an
        :class:`~repro.net.port.OutputPort`), so only the pool-level view
        is recorded here.
        """
        self._switches.append(switch)

    def register_sender(self, sender: "TcpSender") -> None:
        self._senders.append(sender)

    def register_receiver(self, receiver: "TcpReceiver") -> None:
        self._receivers[receiver.flow_id] = receiver

    def attach_machine(self, machine: "SlowTimeStateMachine", sender: "TcpSender") -> None:
        """Hook the slow_time machine's NORMAL -> TIME_INC transition."""

        def _on_enter_time_inc(m: "SlowTimeStateMachine") -> None:
            if not sender._cwnd_at_floor:
                self._fail(
                    f"flow {sender.flow_id}: state machine entered DCTCP_Time_Inc "
                    f"with cwnd {sender.cwnd:.0f}B above the floor "
                    f"{sender.config.min_cwnd_bytes:.0f}B"
                )

        machine.observer = _on_enter_time_inc

    # -- queue events (dispatched by the shared HookRegistry) -------------------
    def queue_dropped(self, queue: "DropTailQueue", name: str, h: int) -> None:
        self._record_by_queue[queue].drops_seen += 1

    def queue_marked(self, queue: "DropTailQueue", name: str, h: int) -> None:
        record = self._record_by_queue[queue]
        record.marks_seen += 1
        threshold = queue.ecn_threshold_bytes
        # Marking fires before admission, so occupancy_bytes is the
        # instantaneous queue length the marking decision saw.
        if threshold is None or queue.occupancy_bytes <= threshold:
            self._fail(
                f"queue {record.name}: CE mark at occupancy "
                f"{queue.occupancy_bytes}B, not above K="
                f"{threshold if threshold is not None else 'disabled'}"
            )

    # -- engine hooks ------------------------------------------------------------
    def check_dispatch_time(self, time_ns: int) -> None:
        """Called by the validated dispatch loop before each event fires."""
        if time_ns < self._last_dispatch_ns:
            self._fail(
                f"event dispatch time went backwards: {time_ns} < {self._last_dispatch_ns}"
            )
        self._last_dispatch_ns = time_ns

    def sweep(self) -> None:
        """Assert every registered conservation law at the current instant.

        Runs between events (never inside one), where every component is in
        a quiescent, self-consistent state.
        """
        self.sweeps += 1
        for record in self._queues:
            self._check_queue(record)
        for port in self._ports:
            self._check_port(port)
        for switch in self._switches:
            self._check_pool(switch)
        for sender in self._senders:
            self._check_flow(sender)
        self._check_packet_pool()

    def verify_all(self) -> Dict[str, int]:
        """Final sweep; returns a summary of what was watched.

        Called by :func:`repro.exec.scenario.run_scenario` after the
        workload completes, so validated runs always end on a full check
        even if the last event landed mid-cadence.
        """
        self.sweep()
        return {
            "queues": len(self._queues),
            "ports": len(self._ports),
            "switches": len(self._switches),
            "senders": len(self._senders),
            "receivers": len(self._receivers),
            "sweeps": self.sweeps,
        }

    # -- individual laws ---------------------------------------------------------
    def _check_queue(self, record: _QueueRecord) -> None:
        q = record.queue
        resident = len(q)
        if q.enqueued_packets != q.dequeued_packets + resident:
            self._fail(
                f"queue {record.name}: packet conservation broken — "
                f"enqueued={q.enqueued_packets} != dequeued={q.dequeued_packets} "
                f"+ resident={resident}"
            )
        if q.enqueued_bytes != q.dequeued_bytes + q.occupancy_bytes:
            self._fail(
                f"queue {record.name}: byte conservation broken — "
                f"enqueued={q.enqueued_bytes} != dequeued={q.dequeued_bytes} "
                f"+ occupancy={q.occupancy_bytes}"
            )
        if not 0 <= q.occupancy_bytes <= q.capacity_bytes:
            self._fail(
                f"queue {record.name}: occupancy {q.occupancy_bytes}B outside "
                f"[0, {q.capacity_bytes}]"
            )
        if q.dropped_packets != record.drops_seen:
            self._fail(
                f"queue {record.name}: drop counter mismatch — counter says "
                f"{q.dropped_packets}, on_drop fired {record.drops_seen} times"
            )
        if q.marked_packets != record.marks_seen:
            self._fail(
                f"queue {record.name}: mark counter mismatch — counter says "
                f"{q.marked_packets}, on_mark fired {record.marks_seen} times"
            )
        live = q.pool.live
        for h in q._queue:
            if not live[h]:
                self._fail(
                    f"queue {record.name}: resident packet handle {h} is dead "
                    f"in the pool (freed while queued, or stale)"
                )

    def _check_port(self, port: "OutputPort") -> None:
        q = port.queue
        in_flight = 1 if port._busy else 0
        if q.dequeued_packets != port.tx_packets + in_flight:
            self._fail(
                f"port {port.name}: pump imbalance — dequeued "
                f"{q.dequeued_packets} != transmitted {port.tx_packets} + "
                f"serializing {in_flight}"
            )

    def _check_pool(self, switch: "SharedBufferSwitch") -> None:
        pool = switch.pool_occupancy_bytes
        if not 0 <= pool <= switch.shared_pool_bytes:
            self._fail(
                f"switch {switch.name}: pool occupancy {pool}B outside "
                f"[0, {switch.shared_pool_bytes}]"
            )
        per_port = sum(p.queue.occupancy_bytes for p in switch.ports)
        if pool != per_port:
            self._fail(
                f"switch {switch.name}: pool occupancy {pool}B != sum of "
                f"per-port occupancies {per_port}B"
            )

    def _check_flow(self, sender: "TcpSender") -> None:
        fid = sender.flow_id
        if not 0 <= sender.snd_una <= sender.snd_nxt:
            self._fail(
                f"flow {fid}: sequence corruption — snd_una={sender.snd_una}, "
                f"snd_nxt={sender.snd_nxt}"
            )
        if sender.snd_nxt > sender.total_bytes:
            self._fail(
                f"flow {fid}: snd_nxt={sender.snd_nxt} beyond application "
                f"bytes {sender.total_bytes}"
            )
        if sender.bytes_in_flight != sender.snd_nxt - sender.snd_una:
            self._fail(
                f"flow {fid}: bytes_in_flight={sender.bytes_in_flight} "
                f"inconsistent with unacked range "
                f"[{sender.snd_una}, {sender.snd_nxt})"
            )
        if sender.cwnd <= 0:
            self._fail(f"flow {fid}: cwnd={sender.cwnd} not positive")
        receiver = self._receivers.get(fid)
        if receiver is None:
            return
        # ACKs carry rcv_nxt, so acked bytes can never outrun delivery; and
        # delivery can never outrun the bytes ever handed to the network
        # (snd_nxt, or the pre-timeout high-water mark after a go-back-N
        # rewind).
        high_water = max(sender.snd_nxt, sender.rto_recovery_point)
        if not sender.snd_una <= receiver.rcv_nxt <= high_water:
            self._fail(
                f"flow {fid}: byte conservation broken — snd_una="
                f"{sender.snd_una}, rcv_nxt={receiver.rcv_nxt}, "
                f"high-water={high_water}"
            )
        if receiver.bytes_delivered != receiver.rcv_nxt:
            self._fail(
                f"flow {fid}: receiver delivered {receiver.bytes_delivered}B "
                f"but rcv_nxt={receiver.rcv_nxt}"
            )

    def _check_packet_pool(self) -> None:
        """Handle conservation over the struct-of-arrays packet pool."""
        pool = self.sim.pool
        if pool is None:
            return
        live_flags = sum(pool.live)
        expected_live = pool.allocated_total - pool.freed_total
        if live_flags != expected_live:
            self._fail(
                f"packet pool: live-flag count {live_flags} != allocated "
                f"{pool.allocated_total} - freed {pool.freed_total}"
            )
        free = pool._free
        if len(free) + live_flags != pool.capacity:
            self._fail(
                f"packet pool: freelist {len(free)} + live {live_flags} != "
                f"capacity {pool.capacity} (leaked or duplicated handle)"
            )
        pool_live = pool.live
        for h in free:
            if pool_live[h]:
                self._fail(f"packet pool: freelist holds live handle {h}")

    # -- failure -----------------------------------------------------------------
    def _fail(self, message: str) -> None:
        raise InvariantViolation(f"[t={self.sim.now}ns] {message}")
