"""Runtime invariant checking and scenario fuzzing.

The paper's argument is an accounting argument — pipeline capacity,
per-port buffers, cwnd floors, timeout taxonomies — and this package is
the layer that proves our simulator's accounts balance on every run, not
just at the handful of points covered by golden digests.

Two entry points:

- :class:`InvariantChecker` — attached via ``Simulator(validate=True)``
  (or ``REPRO_VALIDATE=1``); components register themselves at
  construction and the engine's validated dispatch loop sweeps the
  conservation laws while the simulation runs.  When not attached the
  hot path is untouched (a single ``is not None`` test at construction).
- ``python -m repro.validate.fuzz`` — a seeded scenario fuzzer that draws
  random topologies/protocols/workloads/faults and runs each under full
  checking plus differential (rerun and serial-vs-parallel) comparisons.
"""

from .checker import InvariantChecker, InvariantViolation

__all__ = ["InvariantChecker", "InvariantViolation"]
