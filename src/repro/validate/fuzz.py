"""Seeded scenario fuzzer: random experiments under full invariant checking.

Each fuzz seed deterministically draws one :class:`ScenarioSpec` — random
topology (dumbbell size, link rate/delay, static vs shared buffers),
protocol (DCTCP, DCTCP+, TCP+, D2TCP), workload (incast fan-in, background
mix) and optional fault injection — and subjects it to:

1. a full run with the :class:`~repro.validate.checker.InvariantChecker`
   attached (every conservation law swept continuously);
2. differential checks: the validated run, an unvalidated run, and a
   rerun of the same seed must produce byte-identical results;
3. after all seeds pass, a serial-vs-:class:`ParallelExecutor` batch
   comparison (the exec layer must not perturb results).

On any failure the fuzzer prints a one-line repro command that replays
exactly the failing seed.  All randomness is drawn from ``random.Random``
instances seeded by the fuzz seed — never wall-clock, never process
state — so the repro is deterministic.

Mutation testing (``--mutate NAME``) deliberately breaks an accounting
law (e.g. counting a drop twice) to prove the checker catches real bugs;
the CI smoke job runs one such mutation alongside the clean sweep.

Usage::

    PYTHONPATH=src python -m repro fuzz --seeds 20 --budget 60s
    PYTHONPATH=src python -m repro fuzz --seed 7          # replay
    PYTHONPATH=src python -m repro fuzz --seeds 20 --mutate double-drop
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import time
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, List, Optional, Tuple

from ..exec.executors import ParallelExecutor
from ..exec.scenario import PointResult, ScenarioSpec, run_scenario
from ..net.topology import WiringError
from ..sim.units import KB, MB, SEC
from .checker import InvariantViolation

#: Protocols the fuzzer samples (the full implemented matrix minus the
#: plain-TCP baseline, which exercises no code the others miss; the
#: ``external:`` names route through the repro.control policy adapter).
FUZZ_PROTOCOLS = (
    "dctcp", "dctcp+", "dctcp+norand", "tcp+", "d2tcp", "d2tcp+", "pulser", "tbtcp",
    "external:dctcp-plus-scripted", "external:deadline-greedy",
)


class FuzzFailure(AssertionError):
    """A differential check failed (results not deterministic/equal)."""


#: Topology kinds the fuzzer samples (two-tier twice: it remains the
#: paper's shape and carries the most protocol surface).
FUZZ_TOPOLOGIES = ("two-tier", "two-tier", "dumbbell", "fat-tree")

#: Workload kinds the fuzzer samples (incast twice, same reasoning).
FUZZ_WORKLOADS = ("incast", "incast", "http", "swarm")


# -- spec drawing ---------------------------------------------------------------
def draw_spec(seed: int) -> ScenarioSpec:
    """Deterministically draw one random scenario for a fuzz seed."""
    rng = random.Random(0x5EED ^ (seed * 0x9E3779B1))
    protocol = rng.choice(FUZZ_PROTOCOLS)
    # A fifth of draws route the strategy through the spec's explicit ``cc``
    # dimension instead of the protocol label, so the differentials cover
    # the cc-resolution path (and its cache-key contribution) too.
    cc = rng.choice(FUZZ_PROTOCOLS) if rng.random() < 0.2 else ""
    effective = cc or protocol
    topology = rng.choice(FUZZ_TOPOLOGIES)
    workload = rng.choice(FUZZ_WORKLOADS)

    topo: Dict[str, object] = {
        "link_rate_bps": rng.choice([10 ** 9, 10 ** 10]),
        "prop_delay_ns": rng.choice([5_000, 12_000, 25_000]),
        "buffer_bytes": rng.choice([64 * KB, 128 * KB]),
        "ecn_threshold_bytes": rng.choice([16 * KB, 32 * KB]),
        "n_servers": rng.randint(3, 9),
        "n_leaf_switches": rng.randint(1, 3),
    }
    if topology == "dumbbell":
        topo["n_pairs"] = rng.randint(2, 6)
        if rng.random() < 0.5:
            topo["leg_delays_ns"] = tuple(
                rng.choice([5_000, 12_000, 25_000, 50_000])
                for _ in range(topo["n_pairs"])
            )
    elif topology == "fat-tree":
        topo["fat_tree_k"] = 4
        topo["hosts_per_edge"] = rng.randint(1, 2)
        # Packet spray feeds the receiver's reorder buffer + reordering
        # counter into the differentials; flow mode keeps paths pinned.
        topo["ecmp_mode"] = rng.choice(["flow", "flow", "packet"])
    if rng.random() < 0.3:
        topo["shared_pool_bytes"] = rng.choice([256 * KB, 512 * KB])

    incast: Dict[str, object] = {
        "total_bytes": rng.choice([64 * KB, 128 * KB, 256 * KB, 1 * MB]),
        "request_spacing_ns": rng.choice([0, 30_000]),
        "start_jitter_ns": rng.choice([0, 20_000]),
        # Small deadline so fault-heavy draws cannot stall a round for the
        # default 60 simulated seconds.
        "round_deadline_ns": 2 * SEC,
    }
    if "d2tcp" in effective and rng.random() < 0.5:
        incast["flow_deadline_ns"] = rng.choice([5_000_000, 20_000_000])

    workload_overrides: Optional[Dict[str, object]] = None
    if workload == "http":
        workload_overrides = {
            "response_size": rng.choice([16 * KB, 64 * KB, "short-message"]),
            "think_mode": rng.choice(["none", "fixed", "cdf"]),
            "think_scale": 0.01,
            "think_ns": 200_000,
            "request_deadline_ns": 2 * SEC,
        }
    elif workload == "swarm":
        workload_overrides = {
            "piece_bytes": rng.choice([32 * KB, 128 * KB]),
            "fetch_deadline_ns": 2 * SEC,
        }

    plus: Dict[str, object] = {}
    if effective.endswith("+") or effective == "dctcp+norand":
        plus["backoff_unit_mode"] = rng.choice(["fixed", "srtt"])

    fault: Optional[Dict[str, object]] = None
    roll = rng.random()
    if roll < 0.2:
        fault = {"kind": "random_loss", "rate": rng.choice([0.005, 0.02])}
    elif roll < 0.3:
        fault = {"kind": "drop_nth", "indices": tuple(sorted(rng.sample(range(400), 3)))}

    return ScenarioSpec.create(
        protocol=protocol,
        n_flows=rng.randint(2, 16),
        rounds=rng.randint(1, 3),
        seed=seed,
        rto_min_ms=rng.choice([1.0, 10.0]),
        plus_overrides=plus or None,
        incast_overrides=incast,
        topo=topo,
        fault_overrides=fault,
        with_background=rng.random() < 0.25,
        # A quarter of draws run with the telemetry tracer attached; the
        # differential checks then prove tracing never perturbs results
        # (the tracer schedules no events and draws no randomness).
        trace=rng.random() < 0.25,
        cc=cc,
        topology=topology,
        workload=workload,
        workload_overrides=workload_overrides,
    )


# -- result digests -------------------------------------------------------------
def result_digest(result: PointResult) -> str:
    """Content hash of a result, excluding host wall-clock telemetry."""
    payload = result.to_dict()
    payload.pop("wall_time_s", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- mutation testing -----------------------------------------------------------
@contextmanager
def _mutate_double_drop() -> Iterator[None]:
    """Bug: a rejected packet bumps the drop counter twice."""
    from ..net.queues import DropTailQueue

    orig = DropTailQueue.enqueue

    def enqueue(self, packet):
        admitted = orig(self, packet)
        if not admitted:
            self.dropped_packets += 1
        return admitted

    DropTailQueue.enqueue = enqueue
    try:
        yield
    finally:
        DropTailQueue.enqueue = orig


@contextmanager
def _mutate_leak_dequeue() -> Iterator[None]:
    """Bug: each departure leaks a byte of occupancy accounting."""
    from ..net.queues import DropTailQueue

    orig = DropTailQueue.dequeue

    def dequeue(self):
        packet = orig(self)
        if packet is not None:
            self.occupancy_bytes -= 1
        return packet

    DropTailQueue.dequeue = dequeue
    try:
        yield
    finally:
        DropTailQueue.dequeue = orig


@contextmanager
def _mutate_phantom_mark() -> Iterator[None]:
    """Bug: the mark counter advances on unmarked enqueues."""
    from ..net.queues import DropTailQueue

    orig = DropTailQueue.enqueue

    def enqueue(self, packet):
        admitted = orig(self, packet)
        if admitted and self.enqueued_packets % 97 == 0:
            self.marked_packets += 1
        return admitted

    DropTailQueue.enqueue = enqueue
    try:
        yield
    finally:
        DropTailQueue.enqueue = orig


@contextmanager
def _mutate_miswire_uplink() -> Iterator[None]:
    """Bug: one fat-tree edge switch fans an ECMP group over a host port.

    Every fat-tree the fuzzer builds while this is active has one edge
    switch whose uplink candidate set includes a host-facing port, so one
    "equal-cost" alternative delivers to the wrong host / has a different
    hop count — exactly what :func:`repro.net.topology.check_wiring`
    (attached to every validated run) must flag as a
    :class:`~repro.net.topology.WiringError`.
    """
    from ..net import topology as topo_mod

    orig = topo_mod.build_fat_tree

    def build_miswired(sim, params=None):
        net = orig(sim, params)
        edge = net.edges[0][0]
        # Rewire the first remote-host ECMP entry: swap one true uplink for
        # the switch's host-facing port 0 (ports beyond the uplinks).
        half = net.k // 2
        uplinks = edge.ports[-half:]
        host_port = edge.ports[0]
        for host in net.hosts:
            if edge.ecmp_candidates(host.node_id) is not None:
                edge.add_ecmp_group(host.node_id, (uplinks[0], host_port), salt=0)
                break
        return net

    topo_mod.build_fat_tree = build_miswired
    topo_mod.TOPOLOGIES["fat-tree"] = build_miswired
    try:
        yield
    finally:
        topo_mod.build_fat_tree = orig
        topo_mod.TOPOLOGIES["fat-tree"] = orig


MUTATIONS = {
    "double-drop": _mutate_double_drop,
    "leak-dequeue": _mutate_leak_dequeue,
    "phantom-mark": _mutate_phantom_mark,
    "miswire-uplink": _mutate_miswire_uplink,
}


# -- per-seed checks -------------------------------------------------------------
def check_seed(seed: int) -> Tuple[ScenarioSpec, str, int]:
    """Run one fuzz seed under validation + differential checks.

    Returns ``(spec, unvalidated_digest, events)``; raises
    :class:`InvariantViolation` or :class:`FuzzFailure` on any defect.
    """
    spec = draw_spec(seed)
    validated = run_scenario(spec, validate=True)
    d_validated = result_digest(validated)
    plain = run_scenario(spec, validate=False)
    d_plain = result_digest(plain)
    if d_validated != d_plain:
        raise FuzzFailure(
            f"validation perturbed the result: validated={d_validated} "
            f"unvalidated={d_plain}"
        )
    rerun = run_scenario(spec, validate=True)
    if result_digest(rerun) != d_validated:
        raise FuzzFailure(
            f"rerun of the same seed diverged: {result_digest(rerun)} != {d_validated}"
        )
    return spec, d_plain, validated.events_processed


def check_parallel_batch(specs: List[ScenarioSpec], serial_digests: List[str]) -> None:
    """Serial-vs-ParallelExecutor differential over all passing specs."""
    results = ParallelExecutor(workers=2).map(specs)
    for spec, serial_digest, result in zip(specs, serial_digests, results):
        parallel_digest = result_digest(result)
        if parallel_digest != serial_digest:
            raise FuzzFailure(
                f"seed {spec.seed}: parallel executor diverged from serial "
                f"({parallel_digest} != {serial_digest})"
            )


# -- CLI --------------------------------------------------------------------------
def _parse_budget(text: str) -> float:
    text = text.strip().lower()
    if text.endswith("ms"):
        return float(text[:-2]) / 1e3
    if text.endswith("s"):
        return float(text[:-1])
    if text.endswith("m"):
        return float(text[:-1]) * 60.0
    return float(text)


def _repro_command(seed: int, mutate: Optional[str]) -> str:
    cmd = f"PYTHONPATH=src python -m repro fuzz --seed {seed}"
    if mutate:
        cmd += f" --mutate {mutate}"
    return cmd


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Fuzz random scenarios under full invariant checking.",
    )
    parser.add_argument("--seeds", type=int, default=20, help="number of fuzz seeds to run")
    parser.add_argument("--start-seed", type=int, default=1, help="first fuzz seed")
    parser.add_argument("--seed", type=int, default=None, help="replay exactly one fuzz seed")
    parser.add_argument(
        "--budget",
        type=str,
        default=None,
        help="wall-clock budget (e.g. 60s, 2m); stops drawing new seeds when exhausted",
    )
    parser.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS),
        default=None,
        help="inject a known accounting bug (the fuzzer is expected to catch it)",
    )
    parser.add_argument(
        "--no-parallel",
        action="store_true",
        help="skip the serial-vs-parallel executor differential",
    )
    args = parser.parse_args(argv)

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.start_seed, args.start_seed + args.seeds))
    budget_s = _parse_budget(args.budget) if args.budget else None
    started = time.monotonic()

    mutation = MUTATIONS[args.mutate]() if args.mutate else nullcontext()
    passed_specs: List[ScenarioSpec] = []
    serial_digests: List[str] = []
    with mutation:
        for seed in seeds:
            if budget_s is not None and time.monotonic() - started > budget_s:
                print(f"budget exhausted after {len(passed_specs)}/{len(seeds)} seeds")
                break
            try:
                spec, digest, events = check_seed(seed)
            except (InvariantViolation, FuzzFailure, WiringError) as exc:
                print(f"seed {seed}: FAIL — {exc}")
                print(f"repro: {_repro_command(seed, args.mutate)}")
                return 1
            passed_specs.append(spec)
            serial_digests.append(digest)
            print(
                f"seed {seed}: ok  {spec.label()} rounds={spec.rounds} "
                f"digest={digest} events={events}"
            )

    if (
        not args.no_parallel
        and args.mutate is None  # worker processes would run unmutated code
        and len(passed_specs) >= 2
    ):
        try:
            check_parallel_batch(passed_specs, serial_digests)
        except FuzzFailure as exc:
            print(f"parallel differential: FAIL — {exc}")
            print(f"repro: PYTHONPATH=src python -m repro fuzz --seeds {len(seeds)}")
            return 1
        print(f"parallel differential: ok ({len(passed_specs)} specs)")

    elapsed = time.monotonic() - started
    print(f"all checks passed: {len(passed_specs)} seeds in {elapsed:.1f}s")
    return 0
