"""Fig. 6 — "partially implemented DCTCP+": slow_time without
desynchronization.

Only the first enhancement mechanism is enabled: the sending interval is
regulated, but the increments are the plain backoff unit rather than
randomized, so synchronized senders stay synchronized.  The paper finds
this variant survives further than DCTCP but collapses past ~100 flows,
motivating the randomization.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, run_incast_sweep

EXPERIMENT_ID = "fig6"
TITLE = "Partial DCTCP+ (no desync) vs DCTCP — goodput vs N"


def run(
    n_values: Sequence[int] = (20, 40, 60, 80, 100, 120, 160, 200),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    sweep = run_incast_sweep(("dctcp+norand", "dctcp"), n_values, rounds=rounds, seeds=seeds)
    rows = []
    for i, n in enumerate(n_values):
        partial = sweep["dctcp+norand"][i]
        dctcp = sweep["dctcp"][i]
        rows.append(
            [
                n,
                round(partial.goodput_mbps, 1),
                round(dctcp.goodput_mbps, 1),
                partial.timeouts,
                f"{partial.bad_rounds}/{partial.rounds}",
            ]
        )
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["N", "partial DCTCP+ (Mbps)", "DCTCP (Mbps)", "partial timeouts", "bad rounds"],
        rows,
        notes=[
            "partial = slow_time regulation with randomize=False",
            "expected shape: clears DCTCP's ~40-flow wall but degrades beyond ~100",
        ],
    )
