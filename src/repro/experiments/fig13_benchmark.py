"""Fig. 13 — benchmark traffic from production-cluster statistics.

7,000 queries + 7,000 background flows (+ short messages), both protocols
with ``RTO_min = 10 ms``.  Paper result: mean query FCT 4.1 ms for DCTCP+
vs 13.6 ms for DCTCP; at the 95th percentile DCTCP+ is slightly *slower*
(the deliberate slow_time delay), but at the 99th percentile it wins by
16.3 ms.  Background traffic differs by <1 ms at the mean/95th and
~15 ms at the 99th — "slowing little quickens more".
"""

from __future__ import annotations

from typing import Optional

from ..net.topology import build_two_tier
from ..sim.engine import Simulator
from ..workloads.benchmark import BenchmarkConfig, BenchmarkWorkload
from .common import ExperimentResult, make_spec

EXPERIMENT_ID = "fig13"
TITLE = "Benchmark traffic FCT statistics (ms), RTO_min = 10 ms"
#: One self-contained benchmark simulation — no (n_values, rounds, seeds).
SUPPORTS_SWEEP_KWARGS = False
#: ``--paper`` runs the full production-statistics mix.
PAPER_SCALE_KWARGS = dict(n_queries=7000, n_background=7000, max_flow_bytes=None)


def run(
    n_queries: int = 300,
    n_background: int = 300,
    n_short: int = 60,
    query_fanout: int = 40,
    max_flow_bytes: Optional[int] = 4 * 1024 * 1024,
    seed: int = 1,
    max_events: int = 800_000_000,
) -> ExperimentResult:
    """Defaults are reduced-scale; pass ``n_queries=7000, n_background=7000,
    max_flow_bytes=None`` for the paper's full mix."""
    rows = []
    summaries = {}
    for protocol in ("dctcp+", "dctcp"):
        sim = Simulator(seed=seed)
        tree = build_two_tier(sim)
        spec = make_spec(protocol, rto_min_ms=10.0, min_cwnd_mss=1.0)
        config = BenchmarkConfig(
            n_queries=n_queries,
            n_background=n_background,
            n_short_messages=n_short,
            query_fanout=query_fanout,
            max_flow_bytes=max_flow_bytes,
        )
        workload = BenchmarkWorkload(sim, tree, spec, config)
        workload.run_to_completion(max_events=max_events)
        for category in ("query", "background", "short"):
            summaries[(protocol, category)] = (
                workload.fct_summary_ms(category),
                workload.timeout_total(category),
            )

    for category in ("query", "background", "short"):
        for protocol in ("dctcp+", "dctcp"):
            summary, timeouts = summaries[(protocol, category)]
            rows.append(
                [
                    category,
                    protocol,
                    summary.count,
                    round(summary.mean, 2),
                    round(summary.p95, 2),
                    round(summary.p99, 2),
                    timeouts,
                ]
            )
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["category", "protocol", "flows", "mean", "p95", "p99", "timeouts"],
        rows,
        notes=[
            f"{n_queries} queries / {n_background} background / {n_short} short",
            "(paper: 7000/7000; run with --paper for full scale)",
            "expected shape: DCTCP+ wins the query mean and 99th percentile;",
            "background traffic is barely affected",
        ],
    )
