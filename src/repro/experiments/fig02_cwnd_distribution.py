"""Fig. 2 — frequency distribution of cwnd sizes at N = 10, 20, 40, 60.

The paper snapshots cwnd before every transmission; with few flows the
distribution sits at 3-8 MSS, and as N grows, 60%+ of DCTCP's snapshots
land on 1-2 MSS (2 = the floor, 1 = timeout aftermath) while TCP lags in
reacting.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..metrics.cwnd_tracker import cwnd_frequency
from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "fig2"
TITLE = "cwnd-size frequency distribution (share of transmissions)"

#: histogram support reported by the paper's figure
CWND_BINS = tuple(range(1, 11))


def run(
    n_values: Sequence[int] = (10, 20, 40, 60),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    requests = [
        dict(protocol=protocol, n_flows=n, rounds=rounds, seeds=seeds)
        for protocol in ("dctcp", "tcp")
        for n in n_values
    ]
    distributions: Dict[str, Dict[int, float]] = {}
    for request, point in zip(requests, run_incast_batch(requests)):
        key = f"{request['protocol']}/N={request['n_flows']}"
        distributions[key] = cwnd_frequency(point.flow_stats)

    headers = ["cwnd (MSS)"] + list(distributions.keys())
    rows = []
    for cwnd in CWND_BINS:
        row: list = [cwnd]
        for key in distributions:
            freq = distributions[key].get(cwnd, 0.0)
            row.append(round(freq, 4))
        rows.append(row)
    # Collect any mass beyond the plotted bins so columns sum to 1.
    tail_row: list = [">10"]
    for key in distributions:
        tail = sum(
            f for c, f in distributions[key].items() if c > CWND_BINS[-1] or c < CWND_BINS[0]
        )
        tail_row.append(round(tail, 4))
    rows.append(tail_row)
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=[
            "cwnd=1 marks post-timeout transmissions (paper convention)",
            "expected shape: at N>=20, DCTCP mass concentrates on 1-2 MSS",
        ],
    )
