"""``python -m repro.experiments`` entry point."""

from .runner import main

raise SystemExit(main())
