"""Deprecated entry point: use ``python -m repro experiments``.

Kept as a thin forwarding shim so existing scripts and CI configurations
keep working; the implementation lives in :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import sys

from .runner import main

print(
    "repro: 'python -m repro.experiments' is deprecated; use 'python -m repro experiments'",
    file=sys.stderr,
)
raise SystemExit(main())
