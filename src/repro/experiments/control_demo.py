"""control-demo — the step/observe/act environment, exercised end to end.

Three panels on one incast point, all driven through
:class:`~repro.control.ControlEnv` or the ``external:`` strategy path:

1. **autopilot** — every step is ``None``; the controlled flow runs its
   own congestion law.  Scored identically to the uncontrolled builtin
   run (the row pair is the adapter-lossless proof at demo scale).
2. **throttle agent** — a 10-line scripted agent over the observation
   stream: halve the window when the last RTT's marked fraction crosses
   1/2, add a pacing interval while the bottleneck high-water mark is
   above the ECN threshold's neighbourhood.
3. **external policies** — ``external:dctcp-plus-scripted`` and
   ``external:deadline-greedy`` run through the ordinary scenario/arena
   machinery (no env), showing the same policy classes compete in batch
   experiments.

The demo is deterministic end to end: the env draws no randomness, the
agent is a pure function of the observation, and the external points run
through seeded :class:`~repro.exec.ScenarioSpec`\\ s.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..control import Action, ControlEnv
from ..tcp.cc import get_cc
from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "control-demo"
TITLE = "ControlEnv demo — autopilot / throttle agent / external policies"
SUPPORTS_CC_KWARG = True
SUPPORTS_SWEEP_KWARGS = False

#: Demo point: mid-fan-in where marks are frequent but rounds stay fast.
DEFAULT_N_FLOWS = 32
DEFAULT_ROUNDS = 3
DEFAULT_SEED = 1

#: External strategies scored alongside the env episodes (panel 3).
DEFAULT_CCS = ("external:dctcp-plus-scripted", "external:deadline-greedy")

QUICK_KWARGS = dict(n_flows=16, rounds=2)


def throttle_agent(obs) -> Optional[Action]:
    """The demo's scripted controller: back off hard on heavy marking."""
    congested = obs.marked_fraction > 0.5
    cwnd_scale = 0.5 if congested else 1.0
    pacing = 30_000 if obs.queue_highwater_bytes > 24_000 else 0
    if cwnd_scale == 1.0 and pacing == 0:
        return None
    return Action(cwnd_scale=cwnd_scale, pacing_interval_ns=pacing)


def _run_episode(protocol: str, n_flows: int, rounds: int, seed: int, agent):
    env = ControlEnv(protocol=protocol, n_flows=n_flows, rounds=rounds, seed=seed)
    obs = env.reset()
    steps = 0
    while not obs.done:
        obs = env.step(agent(obs) if agent is not None else None)
        steps += 1
    summary = env.summary()
    env.close()
    return steps, summary


def run(
    n_flows: int = DEFAULT_N_FLOWS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
    ccs: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    rows = []

    # Panel 1+2: env episodes (serial by nature — the agent is in the loop).
    for label, agent in (
        ("env: autopilot (dctcp)", None),
        ("env: throttle agent (dctcp)", throttle_agent),
    ):
        steps, summary = _run_episode("dctcp", n_flows, rounds, seed, agent)
        rows.append(
            [
                label,
                n_flows,
                steps,
                round(summary["goodput_mbps"], 1),
                round(summary["fct_ms"], 2),
                int(summary["timeouts"]),
            ]
        )

    # Panel 3: external policies (plus the builtin reference) through the
    # ordinary batch executor — cacheable, parallelizable, traceable.
    field = ("dctcp", "dctcp+") + (tuple(ccs) if ccs is not None else DEFAULT_CCS)
    requests = [
        dict(protocol=cc, n_flows=n_flows, rounds=rounds, seeds=(seed,))
        for cc in field
    ]
    for request, point in zip(requests, run_incast_batch(requests)):
        rows.append(
            [
                f"batch: {get_cc(request['protocol']).label}",
                n_flows,
                "-",
                round(point.goodput_mbps, 1),
                round(point.fct_ms, 2),
                point.timeouts,
            ]
        )

    notes = [
        f"one incast point: N={n_flows}, {rounds} rounds, seed {seed}",
        "autopilot episode is byte-identical to the uncontrolled dctcp run "
        "(the determinism tier asserts this; here it shows as equal scores)",
        "batch rows run through ScenarioSpec/executor — external:<policy> "
        "names flow through cache keys, sweeps and the fuzzer unchanged",
    ]
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["episode", "N", "steps", "goodput (Mbps)", "FCT (ms)", "timeouts"],
        rows,
        notes=notes,
    )
