"""Fig. 1 — goodput of DCTCP and TCP vs number of concurrent flows.

Paper setup: basic incast, aggregator requests 1 MB/N from N workers,
128 KB static buffer per port, K = 32 KB, 1000 repetitions, N in 1..100.
Paper result: TCP collapses past ~10 concurrent flows; DCTCP holds near
line rate until ~35 and then collapses to the RTO-bound floor.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, run_incast_sweep

EXPERIMENT_ID = "fig1"
TITLE = "Goodput vs concurrent flows (DCTCP, TCP) — basic incast"


def run(
    n_values: Sequence[int] = (1, 5, 10, 15, 20, 30, 35, 40, 50, 60, 80, 100),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    sweep = run_incast_sweep(("dctcp", "tcp"), n_values, rounds=rounds, seeds=seeds)
    rows = []
    for i, n in enumerate(n_values):
        dctcp = sweep["dctcp"][i]
        tcp = sweep["tcp"][i]
        rows.append(
            [
                n,
                round(dctcp.goodput_mbps, 1),
                round(tcp.goodput_mbps, 1),
                dctcp.timeouts,
                tcp.timeouts,
            ]
        )
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["N", "DCTCP goodput (Mbps)", "TCP goodput (Mbps)", "DCTCP timeouts", "TCP timeouts"],
        rows,
        notes=[
            f"{rounds} rounds x {len(seeds)} seeds per point (paper: 1000 repetitions)",
            "expected shape: TCP collapses past ~10 flows, DCTCP past ~35-40",
        ],
    )
