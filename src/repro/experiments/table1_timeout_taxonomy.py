"""Table I — stack-state shares at N = 20, 40, 60.

Columns reproduced:

1. ``cwnd=2, ECE=1`` among all transmissions (DCTCP only): the paper's
   "incapable" state — the window is at its floor while ECN feedback still
   demands a decrease (58.3% / 50.2% / 10.4% in the paper);
2. timeout share among transmissions for DCTCP and TCP;
3. FLoss-TO and LAck-TO shares among all DCTCP timeouts (the paper finds
   FLoss dominance grows with N: 35%->76%).
"""

from __future__ import annotations

from typing import Sequence

from ..telemetry.taxonomy import stack_state_row
from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "table1"
TITLE = "Timeout taxonomy and the cwnd-floor 'incapable' state"


def run(
    n_values: Sequence[int] = (20, 40, 60),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    points = run_incast_batch(
        [
            dict(protocol=protocol, n_flows=n, rounds=rounds, seeds=seeds)
            for n in n_values
            for protocol in ("dctcp", "tcp")
        ]
    )
    rows = []
    for i, n in enumerate(n_values):
        dctcp, tcp = points[2 * i : 2 * i + 2]
        rows.append([f"N={n}"] + stack_state_row(dctcp.flow_stats, tcp.flow_stats))
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        [
            "Flows",
            "cwnd=2,ECE=1 (DCTCP)",
            "Timeout (DCTCP)",
            "Timeout (TCP)",
            "FLoss-TO (DCTCP)",
            "LAck-TO (DCTCP)",
        ],
        rows,
        notes=[
            "shares aggregated over every flow (paper traces one random flow)",
            "expected shape: the incapable share is large at N=20-40 and both",
            "timeout kinds appear, with FLoss-TO dominating as N grows",
        ],
    )
