"""Per-figure experiment drivers (one module per paper table/figure)."""

from .common import (
    BENCH_N_VALUES,
    ExperimentResult,
    IncastPointResult,
    make_spec,
    point_specs,
    run_incast_batch,
    run_incast_point,
    run_incast_sweep,
)

__all__ = [
    "ExperimentResult",
    "IncastPointResult",
    "make_spec",
    "point_specs",
    "run_incast_batch",
    "run_incast_point",
    "run_incast_sweep",
    "BENCH_N_VALUES",
]
