"""Shared infrastructure for the per-figure experiment drivers.

Every driver produces an :class:`ExperimentResult` — a titled table plus
free-form notes — via :func:`run_incast_point` / :func:`run_incast_sweep`
so that all figures share one measurement methodology:

- a fresh :class:`~repro.sim.engine.Simulator` and two-tier tree per
  (protocol, N, seed) point;
- persistent-connection incast rounds (see
  :class:`~repro.workloads.incast.IncastWorkload`);
- results averaged across seeds (the paper averages 1000 repetitions; we
  default to fewer rounds x seeds and the CLI exposes ``--rounds/--seeds``).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..metrics.flowstats import FlowStats
from ..metrics.queue_sampler import QueueSampler
from ..metrics.report import format_table
from ..net.topology import TopologyParams, TwoTierTree, build_two_tier
from ..sim.engine import Simulator
from ..workloads.background import BackgroundConfig, BackgroundTraffic
from ..workloads.incast import IncastConfig, IncastWorkload
from ..workloads.protocols import ProtocolSpec, spec_for


@dataclass
class ExperimentResult:
    """A reproduced table/figure, ready to print or export."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()


@dataclass
class IncastPointResult:
    """Aggregated outcome of one (protocol, N) incast measurement."""

    protocol: str
    n_flows: int
    goodput_mbps: float
    fct_ms: float
    timeouts: int
    rounds: int
    bad_rounds: int
    flow_stats: List[FlowStats] = field(default_factory=list)
    queue_samples_bytes: List[int] = field(default_factory=list)


def make_spec(
    protocol: str,
    rto_min_ms: Optional[float] = None,
    min_cwnd_mss: Optional[float] = None,
    plus_overrides: Optional[dict] = None,
) -> ProtocolSpec:
    """Protocol spec with the overrides the figures vary."""
    tcp_overrides: Dict[str, object] = {}
    if rto_min_ms is not None:
        tcp_overrides["rto_min_ns"] = int(rto_min_ms * 1e6)
    if min_cwnd_mss is not None:
        tcp_overrides["min_cwnd_mss"] = min_cwnd_mss
    return spec_for(protocol, tcp_overrides=tcp_overrides, plus_overrides=plus_overrides)


def run_incast_point(
    protocol: str,
    n_flows: int,
    rounds: int = 20,
    seeds: Sequence[int] = (1,),
    rto_min_ms: Optional[float] = None,
    min_cwnd_mss: Optional[float] = None,
    plus_overrides: Optional[dict] = None,
    incast_overrides: Optional[dict] = None,
    topo: Optional[TopologyParams] = None,
    with_background: bool = False,
    sample_queue: bool = False,
    max_events_per_seed: int = 400_000_000,
) -> IncastPointResult:
    """Run the basic incast experiment at one (protocol, N) point.

    Averages goodput/FCT across seeds; concatenates flow stats and queue
    samples (for Fig. 2 / Table I / Fig. 9 post-processing).
    """
    goodputs: List[float] = []
    fcts: List[float] = []
    timeouts = 0
    bad_rounds = 0
    total_rounds = 0
    all_stats: List[FlowStats] = []
    queue_samples: List[int] = []
    bg_throughputs: List[float] = []

    for seed in seeds:
        sim = Simulator(seed=seed)
        tree = build_two_tier(sim, topo)
        cfg_kwargs = dict(n_flows=n_flows, n_rounds=rounds)
        if incast_overrides:
            cfg_kwargs.update(incast_overrides)
        config = IncastConfig(**cfg_kwargs)
        spec = make_spec(protocol, rto_min_ms, min_cwnd_mss, plus_overrides)

        background = None
        if with_background:
            bg_spec = make_spec(protocol, rto_min_ms, min_cwnd_mss, plus_overrides)
            background = BackgroundTraffic(sim, tree, bg_spec)
            background.start()

        sampler = None
        if sample_queue:
            sampler = QueueSampler(sim, tree.bottleneck_port)
            sampler.start()

        workload = IncastWorkload(sim, tree, spec, config)
        workload.run_to_completion(max_events=max_events_per_seed)

        goodputs.append(workload.mean_goodput_bps)
        fcts.append(workload.mean_fct_ns)
        timeouts += workload.total_timeouts
        bad_rounds += sum(1 for r in workload.rounds if r.timeouts > 0)
        total_rounds += len(workload.rounds)
        all_stats.extend(workload.flow_stats)
        if sampler is not None:
            sampler.stop()
            queue_samples.extend(sampler.occupancy_bytes)
        if background is not None:
            bg_throughputs.append(background.mean_throughput_bps())
            background.stop()
        workload.close()

    result = IncastPointResult(
        protocol=protocol,
        n_flows=n_flows,
        goodput_mbps=sum(goodputs) / len(goodputs) / 1e6,
        fct_ms=sum(fcts) / len(fcts) / 1e6,
        timeouts=timeouts,
        rounds=total_rounds,
        bad_rounds=bad_rounds,
        flow_stats=all_stats,
        queue_samples_bytes=queue_samples,
    )
    if bg_throughputs:
        # Stash the long-flow observation for Fig. 11/12 notes.
        result.bg_throughput_mbps = sum(bg_throughputs) / len(bg_throughputs) / 1e6  # type: ignore[attr-defined]
    return result


def run_incast_sweep(
    protocols: Sequence[str],
    n_values: Sequence[int],
    **kwargs,
) -> Dict[str, List[IncastPointResult]]:
    """Sweep N for each protocol; kwargs forwarded to run_incast_point."""
    results: Dict[str, List[IncastPointResult]] = {}
    for protocol in protocols:
        results[protocol] = [
            run_incast_point(protocol, n, **kwargs) for n in n_values
        ]
    return results


#: N values used by the reduced (bench) and paper-scale sweeps.
BENCH_N_VALUES = (10, 20, 40, 60, 80)
PAPER_N_VALUES_FIG1 = tuple(range(5, 101, 5))
PAPER_N_VALUES_FIG7 = tuple(range(10, 201, 10))
