"""Shared infrastructure for the per-figure experiment drivers.

Every driver produces an :class:`ExperimentResult` — a titled table plus
free-form notes — by submitting a batch of declarative
:class:`~repro.exec.ScenarioSpec` points to the ambient executor (see
:mod:`repro.exec.context`), so that all figures share one measurement
methodology:

- a fresh :class:`~repro.sim.engine.Simulator` and two-tier tree per
  (protocol, N, seed) point;
- persistent-connection incast rounds (see
  :class:`~repro.workloads.incast.IncastWorkload`);
- results averaged across seeds (the paper averages 1000 repetitions; we
  default to fewer rounds x seeds and the CLI exposes ``--rounds/--seeds``).

Because the whole figure goes to the executor as **one flat batch**, a
``--workers N`` run parallelizes across protocols, N values and seeds at
once, and a ``--cache-dir`` run skips every point computed before.
:func:`run_incast_point` / :func:`run_incast_sweep` remain as thin wrappers
over the batch API for callers that want a single point or a single sweep.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..exec import PointResult, ScenarioSpec, get_executor
from ..metrics.report import format_table
from ..workloads.protocols import ProtocolSpec, spec_for

#: Backwards-compatible alias: the ad-hoc per-figure result type is now the
#: execution layer's :class:`~repro.exec.PointResult` (with background
#: throughput as a declared field instead of a dynamically stashed one).
IncastPointResult = PointResult


@dataclass
class ExperimentResult:
    """A reproduced table/figure, ready to print or export."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        # Notes ride along as a trailing comment stanza so CSV exports keep
        # the caveats without breaking header-first consumers.
        for note in self.notes:
            buf.write(f"# note: {note}\r\n")
        return buf.getvalue()

    def to_json(self) -> str:
        """Machine-readable export (``--json``)."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
        )


def make_spec(
    protocol: str,
    rto_min_ms: Optional[float] = None,
    min_cwnd_mss: Optional[float] = None,
    plus_overrides: Optional[dict] = None,
) -> ProtocolSpec:
    """Protocol spec with the overrides the figures vary."""
    tcp_overrides: Dict[str, object] = {}
    if rto_min_ms is not None:
        tcp_overrides["rto_min_ns"] = int(rto_min_ms * 1e6)
    if min_cwnd_mss is not None:
        tcp_overrides["min_cwnd_mss"] = min_cwnd_mss
    return spec_for(protocol, tcp_overrides=tcp_overrides, plus_overrides=plus_overrides)


def point_specs(
    protocol: str,
    n_flows: int,
    rounds: int = 20,
    seeds: Sequence[int] = (1,),
    max_events_per_seed: int = 400_000_000,
    **kwargs,
) -> List[ScenarioSpec]:
    """The per-seed :class:`ScenarioSpec` batch behind one (protocol, N)
    measurement; kwargs as accepted by :meth:`ScenarioSpec.create`."""
    return [
        ScenarioSpec.create(
            protocol,
            n_flows,
            rounds=rounds,
            seed=seed,
            max_events=max_events_per_seed,
            **kwargs,
        )
        for seed in seeds
    ]


def run_incast_batch(requests: Sequence[Mapping]) -> List[PointResult]:
    """Run many (protocol, N) measurements as **one** executor batch.

    Each request is a kwargs mapping for :func:`point_specs` (i.e. the
    historical :func:`run_incast_point` signature).  All per-seed points of
    all requests are flattened into a single submission — the unit of
    parallelism — and each request's seeds are aggregated back into one
    :class:`PointResult`, returned in request order.
    """
    specs: List[ScenarioSpec] = []
    slices: List[slice] = []
    for request in requests:
        start = len(specs)
        specs.extend(point_specs(**request))
        slices.append(slice(start, len(specs)))
    results = get_executor().map(specs)
    return [PointResult.aggregate(results[s]) for s in slices]


def run_incast_point(
    protocol: str,
    n_flows: int,
    rounds: int = 20,
    seeds: Sequence[int] = (1,),
    **kwargs,
) -> PointResult:
    """Run the basic incast experiment at one (protocol, N) point.

    Averages goodput/FCT across seeds; concatenates flow stats and queue
    samples (for Fig. 2 / Table I / Fig. 9 post-processing).
    """
    return run_incast_batch(
        [dict(protocol=protocol, n_flows=n_flows, rounds=rounds, seeds=seeds, **kwargs)]
    )[0]


def run_incast_sweep(
    protocols: Sequence[str],
    n_values: Sequence[int],
    **kwargs,
) -> Dict[str, List[PointResult]]:
    """Sweep N for each protocol in one batch; kwargs forwarded per point."""
    requests = [
        dict(protocol=protocol, n_flows=n, **kwargs)
        for protocol in protocols
        for n in n_values
    ]
    points = run_incast_batch(requests)
    results: Dict[str, List[PointResult]] = {}
    for request, point in zip(requests, points):
        results.setdefault(request["protocol"], []).append(point)
    return results


#: N values used by the reduced (bench) and paper-scale sweeps.
BENCH_N_VALUES = (10, 20, 40, 60, 80)
PAPER_N_VALUES_FIG1 = tuple(range(5, 101, 5))
PAPER_N_VALUES_FIG7 = tuple(range(10, 201, 10))
