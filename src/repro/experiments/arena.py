"""Arena — every registered congestion control, head-to-head on the
paper's incast sweep.

Each strategy in the :mod:`repro.tcp.cc` registry runs the basic incast
workload over the fan-in sweep (N = 2…256 at paper scale) and is scored
per point on:

- **goodput** (the paper's headline metric, Fig. 1/7),
- **p99 FCT** across rounds (the tail the mean hides),
- the **trace-derived timeout taxonomy** — FLoss-TO vs LAck-TO counts
  from the telemetry ``rto`` records (Table I's classification).

Every point runs with tracing on so the taxonomy comes from the same
trace channel the telemetry exporters consume.  The expected headline:
DCTCP collapses past a few dozen flows while DCTCP+ degrades gracefully;
the arena shows where Pulser's explicit notification and TBTCP's tiny-
buffer pacing land between them.

Custom strategies registered before the run (``repro.config.register``)
are scored automatically; ``ccs=(...)`` — the CLI's repeatable ``--cc``
flag — picks the field explicitly, and accepts ``external:<policy>``
names so :mod:`repro.control` scripted policies compete on equal
footing (the CI control-smoke job races ``external:dctcp-plus-scripted``
against the builtin and asserts identical rows).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tcp.cc import cc_names, get_cc
from ..telemetry.taxonomy import timeout_taxonomy
from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "arena"
TITLE = "CC arena — goodput / p99 FCT / timeout taxonomy vs fan-in"
SUPPORTS_CC_KWARG = True

#: Default sweep: paper-style doubling fan-in at a tractable default scale.
DEFAULT_N_VALUES = (2, 8, 32, 64, 128)

PAPER_SCALE_KWARGS = dict(n_values=(2, 4, 8, 16, 32, 64, 128, 256))
#: ``--quick`` (CI smoke): every strategy, three fan-in points, one seed.
QUICK_KWARGS = dict(n_values=(2, 8, 32), rounds=2, seeds=(1,))


def run(
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    rounds: int = 5,
    seeds: Sequence[int] = (1,),
    ccs: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    field = tuple(ccs) if ccs is not None else cc_names()
    requests = [
        dict(protocol=cc, n_flows=n, rounds=rounds, seeds=seeds, trace=True)
        for cc in field
        for n in n_values
    ]
    points = run_incast_batch(requests)

    rows = []
    for request, point in zip(requests, points):
        taxonomy = timeout_taxonomy(point.trace_events)
        rows.append(
            [
                get_cc(request["protocol"]).label,
                request["n_flows"],
                round(point.goodput_mbps, 1),
                round(point.fct_p99_ms, 2),
                point.timeouts,
                taxonomy.get("FLOSS", 0),
                taxonomy.get("LACK", 0),
                point.bad_rounds,
            ]
        )

    notes = [
        f"{len(field)} strategies x {len(n_values)} fan-in points, "
        f"{rounds} rounds x {len(seeds)} seed(s) each",
        "timeout taxonomy (FLoss/LAck) derived from telemetry rto trace records",
        "expected: DCTCP collapses at high fan-in while DCTCP+ degrades "
        "gracefully (paper Fig. 7); Pulser/TBTCP land in between",
    ]
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["CC", "N", "goodput (Mbps)", "p99 FCT (ms)", "timeouts", "FLoss-TO", "LAck-TO", "bad rounds"],
        rows,
        notes=notes,
    )
