"""Fig. 7 — fully implemented DCTCP+ vs DCTCP vs TCP: goodput and FCT.

Per the paper's footnote 3, the cwnd floor is lowered to 1 MSS for DCTCP+
*and* for DCTCP in this comparison (it does not rescue DCTCP).  Paper
result: DCTCP+ fluctuates between 600 and 900 Mbps beyond 200 flows with
FCT in the 8-17 ms range, while DCTCP and TCP exceed 200 ms.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, run_incast_sweep

EXPERIMENT_ID = "fig7"
TITLE = "Full DCTCP+ vs DCTCP vs TCP — goodput and FCT vs N"


def run(
    n_values: Sequence[int] = (20, 40, 60, 80, 120, 160, 200),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    sweep = run_incast_sweep(
        ("dctcp+", "dctcp", "tcp"),
        n_values,
        rounds=rounds,
        seeds=seeds,
        min_cwnd_mss=1.0,  # footnote 3: floor lowered for this comparison
    )
    rows = []
    for i, n in enumerate(n_values):
        plus = sweep["dctcp+"][i]
        dctcp = sweep["dctcp"][i]
        tcp = sweep["tcp"][i]
        rows.append(
            [
                n,
                round(plus.goodput_mbps, 1),
                round(dctcp.goodput_mbps, 1),
                round(tcp.goodput_mbps, 1),
                round(plus.fct_ms, 2),
                round(dctcp.fct_ms, 2),
                round(tcp.fct_ms, 2),
            ]
        )
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        [
            "N",
            "DCTCP+ (Mbps)",
            "DCTCP (Mbps)",
            "TCP (Mbps)",
            "DCTCP+ FCT (ms)",
            "DCTCP FCT (ms)",
            "TCP FCT (ms)",
        ],
        rows,
        notes=[
            "cwnd floor = 1 MSS for every protocol here (paper footnote 3)",
            "expected shape: DCTCP+ sustains high goodput and ~10 ms FCT to 200",
            "flows; DCTCP/TCP sit at the RTO floor (FCT > 200 ms)",
        ],
    )
