"""Fig. 11 & 12 — incast with two persistent background flows.

Two long flows (Fig. 10 topology) stream through the same bottleneck
while the incast rounds run.  Fig. 11 reports goodput of the incast
traffic vs N, Fig. 12 its FCT; the paper also reports each long flow
averaging ~400 Mbps under DCTCP+ (good short/long isolation).
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "fig11"
TITLE = "Incast goodput and FCT with 2 persistent background flows"


def run(
    n_values: Sequence[int] = (20, 40, 60, 80, 120, 160, 200),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
    round_deadline_ns: int = 5_000_000_000,
) -> ExperimentResult:
    protocols = ("dctcp+", "dctcp", "tcp")
    points = run_incast_batch(
        [
            dict(
                protocol=protocol,
                n_flows=n,
                rounds=rounds,
                seeds=seeds,
                with_background=True,
                min_cwnd_mss=1.0 if protocol.startswith("dctcp+") else None,
                # Under sustained background congestion a collapsed TCP
                # round can back its RTO off into the minutes; cap the
                # round (default 5 s; it is recorded as failed and the
                # goodput reflects it) instead of simulating the stall.
                incast_overrides={"round_deadline_ns": round_deadline_ns},
            )
            for n in n_values
            for protocol in protocols
        ]
    )
    rows = []
    bg_notes = []
    for i, n in enumerate(n_values):
        plus, dctcp, tcp = points[3 * i : 3 * i + 3]
        rows.append(
            [
                n,
                round(plus.goodput_mbps, 1),
                round(dctcp.goodput_mbps, 1),
                round(tcp.goodput_mbps, 1),
                round(plus.fct_ms, 2),
                round(dctcp.fct_ms, 2),
                round(tcp.fct_ms, 2),
            ]
        )
        bg = plus.bg_throughput_mbps
        if bg is not None:
            bg_notes.append(f"N={n}: DCTCP+ long-flow mean throughput {bg:.0f} Mbps (x{2})")
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        [
            "N",
            "DCTCP+ (Mbps)",
            "DCTCP (Mbps)",
            "TCP (Mbps)",
            "DCTCP+ FCT (ms)",
            "DCTCP FCT (ms)",
            "TCP FCT (ms)",
        ],
        rows,
        notes=[
            "expected shape: DCTCP+ keeps nearly its no-background goodput and",
            "an FCT far below DCTCP/TCP (paper: 'slowing little quickens more')",
            *bg_notes[:4],
        ],
    )
