"""CLI entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Examples
--------
List experiments::

    python -m repro.experiments --list

Run one at reduced (default) scale::

    python -m repro.experiments fig7

Scale up toward the paper's repetition counts::

    python -m repro.experiments fig1 --rounds 100 --seeds 10
    python -m repro.experiments fig13 --paper
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .registry import describe, experiment_ids, get_runner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables/figures of the DCTCP+ paper (ICPP'15).",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (e.g. fig7)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--rounds", type=int, default=None, help="incast rounds per seed")
    parser.add_argument("--seeds", type=int, default=None, help="number of seeds")
    parser.add_argument(
        "--paper", action="store_true", help="paper-scale configuration (slow)"
    )
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    return parser


def _kwargs_for(experiment: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if experiment == "fig13":
        if args.paper:
            kwargs.update(n_queries=7000, n_background=7000, max_flow_bytes=None)
        return kwargs
    if experiment == "fig14":
        return kwargs
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.seeds is not None:
        kwargs["seeds"] = tuple(range(1, args.seeds + 1))
    if args.paper:
        kwargs.setdefault("rounds", 100)
        kwargs.setdefault("seeds", tuple(range(1, 11)))
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        for experiment_id in experiment_ids():
            print(describe(experiment_id))
        return 0
    runner = get_runner(args.experiment)
    kwargs = _kwargs_for(args.experiment, args)
    started = time.time()
    result = runner(**kwargs)
    elapsed = time.time() - started
    if args.csv:
        sys.stdout.write(result.to_csv())
    else:
        print(result.to_text())
        print(f"\n[{elapsed:.1f}s wall clock]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
