"""CLI entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Examples
--------
List experiments::

    python -m repro.experiments --list

Run one at reduced (default) scale::

    python -m repro.experiments fig7

Scale up toward the paper's repetition counts, fanning the points out to
worker processes and caching finished points on disk::

    python -m repro.experiments fig1 --rounds 100 --seeds 10
    python -m repro.experiments fig7 --paper --workers 8 --cache-dir .exp-cache
    python -m repro.experiments fig13 --paper

Every simulation point is fully described by a seeded
:class:`~repro.exec.ScenarioSpec`, so ``--workers N`` produces **the same
table** as a serial run, only faster, and a re-run with the same
``--cache-dir`` completes from cache hits without re-simulating.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..cli import add_common_arguments, apply_common_arguments
from ..exec import ProgressEvent, make_executor, using_executor
from .registry import (
    describe,
    experiment_ids,
    get_runner,
    paper_scale_kwargs,
    quick_scale_kwargs,
    supports_cc_kwarg,
    supports_sweep_kwargs,
)


def _parse_n_values(text: str) -> tuple:
    try:
        values = tuple(int(n) for n in text.split(",") if n.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("expected at least one flow count")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables/figures of the DCTCP+ paper (ICPP'15).",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (e.g. fig7)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--rounds", type=int, default=None, help="incast rounds per seed")
    parser.add_argument("--seeds", type=int, default=None, help="number of seeds")
    parser.add_argument(
        "--n-values",
        type=_parse_n_values,
        default=None,
        metavar="N1,N2,...",
        help="comma-separated flow counts for sweep experiments",
    )
    parser.add_argument(
        "--cc",
        action="append",
        metavar="NAME",
        help="congestion-control strategy for experiments taking a field "
        "(repeatable; the arena accepts registry names and external:<policy>)",
    )
    common = add_common_arguments(
        parser,
        quick=True,
        quick_help="smoke-scale configuration (CI; driver-declared or a "
        "generic rounds/seeds reduction)",
        workers=True,
        cache_dir=True,
        validate=True,
    )
    common.add_argument(
        "--paper", action="store_true", help="paper-scale configuration (slow)"
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the per-point progress lines on stderr",
    )
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of a table"
    )
    return parser


def _kwargs_for(experiment: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if args.cc:
        if not supports_cc_kwarg(experiment):
            raise SystemExit(
                f"python -m repro experiments: {experiment!r} does not take --cc"
            )
        kwargs["ccs"] = tuple(args.cc)
    if not supports_sweep_kwargs(experiment):
        if args.paper:
            kwargs.update(paper_scale_kwargs(experiment))
        elif args.quick:
            kwargs.update(quick_scale_kwargs(experiment))
        return kwargs
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.seeds is not None:
        kwargs["seeds"] = tuple(range(1, args.seeds + 1))
    if args.n_values is not None:
        kwargs["n_values"] = args.n_values
    if args.paper:
        kwargs.setdefault("rounds", 100)
        kwargs.setdefault("seeds", tuple(range(1, 11)))
        for key, value in paper_scale_kwargs(experiment).items():
            kwargs.setdefault(key, value)
    if args.quick:
        for key, value in quick_scale_kwargs(experiment).items():
            kwargs.setdefault(key, value)
        kwargs.setdefault("rounds", 2)
        kwargs.setdefault("seeds", (1,))
    return kwargs


def _print_progress(event: ProgressEvent) -> None:
    status = (
        "cached"
        if event.cached
        else f"{event.result.wall_time_s:.1f}s {event.result.events_processed / 1e6:.1f}M events"
    )
    # A failing cache (full disk, read-only dir) must be visible, not a
    # mystery 0% hit rate on the next run.
    errors = (
        f" !cache-write-errors={event.cache_write_errors}" if event.cache_write_errors else ""
    )
    print(
        f"[{event.done}/{event.total}] {event.spec.label()}: "
        f"{event.result.goodput_mbps:.1f} Mbps ({status}){errors}",
        file=sys.stderr,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.paper and args.quick:
        parser.error("--paper and --quick are mutually exclusive")
    if args.list or not args.experiment:
        for experiment_id in experiment_ids():
            print(describe(experiment_id))
        return 0
    runner = get_runner(args.experiment)
    kwargs = _kwargs_for(args.experiment, args)
    # Exports --validate/--workers/--cache-dir to the environment so worker
    # processes inherit the choices.
    apply_common_arguments(args)
    executor = make_executor(
        workers=args.workers,
        cache_dir=args.cache_dir,
        progress=None if args.no_progress else _print_progress,
    )
    started = time.perf_counter()
    with using_executor(executor):
        result = runner(**kwargs)
    elapsed = time.perf_counter() - started
    if args.json:
        print(result.to_json())
    elif args.csv:
        sys.stdout.write(result.to_csv())
    else:
        print(result.to_text())
        print(f"\n[{elapsed:.1f}s wall clock]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
