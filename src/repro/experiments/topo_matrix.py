"""Topology × workload matrix: the DCTCP vs DCTCP+ comparison beyond the
paper's testbed.

Every cell of {two-tier, dumbbell, fat-tree} × {incast, http, swarm} runs
both protocols at one fan-out and reports goodput, p99 completion time
and the trace-derived timeout taxonomy — answering whether the paper's
conclusions survive topology and application shape changes:

- **dumbbell** gives the flows deliberately heterogeneous RTTs (access
  legs from 6 to 48 µs) competing for one trunk;
- **fat-tree** (k=4, 2 hosts/edge, 16 hosts) spreads the same traffic
  over seeded deterministic ECMP with real path diversity;
- **http** replaces the barrier-synchronized incast with independent
  closed request/response loops, and **swarm** makes every host both a
  server and a client at once.

Expected headline: DCTCP+'s advantage concentrates where fan-in
concentrates (incast on every topology); closed-loop and many-to-many
traffic are gentler, so the two protocols converge there.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..tcp.cc import get_cc
from ..telemetry.taxonomy import timeout_taxonomy
from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "topo-matrix"
TITLE = "topology x workload matrix — DCTCP vs DCTCP+ beyond the testbed"

#: The matrix varies topology/workload, not the fan-in sweep, so the CLI's
#: generic --n-values/--rounds/--seeds plumbing does not apply.
SUPPORTS_SWEEP_KWARGS = False

TOPOLOGIES: Sequence[str] = ("two-tier", "dumbbell", "fat-tree")
WORKLOADS: Sequence[str] = ("incast", "http", "swarm")

#: Per-topology TopologyParams overrides: heterogeneous dumbbell legs, a
#: k=4 fat-tree with 2 hosts per edge switch.  two-tier keeps builder
#: defaults — its point stays byte-identical to the historical runs.
TOPOLOGY_OVERRIDES: Dict[str, Optional[dict]] = {
    "two-tier": None,
    "dumbbell": dict(n_pairs=4, leg_delays_ns=(6_000, 12_000, 24_000, 48_000)),
    "fat-tree": dict(fat_tree_k=4, hosts_per_edge=2),
}

PAPER_SCALE_KWARGS = dict(n_flows=32, rounds=10, seeds=(1, 2, 3))
#: ``--quick`` (CI smoke): the full 3 x 3 x 2 matrix at tiny scale.
QUICK_KWARGS = dict(n_flows=4, rounds=2, seeds=(1,))


def run(
    n_flows: int = 8,
    rounds: int = 5,
    seeds: Sequence[int] = (1,),
    protocols: Sequence[str] = ("dctcp", "dctcp+"),
) -> ExperimentResult:
    requests = [
        dict(
            protocol=protocol,
            n_flows=n_flows,
            rounds=rounds,
            seeds=seeds,
            trace=True,
            topology=topology,
            workload=workload,
            topo=TOPOLOGY_OVERRIDES[topology],
        )
        for topology in TOPOLOGIES
        for workload in WORKLOADS
        for protocol in protocols
    ]
    points = run_incast_batch(requests)

    rows = []
    for request, point in zip(requests, points):
        taxonomy = timeout_taxonomy(point.trace_events)
        rows.append(
            [
                request["topology"],
                request["workload"],
                get_cc(request["protocol"]).label,
                round(point.goodput_mbps, 1),
                round(point.fct_p99_ms, 2),
                point.timeouts,
                taxonomy.get("FLOSS", 0),
                taxonomy.get("LACK", 0),
                point.bad_rounds,
            ]
        )

    notes = [
        f"{len(TOPOLOGIES)}x{len(WORKLOADS)}x{len(protocols)} matrix, "
        f"N={n_flows}, {rounds} rounds x {len(seeds)} seed(s) per cell",
        "dumbbell: 4 pairs, heterogeneous 6/12/24/48 us access legs; "
        "fat-tree: k=4, 2 hosts/edge, seeded flow-level ECMP",
        "n_flows maps onto each workload's fan-out (incast flows / http "
        "clients / swarm peers), rounds onto its repetition count",
        "expected: DCTCP+ shines where fan-in concentrates (incast); the "
        "closed-loop shapes are gentler and the protocols converge",
    ]
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        [
            "topology",
            "workload",
            "CC",
            "goodput (Mbps)",
            "p99 FCT (ms)",
            "timeouts",
            "FLoss-TO",
            "LAck-TO",
            "bad rounds",
        ],
        rows,
        notes=notes,
    )
