"""Fig. 8 — DCTCP+ (default 200 ms RTO) vs DCTCP and TCP with RTO_min = 10 ms.

The fair-comparison check: shrinking RTO_min to 10 ms lifts DCTCP's and
TCP's post-collapse goodput (timeouts cost 20x less), yet DCTCP+ with the
*default* RTO still outperforms both because it avoids the timeouts
altogether rather than recovering from them faster.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "fig8"
TITLE = "DCTCP+ (RTO 200 ms) vs DCTCP/TCP with RTO_min = 10 ms"


def run(
    n_values: Sequence[int] = (20, 40, 60, 80, 120, 160, 200),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    common = dict(rounds=rounds, seeds=seeds)
    points = run_incast_batch(
        [
            request
            for n in n_values
            for request in (
                dict(protocol="dctcp+", n_flows=n, min_cwnd_mss=1.0, **common),
                dict(protocol="dctcp", n_flows=n, rto_min_ms=10.0, min_cwnd_mss=1.0, **common),
                dict(protocol="tcp", n_flows=n, rto_min_ms=10.0, **common),
            )
        ]
    )
    rows = []
    for i, n in enumerate(n_values):
        plus, dctcp, tcp = points[3 * i : 3 * i + 3]
        rows.append(
            [
                n,
                round(plus.goodput_mbps, 1),
                round(dctcp.goodput_mbps, 1),
                round(tcp.goodput_mbps, 1),
            ]
        )
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["N", "DCTCP+ 200ms RTO (Mbps)", "DCTCP 10ms RTO (Mbps)", "TCP 10ms RTO (Mbps)"],
        rows,
        notes=[
            "expected shape: the 10 ms RTO lifts DCTCP/TCP well above the",
            "200 ms-RTO floor, but DCTCP+ stays on top without any RTO tuning",
        ],
    )
