"""Fig. 14 — Switch-1 queue length over time, DCTCP+, N = 50, 4 MB each.

The convergence-speed caveat (Section VII): DCTCP+ cannot act in the
first RTTs because no congestion feedback exists yet, so the buffer
overflows during the initial rounds before slow_time converges.  The
paper plots the 100 µs queue samples and observes overflow in the first
five rounds.

We report the per-round peak queue and drop counts plus a coarse
time-series, which shows the same signature: early peaks at the buffer
limit, then a regulated queue.
"""

from __future__ import annotations

from typing import List

from ..metrics.queue_sampler import QueueSampler
from ..net.topology import build_two_tier
from ..sim.engine import Simulator
from ..workloads.incast import IncastConfig, IncastWorkload
from .common import ExperimentResult, make_spec

EXPERIMENT_ID = "fig14"
TITLE = "Queue vs time: DCTCP+ convergence, N=50, 4 MB per flow"
#: One fixed time-series simulation — no (n_values, rounds, seeds).
SUPPORTS_SWEEP_KWARGS = False


def run(
    n_flows: int = 50,
    bytes_per_flow: int = 4 * 1024 * 1024,
    rounds: int = 3,
    seed: int = 1,
    max_events: int = 800_000_000,
) -> ExperimentResult:
    sim = Simulator(seed=seed)
    tree = build_two_tier(sim)
    sampler = QueueSampler(sim, tree.bottleneck_port)
    sampler.start()
    spec = make_spec("dctcp+", min_cwnd_mss=1.0)
    config = IncastConfig(n_flows=n_flows, bytes_per_flow=bytes_per_flow, n_rounds=rounds)
    workload = IncastWorkload(sim, tree, spec, config)

    drop_marks: List[int] = []
    prev_drops = [0]

    def on_round(result):
        drops = tree.bottleneck_port.queue.dropped_packets
        drop_marks.append(drops - prev_drops[0])
        prev_drops[0] = drops

    workload.on_round_end = on_round
    workload.run_to_completion(max_events=max_events)
    sampler.stop()

    # Coarse time series: peak queue within consecutive 5 ms windows.
    rows = []
    t_ms, q_kb = sampler.time_series_kb()
    window_ms = 5.0
    if len(t_ms):
        end = t_ms[-1]
        start = 0.0
        idx = 0
        while start < end and len(rows) < 80:
            stop = start + window_ms
            peak = 0.0
            while idx < len(t_ms) and t_ms[idx] < stop:
                peak = max(peak, q_kb[idx])
                idx += 1
            rows.append([round(start, 1), round(peak, 1)])
            start = stop

    notes = [
        f"per-round drops at the bottleneck: {drop_marks}",
        "expected shape: queue pinned at ~128 KB with drops in the first",
        "round(s); later rounds regulated well below the buffer limit",
    ]
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        ["t (ms, 5 ms windows)", "peak queue (KB)"],
        rows,
        notes=notes,
    )
