"""Experiment registry: id -> driver module.

``python -m repro.experiments <id>`` resolves through here; benches import
the same drivers so the bench and the CLI always run identical code.
"""

from __future__ import annotations

from typing import Callable

from . import (
    arena,
    control_demo,
    fig01_goodput_collapse,
    fig02_cwnd_distribution,
    fig06_partial_dctcp_plus,
    fig07_full_dctcp_plus,
    fig08_rto_10ms,
    fig09_queue_cdf,
    fig11_12_background,
    fig13_benchmark,
    fig14_initial_rounds,
    table1_timeout_taxonomy,
    topo_matrix,
)
from .common import ExperimentResult

_MODULES = {
    "fig1": fig01_goodput_collapse,
    "fig2": fig02_cwnd_distribution,
    "table1": table1_timeout_taxonomy,
    "fig6": fig06_partial_dctcp_plus,
    "fig7": fig07_full_dctcp_plus,
    "fig8": fig08_rto_10ms,
    "fig9": fig09_queue_cdf,
    "fig11": fig11_12_background,
    "fig12": fig11_12_background,  # same driver reports both panels
    "fig13": fig13_benchmark,
    "fig14": fig14_initial_rounds,
    "arena": arena,
    "topo-matrix": topo_matrix,
    "control-demo": control_demo,
}


def experiment_ids() -> list:
    """All registered experiment ids, in paper order."""
    return list(_MODULES.keys())


def get_runner(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable for an experiment id."""
    try:
        return _MODULES[experiment_id].run
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {experiment_ids()}"
        ) from None


def describe(experiment_id: str) -> str:
    module = _MODULES[experiment_id]
    suffix = (
        ""
        if experiment_id == module.EXPERIMENT_ID
        else f" (shares the {module.EXPERIMENT_ID} driver)"
    )
    return f"{experiment_id}: {module.TITLE}{suffix}"


def supports_sweep_kwargs(experiment_id: str) -> bool:
    """Whether the driver accepts the (n_values, rounds, seeds) sweep kwargs.

    Drivers opt out by setting ``SUPPORTS_SWEEP_KWARGS = False`` (fig13's
    benchmark mix and fig14's single time series have their own knobs);
    the CLI uses this instead of hard-coding experiment ids.
    """
    module = _MODULES[experiment_id]
    return getattr(module, "SUPPORTS_SWEEP_KWARGS", True)


def supports_cc_kwarg(experiment_id: str) -> bool:
    """Whether the driver takes a ``ccs`` strategy field (``--cc`` flags).

    Drivers opt in with ``SUPPORTS_CC_KWARG = True`` (the arena's
    competitor field, the control demo's policy set).
    """
    module = _MODULES[experiment_id]
    return getattr(module, "SUPPORTS_CC_KWARG", False)


def paper_scale_kwargs(experiment_id: str) -> dict:
    """Extra kwargs the driver wants under ``--paper`` (beyond the generic
    rounds/seeds scale-up), declared as ``PAPER_SCALE_KWARGS`` on the module."""
    module = _MODULES[experiment_id]
    return dict(getattr(module, "PAPER_SCALE_KWARGS", {}))


def quick_scale_kwargs(experiment_id: str) -> dict:
    """Kwargs for a smoke-scale run under ``--quick``, declared as
    ``QUICK_KWARGS`` on the module (empty when the driver declares none —
    the CLI then falls back to a generic rounds/seeds reduction)."""
    module = _MODULES[experiment_id]
    return dict(getattr(module, "QUICK_KWARGS", {}))
