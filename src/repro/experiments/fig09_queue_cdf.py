"""Fig. 9 — CDF of Switch-1 queue length at N = 30, 50, 80.

The queue behind the aggregator's port is sampled every 100 µs.  Paper
result: from N = 30 on, DCTCP+ holds a visibly shorter and more stable
queue than DCTCP, and both stay far below TCP's full-buffer operation.
"""

from __future__ import annotations

from typing import Sequence

from ..metrics.stats import cdf_at
from .common import ExperimentResult, run_incast_batch

EXPERIMENT_ID = "fig9"
TITLE = "CDF of bottleneck queue length (KB), 100 us samples"

#: queue-occupancy thresholds (KB) where the CDF is reported
THRESHOLDS_KB = (0, 8, 16, 24, 32, 48, 64, 96, 120, 128)


def run(
    n_values: Sequence[int] = (30, 50, 80),
    rounds: int = 20,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    requests = [
        dict(
            protocol=protocol,
            n_flows=n,
            rounds=rounds,
            seeds=seeds,
            sample_queue=True,
            min_cwnd_mss=1.0 if protocol == "dctcp+" else None,
        )
        for n in n_values
        for protocol in ("dctcp+", "dctcp", "tcp")
    ]
    headers = ["queue <= KB"]
    columns = []
    for request, point in zip(requests, run_incast_batch(requests)):
        probs = cdf_at([q / 1024.0 for q in point.queue_samples_bytes], THRESHOLDS_KB)
        headers.append(f"{request['protocol']}/N={request['n_flows']}")
        columns.append(probs)
    rows = []
    for i, kb in enumerate(THRESHOLDS_KB):
        row: list = [kb]
        for col in columns:
            row.append(round(col[i], 3))
        rows.append(row)
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=[
            "expected shape: DCTCP+'s CDF rises earlier (shorter queue) than",
            "DCTCP's from N=30 on; TCP operates near the 128 KB buffer limit",
        ],
    )
