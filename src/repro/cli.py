"""Shared command-line plumbing for the ``python -m repro`` subcommands.

Every subcommand used to declare its own ``--workers`` / ``--cache-dir`` /
``--validate`` / ``--quick`` / ``--seed`` flags, with the help strings and
environment-variable plumbing drifting apart.  This module is the single
definition: :func:`add_common_arguments` installs the requested subset
into an argparse parser (one "common options" group, identical wording
everywhere) and :func:`apply_common_arguments` performs the shared side
effects — exporting ``--validate`` / ``--workers`` / ``--cache-dir`` to
the environment variables worker processes inherit
(``REPRO_VALIDATE`` / ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``).

Flags stay ordinary attributes on the parsed namespace (``args.workers``,
``args.quick``, ...), so subcommands keep consuming them exactly as
before; only the declaration and the env export are centralized.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from .exec.context import CACHE_DIR_ENV, WORKERS_ENV

VALIDATE_ENV = "REPRO_VALIDATE"


def add_common_arguments(
    parser: argparse.ArgumentParser,
    *,
    seed: bool = False,
    seed_default: Optional[int] = 1,
    seed_help: str = "scenario seed (default: %(default)s)",
    quick: bool = False,
    quick_help: str = "reduced smoke-scale configuration (what CI runs)",
    workers: bool = False,
    cache_dir: bool = False,
    validate: bool = True,
) -> argparse._ArgumentGroup:
    """Install the shared flags this subcommand supports; returns the group.

    The group is returned so a subcommand can append its own related flags
    (e.g. ``experiments`` adds ``--paper`` next to ``--quick``).
    """
    group = parser.add_argument_group("common options")
    if seed:
        group.add_argument("--seed", type=int, default=seed_default, help=seed_help)
    if quick:
        group.add_argument("--quick", action="store_true", help=quick_help)
    if workers:
        group.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help=f"parallel scenario workers (default: ${WORKERS_ENV} or serial)",
        )
    if cache_dir:
        group.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help=f"cache finished points as JSON under DIR (default: ${CACHE_DIR_ENV})",
        )
    if validate:
        group.add_argument(
            "--validate",
            action="store_true",
            help="attach the repro.validate invariant checker to every "
            f"simulation (slower; sets {VALIDATE_ENV}=1 so workers inherit it)",
        )
    return group


def apply_common_arguments(args: argparse.Namespace) -> None:
    """Export the parsed common flags to the worker-inherited environment.

    Safe on any namespace: flags the subcommand didn't request are simply
    absent and skipped.  ``--workers`` / ``--cache-dir`` are exported *and*
    left on the namespace — subcommands that build their own executor keep
    passing them explicitly; everything else (and worker processes) reads
    the environment.
    """
    if getattr(args, "validate", False):
        os.environ[VALIDATE_ENV] = "1"
    workers = getattr(args, "workers", None)
    if workers is not None:
        os.environ[WORKERS_ENV] = str(workers)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = str(cache_dir)
