"""repro.sweep — the million-point sweep service.

The substrate for parameter studies far beyond what per-figure drivers
carry (ROADMAP item 3: the DCTCP+ phase-boundary study over
N × RTOmin × K × buffer):

- :class:`SweepSpec` — declarative grid / seeded-random sweeps over the
  scenario axes, expanded to deterministic :class:`~repro.exec.ScenarioSpec`
  lists; :func:`shard_points` partitions them disjointly and exhaustively
  by content-key hash (``--shard i/n``).
- :class:`SweepStore` — content-addressed columnar result store (SQLite,
  WAL) speaking the executor cache protocol, with a one-shot importer for
  legacy JSON :class:`~repro.exec.ResultCache` directories, conflict-safe
  :meth:`~SweepStore.merge_from`, bulk columnar reads
  (:meth:`~SweepStore.to_rows` / :meth:`~SweepStore.to_csv`) and
  byte-deterministic canonical snapshots.
- :func:`run_sweep` — resumable, incremental orchestration: only missing
  keys run, in bounded chunks, with progress/ETA flowing through the
  telemetry :class:`~repro.telemetry.Collector` protocol
  (:class:`SweepProgress`).
- ``python -m repro sweep {run,status,merge,import,export}`` — the CLI.
"""

from .orchestrator import SweepProgress, SweepReport, plan_sweep, run_sweep, sweep_status
from .spec import (
    AXES,
    PRESETS,
    SweepSpec,
    SweepSpecError,
    parse_shard,
    preset,
    shard_index,
    shard_points,
)
from .store import COLUMNS, StoreError, SweepStore, import_legacy_cache

__all__ = [
    "SweepSpec",
    "SweepSpecError",
    "AXES",
    "PRESETS",
    "preset",
    "shard_index",
    "shard_points",
    "parse_shard",
    "SweepStore",
    "StoreError",
    "COLUMNS",
    "import_legacy_cache",
    "SweepProgress",
    "SweepReport",
    "run_sweep",
    "plan_sweep",
    "sweep_status",
]
