"""Declarative sweep specifications: grid and seeded-random point sets.

A :class:`SweepSpec` describes a whole parameter study — which axes vary
(N, RTOmin, the ECN marking threshold K, the switch buffer, the CC
strategy, the seed) and how — as pure data.  ``points()`` expands it to a
deterministic, ordered list of :class:`~repro.exec.ScenarioSpec`, so the
same spec file names the same million points on every host, every run.

Two expansion modes:

- ``grid``   — the cartesian product of every axis's value list, in a
  fixed axis order (the order of :data:`AXES`), values in listed order.
- ``random`` — ``samples`` points drawn by a ``random.Random(sample_seed)``
  stream; each axis is either a value list (uniform choice) or a numeric
  range ``{"min": lo, "max": hi, "scale": "linear"|"log", "round": bool}``.
  The draw sequence is fixed by the spec alone, so random sweeps resume
  and shard exactly like grids.

Sharding partitions points by **content key**, not position:
``shard_index(spec, n)`` buckets each point by its
:meth:`~repro.exec.ScenarioSpec.cache_key` hash.  The buckets are
disjoint and exhaustive by construction, and stable under reordering,
resumption, or renumbering the shard count — every property
``tests/test_sweep_spec.py`` pins.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exec.scenario import ScenarioSpec

#: Bumped whenever the expansion semantics change shape, so a sweep-spec
#: digest never collides across incompatible expansions.
SWEEP_SCHEMA_VERSION = 1

#: The axes a sweep may vary, in the fixed order grids expand them.
#: Each maps a declarative name onto :meth:`ScenarioSpec.create` knobs.
AXES: Tuple[str, ...] = (
    "protocol",
    "cc",
    "topology",
    "workload",
    "n_flows",
    "rto_min_ms",
    "min_cwnd_mss",
    "ecn_threshold_bytes",
    "buffer_bytes",
    "seed",
)

#: Axes whose values must be integers (floats are rejected, not truncated).
_INT_AXES = frozenset({"n_flows", "ecn_threshold_bytes", "buffer_bytes", "seed"})

#: Axes whose values are names rather than numbers.
_STR_AXES = frozenset({"protocol", "cc", "topology", "workload"})

AxisValues = Union[Sequence[object], Mapping[str, object]]


class SweepSpecError(ValueError):
    """A sweep spec that cannot be expanded (unknown axis, bad range...)."""


def _is_range(values: AxisValues) -> bool:
    return isinstance(values, Mapping)


def _check_range(axis: str, spec: Mapping[str, object]) -> None:
    unknown = set(spec) - {"min", "max", "scale", "round"}
    if unknown:
        raise SweepSpecError(f"axis {axis!r}: unknown range keys {sorted(unknown)}")
    if "min" not in spec or "max" not in spec:
        raise SweepSpecError(f"axis {axis!r}: a range needs 'min' and 'max'")
    lo, hi = spec["min"], spec["max"]
    if not (isinstance(lo, (int, float)) and isinstance(hi, (int, float))) or lo > hi:
        raise SweepSpecError(f"axis {axis!r}: bad range [{lo!r}, {hi!r}]")
    scale = spec.get("scale", "linear")
    if scale not in ("linear", "log"):
        raise SweepSpecError(f"axis {axis!r}: scale must be 'linear' or 'log', got {scale!r}")
    if scale == "log" and lo <= 0:
        raise SweepSpecError(f"axis {axis!r}: log scale needs min > 0, got {lo!r}")


def _check_values(axis: str, values: Sequence[object]) -> None:
    if not values:
        raise SweepSpecError(f"axis {axis!r}: empty value list")
    for v in values:
        if axis in _STR_AXES:
            if not isinstance(v, str):
                raise SweepSpecError(f"axis {axis!r}: expected strings, got {v!r}")
        elif isinstance(v, bool) or not isinstance(v, (int, float)):
            raise SweepSpecError(f"axis {axis!r}: expected numbers, got {v!r}")
        elif axis in _INT_AXES and not isinstance(v, int):
            raise SweepSpecError(f"axis {axis!r}: expected integers, got {v!r}")


def _draw(axis: str, values: AxisValues, rng: random.Random) -> object:
    """One seeded draw from a value list or a numeric range."""
    if not _is_range(values):
        return values[rng.randrange(len(values))]
    lo, hi = float(values["min"]), float(values["max"])
    if values.get("scale", "linear") == "log":
        sample = math.exp(rng.uniform(math.log(lo), math.log(hi)))
    else:
        sample = rng.uniform(lo, hi)
    if values.get("round", axis in _INT_AXES):
        return max(int(values["min"]), min(int(values["max"]), round(sample)))
    return sample


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter study over :data:`AXES`.

    ``axes`` maps axis names to either value lists (grid or random) or —
    in random mode — numeric range mappings.  Axes that are absent keep
    the :class:`ScenarioSpec` default (``protocol`` falls back to the
    spec-level ``protocol`` field, ``seed`` to 1).
    """

    name: str
    mode: str = "grid"
    protocol: str = "dctcp+"
    rounds: int = 20
    axes: Mapping[str, AxisValues] = field(default_factory=dict)
    #: random mode: how many points to draw, and from which stream.
    samples: int = 0
    sample_seed: int = 1

    def __post_init__(self):
        if self.mode not in ("grid", "random"):
            raise SweepSpecError(f"mode must be 'grid' or 'random', got {self.mode!r}")
        if self.rounds < 1:
            raise SweepSpecError(f"rounds must be >= 1, got {self.rounds}")
        unknown = set(self.axes) - set(AXES)
        if unknown:
            raise SweepSpecError(f"unknown axes {sorted(unknown)}; valid: {list(AXES)}")
        for axis, values in self.axes.items():
            if _is_range(values):
                if self.mode == "grid":
                    raise SweepSpecError(
                        f"axis {axis!r}: ranges need mode='random' (grids take value lists)"
                    )
                _check_range(axis, values)
            else:
                _check_values(axis, list(values))
        if self.mode == "random" and self.samples < 1:
            raise SweepSpecError(f"random mode needs samples >= 1, got {self.samples}")

    # -- codec -----------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        known = {"name", "mode", "protocol", "rounds", "axes", "samples", "sample_seed"}
        unknown = set(data) - known
        if unknown:
            raise SweepSpecError(f"unknown sweep-spec keys {sorted(unknown)}")
        if "name" not in data:
            raise SweepSpecError("a sweep spec needs a 'name'")
        return cls(
            name=str(data["name"]),
            mode=str(data.get("mode", "grid")),
            protocol=str(data.get("protocol", "dctcp+")),
            rounds=int(data.get("rounds", 20)),
            axes=dict(data.get("axes", {})),
            samples=int(data.get("samples", 0)),
            sample_seed=int(data.get("sample_seed", 1)),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SweepSpecError(f"{path}: not valid JSON ({exc})") from None
        if not isinstance(data, Mapping):
            raise SweepSpecError(f"{path}: expected a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "mode": self.mode,
            "protocol": self.protocol,
            "rounds": self.rounds,
            "axes": {k: (dict(v) if _is_range(v) else list(v)) for k, v in self.axes.items()},
            "samples": self.samples,
            "sample_seed": self.sample_seed,
        }

    def digest(self) -> str:
        """Stable content digest of the spec + expansion schema version.

        Two processes (or hosts) holding the same spec file must agree on
        this digest — ``tests/test_sweep_spec.py`` pins it across a
        subprocess the same way the golden digests are pinned.
        """
        payload = self.to_dict()
        payload["__sweep_schema__"] = SWEEP_SCHEMA_VERSION
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- expansion -------------------------------------------------------------
    def _make_point(self, assignment: Mapping[str, object]) -> ScenarioSpec:
        topo: Dict[str, object] = {}
        if "ecn_threshold_bytes" in assignment:
            topo["ecn_threshold_bytes"] = assignment["ecn_threshold_bytes"]
        if "buffer_bytes" in assignment:
            topo["buffer_bytes"] = assignment["buffer_bytes"]
        return ScenarioSpec.create(
            protocol=str(assignment.get("protocol", self.protocol)),
            n_flows=int(assignment.get("n_flows", 16)),
            rounds=self.rounds,
            seed=int(assignment.get("seed", 1)),
            rto_min_ms=assignment.get("rto_min_ms"),
            min_cwnd_mss=assignment.get("min_cwnd_mss"),
            topo=topo or None,
            cc=str(assignment.get("cc", "")),
            topology=str(assignment.get("topology", "two-tier")),
            workload=str(assignment.get("workload", "incast")),
        )

    def points(self) -> List[ScenarioSpec]:
        """Expand to scenario points, deterministically ordered."""
        if self.mode == "grid":
            return self._grid_points()
        return self._random_points()

    def _grid_points(self) -> List[ScenarioSpec]:
        varying = [axis for axis in AXES if axis in self.axes]
        assignments: List[Dict[str, object]] = [{}]
        for axis in varying:
            values = list(self.axes[axis])
            assignments = [
                dict(a, **{axis: v}) for a in assignments for v in values
            ]
        return [self._make_point(a) for a in assignments]

    def _random_points(self) -> List[ScenarioSpec]:
        rng = random.Random(self.sample_seed)
        varying = [axis for axis in AXES if axis in self.axes]
        out: List[ScenarioSpec] = []
        for _ in range(self.samples):
            assignment = {axis: _draw(axis, self.axes[axis], rng) for axis in varying}
            out.append(self._make_point(assignment))
        return out

    def point_count(self) -> int:
        """Number of points ``points()`` will produce (cheap for grids)."""
        if self.mode == "random":
            return self.samples
        count = 1
        for axis in self.axes:
            count *= len(self.axes[axis])
        return count


# -- shard partitioning ------------------------------------------------------------
def shard_index(point: ScenarioSpec, n_shards: int) -> int:
    """Which of ``n_shards`` buckets owns this point.

    Buckets by the point's content key, so the partition is a pure
    function of (point, n): disjoint, exhaustive, independent of the
    order points are enumerated in and of which process asks.
    """
    if n_shards < 1:
        raise SweepSpecError(f"shard count must be >= 1, got {n_shards}")
    return int(point.cache_key(), 16) % n_shards


def shard_points(
    points: Sequence[ScenarioSpec], shard: Optional[Tuple[int, int]]
) -> List[ScenarioSpec]:
    """Filter ``points`` down to one shard; ``None`` keeps everything."""
    if shard is None:
        return list(points)
    index, total = shard
    if not 0 <= index < total:
        raise SweepSpecError(f"shard index {index} outside 0..{total - 1}")
    return [p for p in points if shard_index(p, total) == index]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse the CLI's ``i/n`` shard syntax (0-based index)."""
    try:
        index_text, total_text = text.split("/", 1)
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise SweepSpecError(f"expected shard as 'i/n' (e.g. 0/4), got {text!r}") from None
    if total < 1 or not 0 <= index < total:
        raise SweepSpecError(f"shard {text!r} out of range (need 0 <= i < n)")
    return index, total


# -- presets -----------------------------------------------------------------------
#: Named sweeps usable without a spec file (``--preset``).  ``ci-512`` is
#: the CI smoke grid (512 tiny points, ~10 s serial); ``phase-1m`` is the
#: ROADMAP item-3 target — a 1,036,800-point DCTCP+ phase-boundary study.
PRESETS: Dict[str, Dict[str, object]] = {
    "ci-512": {
        "name": "ci-512",
        "mode": "grid",
        "protocol": "dctcp+",
        "rounds": 1,
        "axes": {
            "protocol": ["dctcp", "dctcp+"],
            "n_flows": [2, 3, 4, 6],
            "rto_min_ms": [10.0, 200.0],
            "ecn_threshold_bytes": [16384, 32768],
            "buffer_bytes": [65536, 131072],
            "seed": [1, 2, 3, 4, 5, 6, 7, 8],
        },
    },
    "ci-random-64": {
        "name": "ci-random-64",
        "mode": "random",
        "protocol": "dctcp+",
        "rounds": 1,
        "samples": 64,
        "sample_seed": 7,
        "axes": {
            "protocol": ["dctcp", "dctcp+"],
            "n_flows": {"min": 2, "max": 8, "scale": "log", "round": True},
            "rto_min_ms": {"min": 1.0, "max": 200.0, "scale": "log"},
            "buffer_bytes": [65536, 131072],
            "seed": [1, 2, 3, 4],
        },
    },
    # 2 x 27 x 12 x 10 x 10 x 16 = 1,036,800 points: where does DCTCP+
    # collapse begin as N x RTOmin x K x buffer vary (Figs. 9-13 pushed
    # to a full phase-boundary map)?
    "phase-1m": {
        "name": "phase-1m",
        "mode": "grid",
        "protocol": "dctcp+",
        "rounds": 20,
        "axes": {
            "protocol": ["dctcp", "dctcp+"],
            "n_flows": [
                8, 12, 16, 24, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256,
                320, 384, 448, 512, 640, 768, 896, 1024, 1280, 1536, 1792, 2048,
            ],
            "rto_min_ms": [
                1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0,
            ],
            "ecn_threshold_bytes": [
                4096, 8192, 16384, 24576, 32768, 40960, 49152, 65536, 81920, 98304,
            ],
            "buffer_bytes": [
                32768, 65536, 98304, 131072, 163840, 196608, 262144, 327680, 393216, 524288,
            ],
            "seed": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
        },
    },
}


def preset(name: str) -> SweepSpec:
    """Look up a named built-in sweep."""
    try:
        return SweepSpec.from_dict(PRESETS[name])
    except KeyError:
        raise SweepSpecError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
