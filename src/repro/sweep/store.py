"""Content-addressed columnar result store (SQLite, WAL mode).

One database file replaces the one-JSON-file-per-point
:class:`~repro.exec.cache.ResultCache` for sweep-scale studies: a single
``points`` table keyed by :meth:`ScenarioSpec.cache_key`, holding the
canonical spec/result JSON *plus* flat scalar columns (protocol, N, seed,
goodput, FCT, timeouts, ...) so a million-point study is one indexed
``SELECT`` away from analysis instead of a million file opens.

The store implements the executor cache protocol (``get``/``put`` with
``hits``/``misses``/``write_errors`` counters), so
:class:`~repro.exec.SerialExecutor`/:class:`~repro.exec.ParallelExecutor`
and every figure driver use it unchanged — pass a ``SweepStore`` wherever
a ``ResultCache`` went.

Durability + identity model:

- every ``put`` is its own committed transaction (WAL journal), so a run
  killed mid-flight loses at most the in-flight point, and a resumed run
  continues from the store alone;
- the stored spec/result text is **canonical JSON** (sorted keys, no
  whitespace), so the logical content of two stores is comparable as
  bytes: :meth:`content_digest` hashes rows in key order, independent of
  insertion order, and :meth:`export_canonical` rebuilds a fresh database
  by inserting rows in key order — two stores with equal content export
  byte-identical files (what the ``sweep-smoke`` CI job asserts for
  interrupted-vs-uninterrupted and sharded-vs-merged runs).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exec.cache import ResultCache
from ..exec.scenario import PointResult, ScenarioSpec

#: Bumped whenever the table layout changes; a store carrying a different
#: format refuses to open rather than silently misreading columns.
STORE_FORMAT = 1

#: The flat analysis columns, in schema order.  ``key`` addresses content;
#: ``spec``/``result`` carry the lossless canonical JSON; the rest are
#: denormalized scalars for bulk reads (:meth:`SweepStore.to_rows`).
COLUMNS = (
    "key",
    "protocol",
    "cc",
    "n_flows",
    "seed",
    "rounds",
    "goodput_mbps",
    "fct_ms",
    "fct_p99_ms",
    "timeouts",
    "bad_rounds",
    "events_processed",
    "wall_time_s",
)

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS points (
    key TEXT PRIMARY KEY,
    protocol TEXT NOT NULL,
    cc TEXT NOT NULL,
    n_flows INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    rounds INTEGER NOT NULL,
    goodput_mbps REAL NOT NULL,
    fct_ms REAL NOT NULL,
    fct_p99_ms REAL NOT NULL,
    timeouts INTEGER NOT NULL,
    bad_rounds INTEGER NOT NULL,
    events_processed INTEGER NOT NULL,
    wall_time_s REAL NOT NULL,
    spec TEXT NOT NULL,
    result TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT NOT NULL) WITHOUT ROWID;
INSERT OR IGNORE INTO meta VALUES ('format', '{STORE_FORMAT}');
"""


class StoreError(RuntimeError):
    """A store that cannot be used (wrong format, conflicting merge...)."""


def canonical_json(payload: object) -> str:
    """The one JSON encoding stores compare by: sorted keys, no spaces."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _point_row(spec: ScenarioSpec, result: PointResult) -> Tuple[object, ...]:
    # wall_time_s is host metadata, not simulation output (PointResult
    # already excludes it from equality).  It lives only in its own
    # column; the canonical result JSON zeroes it so two stores filled by
    # different runs of the same points agree byte-for-byte.
    result_dict = result.to_dict()
    result_dict["wall_time_s"] = 0.0
    return (
        spec.cache_key(),
        spec.protocol,
        spec.cc,
        spec.n_flows,
        spec.seed,
        spec.rounds,
        result.goodput_mbps,
        result.fct_ms,
        result.fct_p99_ms,
        result.timeouts,
        result.bad_rounds,
        result.events_processed,
        result.wall_time_s,
        canonical_json(spec.to_dict()),
        canonical_json(result_dict),
    )


_INSERT = "INSERT OR REPLACE INTO points VALUES (" + ",".join("?" * 15) + ")"


class SweepStore:
    """SQLite-backed result store, drop-in for the executor cache slot."""

    def __init__(self, path: Union[str, Path], wal: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0
        # Autocommit connection; each put wraps its own BEGIN IMMEDIATE /
        # COMMIT so a kill -9 can only ever lose the in-flight point.
        self._conn = sqlite3.connect(self.path, isolation_level=None, timeout=60.0)
        if wal:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        fmt = self._conn.execute("SELECT v FROM meta WHERE k='format'").fetchone()
        if fmt is None or fmt[0] != str(STORE_FORMAT):
            raise StoreError(
                f"{self.path}: store format {fmt[0] if fmt else '?'} != {STORE_FORMAT}"
            )

    # -- executor cache protocol ----------------------------------------------
    def get(self, spec: ScenarioSpec) -> Optional[PointResult]:
        """Decode the stored result for ``spec``, or None on any miss.

        Any failure — absent key, spec collision, corrupt row, dead
        backend — degrades to exactly one counted miss, mirroring the
        JSON cache's contract.
        """
        try:
            row = self._conn.execute(
                "SELECT spec, result, wall_time_s FROM points WHERE key=?",
                (spec.cache_key(),),
            ).fetchone()
            if row is None or json.loads(row[0]) != spec.to_dict():
                raise ValueError("store miss or spec mismatch")
            result = PointResult.from_dict(json.loads(row[1]))
            # The canonical JSON zeroes wall time; rebind the measured
            # value from its column so hits still report their cost.
            result.wall_time_s = row[2]
        except (sqlite3.Error, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ScenarioSpec, result: PointResult) -> None:
        """Insert one point in its own committed transaction (best effort).

        Like :meth:`ResultCache.put`, failure degrades to "no cache" —
        but it is *counted* in ``write_errors``, which the executors
        surface on their stderr progress line, so a full disk cannot
        masquerade as a 0% hit rate.
        """
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(_INSERT, _point_row(spec, result))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        except (sqlite3.Error, OSError):
            self.write_errors += 1

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM points").fetchone()[0]

    # -- addressing ------------------------------------------------------------
    def keys(self) -> List[str]:
        """Every stored content key, sorted."""
        return [r[0] for r in self._conn.execute("SELECT key FROM points ORDER BY key")]

    def has_key(self, key: str) -> bool:
        return (
            self._conn.execute("SELECT 1 FROM points WHERE key=?", (key,)).fetchone()
            is not None
        )

    def missing(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioSpec]:
        """The subset of ``specs`` not yet stored (the orchestrator's work list)."""
        return [s for s in specs if not self.has_key(s.cache_key())]

    # -- bulk columnar reads ----------------------------------------------------
    def to_rows(self, columns: Sequence[str] = COLUMNS) -> List[Tuple[object, ...]]:
        """Bulk-read the flat analysis columns, ordered by key."""
        unknown = set(columns) - set(COLUMNS)
        if unknown:
            raise StoreError(f"unknown columns {sorted(unknown)}; valid: {list(COLUMNS)}")
        sql = f"SELECT {', '.join(columns)} FROM points ORDER BY key"
        return list(self._conn.execute(sql))

    def to_csv(self, columns: Sequence[str] = COLUMNS) -> str:
        """The flat columns as CSV text (header + one line per point)."""
        lines = [",".join(columns)]
        for row in self.to_rows(columns):
            lines.append(",".join(repr(c) if isinstance(c, float) else str(c) for c in row))
        return "\n".join(lines) + "\n"

    def iter_points(self) -> Iterator[Tuple[str, Dict[str, object], PointResult]]:
        """Yield ``(key, spec_dict, result)`` in key order (lossless decode)."""
        for key, spec_text, result_text in self._conn.execute(
            "SELECT key, spec, result FROM points ORDER BY key"
        ):
            yield key, json.loads(spec_text), PointResult.from_dict(json.loads(result_text))

    # -- identity ---------------------------------------------------------------
    def content_digest(self) -> str:
        """SHA-256 over ``key\\nspec\\nresult`` rows in key order.

        A pure function of the stored *content*: two stores filled in any
        order (resumed, sharded-and-merged, imported) with the same points
        agree, regardless of SQLite page layout.
        """
        digest = hashlib.sha256()
        for key, spec_text, result_text in self._conn.execute(
            "SELECT key, spec, result FROM points ORDER BY key"
        ):
            digest.update(f"{key}\n{spec_text}\n{result_text}\n".encode())
        return digest.hexdigest()

    # -- one-shot importer for legacy JSON cache directories ---------------------
    def import_json_cache(self, directory: Union[str, Path]) -> Tuple[int, int]:
        """Ingest a legacy :class:`ResultCache` directory; (imported, skipped).

        Every well-formed ``<key>.json`` entry becomes a store row under
        its embedded spec's key; corrupt or mismatched entries are skipped
        (they were cache misses in the old world too).
        """
        directory = Path(directory)
        imported = skipped = 0
        for entry_path in sorted(directory.glob("*.json")):
            try:
                with entry_path.open("r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                spec = _spec_from_dict(entry["spec"])
                if spec.cache_key() != entry_path.stem:
                    raise ValueError("entry key does not match its spec")
                result = PointResult.from_dict(entry["result"])
            except (OSError, ValueError, KeyError, TypeError, AttributeError):
                skipped += 1
                continue
            before = self.write_errors
            self.put(spec, result)
            if self.write_errors == before:
                imported += 1
            else:
                skipped += 1
        return imported, skipped

    def verify_json_cache(self, directory: Union[str, Path]) -> List[str]:
        """Cross-check a legacy cache against the store; return mismatch keys.

        For every decodable legacy entry, the store must report a *hit*
        with an identical :class:`PointResult` (the CI compatibility leg).
        """
        legacy = ResultCache(directory)
        mismatches: List[str] = []
        for entry_path in sorted(Path(directory).glob("*.json")):
            try:
                with entry_path.open("r", encoding="utf-8") as fh:
                    spec = _spec_from_dict(json.load(fh)["spec"])
            except (OSError, ValueError, KeyError, TypeError, AttributeError):
                continue
            expected = legacy.get(spec)
            if expected is None or self.get(spec) != expected:
                mismatches.append(spec.cache_key())
        return mismatches

    # -- merge -------------------------------------------------------------------
    def merge_from(self, other: "SweepStore") -> Tuple[int, int]:
        """Copy every point of ``other`` into this store; (added, present).

        A key held by both stores must carry identical content — sharded
        runs partition disjointly and reruns are deterministic, so a
        conflicting row means corruption or mixed code versions, and the
        merge refuses rather than guessing.
        """
        added = present = 0
        rows = other._conn.execute(
            "SELECT " + ", ".join(COLUMNS) + ", spec, result FROM points ORDER BY key"
        )
        for row in rows:
            key, spec_text, result_text = row[0], row[-2], row[-1]
            mine = self._conn.execute(
                "SELECT spec, result FROM points WHERE key=?", (key,)
            ).fetchone()
            if mine is not None:
                if mine != (spec_text, result_text):
                    raise StoreError(f"merge conflict on key {key[:16]}…: content differs")
                present += 1
                continue
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(_INSERT, row)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            added += 1
        return added, present

    # -- canonical export ---------------------------------------------------------
    def export_canonical(self, path: Union[str, Path]) -> None:
        """Write a byte-deterministic snapshot database to ``path``.

        Rows are inserted in key order into a fresh non-WAL database with
        a fixed page size, then the connection closes cleanly — so the
        output bytes are a function of content alone.  Two stores whose
        :meth:`content_digest` agree export identical files (CI ``cmp``'s
        them).
        """
        path = Path(path)
        if path.exists():
            path.unlink()
        out = sqlite3.connect(path, isolation_level=None)
        try:
            out.execute("PRAGMA page_size=4096")
            out.execute("PRAGMA journal_mode=MEMORY")
            out.executescript(_SCHEMA)
            out.execute("BEGIN")
            for row in self._conn.execute(
                "SELECT " + ", ".join(COLUMNS) + ", spec, result FROM points ORDER BY key"
            ):
                # Zero the wall_time_s column (index 12): it is the one
                # run-dependent cell, and the snapshot's contract is
                # "equal content => equal bytes".
                row = row[:12] + (0.0,) + row[13:]
                out.execute(_INSERT, row)
            out.execute("COMMIT")
        finally:
            out.close()

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """One ``{"key":…,"spec":…,"result":…}`` line per point, key order."""
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            for key, spec_text, result_text in self._conn.execute(
                "SELECT key, spec, result FROM points ORDER BY key"
            ):
                fh.write(f'{{"key":"{key}","spec":{spec_text},"result":{result_text}}}\n')
                count += 1
        return count

    # -- lifecycle ----------------------------------------------------------------
    def checkpoint(self) -> None:
        """Fold the WAL back into the main database file."""
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        try:
            self.checkpoint()
        except sqlite3.Error:
            pass
        self._conn.close()

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepStore({str(self.path)!r}, points={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, write_errors={self.write_errors})"
        )


def _spec_from_dict(data: Dict[str, object]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its ``to_dict`` form."""
    kwargs = dict(data)
    for field_name, value in kwargs.items():
        if isinstance(value, list):
            kwargs[field_name] = tuple(tuple(pair) for pair in value)
    return ScenarioSpec(**kwargs)


def import_legacy_cache(
    store_path: Union[str, Path], cache_dir: Union[str, Path]
) -> Tuple[int, int]:
    """Convenience one-shot: open/create a store and ingest a JSON cache."""
    with SweepStore(store_path) as store:
        return store.import_json_cache(cache_dir)
