"""The sweep orchestrator: resumable, incremental, sharded execution.

:func:`run_sweep` turns a :class:`~repro.sweep.spec.SweepSpec` plus a
:class:`~repro.sweep.store.SweepStore` into finished points:

1. expand the spec to its deterministic point list;
2. drop points owned by other shards (``shard=(i, n)`` partitions by
   content-key hash — see :func:`~repro.sweep.spec.shard_points`);
3. drop points the store already holds (**resume**: a killed run left its
   finished points committed, so a fresh process continues mid-flight
   from the store alone);
4. run the rest in bounded chunks through a normal executor with the
   store in its cache slot, so results commit as they finish and memory
   stays flat at million-point scale.

Progress is a :class:`~repro.telemetry.Collector`:
:class:`SweepProgress` subscribes to the executor's progress callback,
keeps tabular rows (exportable through the standard telemetry CSV/JSONL
surface), and renders a stderr line with an ETA derived from the mean
simulated wall time of completed points — no wall-clock reads, so the
no-wallclock lint holds for the whole sweep layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..exec.executors import Executor, ProgressEvent
from ..exec.scenario import ScenarioSpec
from ..telemetry.collector import Collector
from .spec import SweepSpec, shard_points
from .store import SweepStore

#: Points handed to the executor per batch.  Small enough that results
#: (and their trace payloads) never pile up in memory, large enough to
#: keep a process pool saturated.
DEFAULT_CHUNK = 256


class SweepProgress(Collector):
    """Telemetry collector over sweep progress, with a stderr ETA line.

    One row per completed point, in completion order.  ``eta_s`` is an
    estimate of the *remaining compute* — mean wall seconds per freshly
    computed point times points left, divided by the worker count — and
    is ``-1`` until the first fresh point lands (cache hits carry no
    timing signal for this run's hardware).
    """

    def __init__(self, total: int, workers: int = 1, stream=None, every: int = 1):
        self.total = total
        self.workers = max(1, workers)
        self.stream = stream
        self.every = max(1, every)
        self.done = 0
        self.cached = 0
        self.fresh_wall_s = 0.0
        self._rows: List[Tuple[object, ...]] = []

    # -- Collector protocol -----------------------------------------------------
    def schema(self) -> Tuple[str, ...]:
        return ("done", "total", "key", "label", "goodput_mbps", "cached", "wall_s", "eta_s")

    def rows(self) -> List[Tuple[object, ...]]:
        return self._rows

    # -- executor progress callback ---------------------------------------------
    def eta_s(self) -> float:
        fresh = self.done - self.cached
        if fresh <= 0:
            return -1.0
        per_point = self.fresh_wall_s / fresh
        return per_point * (self.total - self.done) / self.workers

    def __call__(self, event: ProgressEvent) -> None:
        self.done += 1
        if event.cached:
            self.cached += 1
        else:
            self.fresh_wall_s += event.result.wall_time_s
        eta = self.eta_s()
        self._rows.append(
            (
                self.done,
                self.total,
                event.spec.cache_key(),
                event.spec.label(),
                event.result.goodput_mbps,
                event.cached,
                event.result.wall_time_s,
                eta,
            )
        )
        if self.stream is not None and (
            self.done % self.every == 0 or self.done == self.total
        ):
            status = "cached" if event.cached else f"{event.result.wall_time_s:.2f}s"
            eta_text = f" eta {_format_eta(eta)}" if eta >= 0 else ""
            errors = (
                f" !cache-write-errors={event.cache_write_errors}"
                if event.cache_write_errors
                else ""
            )
            print(
                f"[sweep {self.done}/{self.total}] {event.spec.label()}: "
                f"{event.result.goodput_mbps:.1f} Mbps ({status}){eta_text}{errors}",
                file=self.stream,
            )


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


@dataclass(frozen=True)
class SweepReport:
    """What one :func:`run_sweep` invocation did."""

    sweep: str
    digest: str
    total_points: int
    shard_points: int
    already_stored: int
    computed: int
    cache_hits: int
    write_errors: int
    store_points: int

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def plan_sweep(
    spec: SweepSpec,
    store: SweepStore,
    shard: Optional[Tuple[int, int]] = None,
) -> Tuple[List[ScenarioSpec], List[ScenarioSpec]]:
    """Expand + shard + diff against the store; (shard_points, missing)."""
    owned = shard_points(spec.points(), shard)
    return owned, store.missing(owned)


def run_sweep(
    spec: SweepSpec,
    store: SweepStore,
    executor: Executor,
    shard: Optional[Tuple[int, int]] = None,
    progress: Optional[SweepProgress] = None,
    chunk: int = DEFAULT_CHUNK,
    limit: Optional[int] = None,
) -> SweepReport:
    """Run every missing point of ``spec``'s shard into ``store``.

    The executor's cache slot is pointed at the store for the duration,
    so finished points commit as they complete and a second concurrent
    get()-before-run stays cheap.  ``limit`` bounds how many missing
    points this invocation computes (the CI kill/resume smoke uses it to
    stop a run "mid-flight" deterministically).
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    owned, missing = plan_sweep(spec, store, shard)
    already = len(owned) - len(missing)
    if limit is not None:
        missing = missing[:limit]
    if progress is not None:
        progress.total = len(missing)
    previous_cache = executor.cache
    hits_before = store.hits
    errors_before = store.write_errors
    executor.cache = store
    executor.progress = progress if progress is not None else executor.progress
    try:
        for start in range(0, len(missing), chunk):
            executor.map(missing[start : start + chunk])
    finally:
        executor.cache = previous_cache
    return SweepReport(
        sweep=spec.name,
        digest=spec.digest(),
        total_points=spec.point_count(),
        shard_points=len(owned),
        already_stored=already,
        computed=len(missing) - (store.hits - hits_before),
        cache_hits=store.hits - hits_before,
        write_errors=store.write_errors - errors_before,
        store_points=len(store),
    )


def sweep_status(
    spec: Optional[SweepSpec],
    store: SweepStore,
    shard: Optional[Tuple[int, int]] = None,
) -> dict:
    """Completion stats: stored points, and coverage vs a spec if given."""
    status: dict = {
        "store_points": len(store),
        "content_digest": store.content_digest(),
    }
    if spec is not None:
        owned, missing = plan_sweep(spec, store, shard)
        status.update(
            sweep=spec.name,
            digest=spec.digest(),
            total_points=spec.point_count(),
            shard_points=len(owned),
            done=len(owned) - len(missing),
            missing=len(missing),
        )
    return status
