"""CLI: ``python -m repro sweep {run,status,merge,import,export}``.

The sweep service's front door::

    # run a named preset (or --spec file.json) into a store, sharded
    python -m repro sweep run --preset ci-512 --store s.sqlite --shard 0/2

    # how far along is the store vs the spec?
    python -m repro sweep status --preset ci-512 --store s.sqlite

    # combine shard stores into one
    python -m repro sweep merge --into all.sqlite a.sqlite b.sqlite

    # one-shot ingest of a legacy JSON ResultCache directory
    python -m repro sweep import --store s.sqlite .exp-cache --verify

    # bulk columnar reads / canonical snapshots
    python -m repro sweep export --store s.sqlite --csv points.csv
    python -m repro sweep export --store s.sqlite --db canonical.sqlite

Every subcommand honours ``--store`` (default ``$REPRO_SWEEP_STORE`` or
``sweep.sqlite``); ``run`` takes the umbrella's ``--workers`` through the
usual ``REPRO_WORKERS`` environment or its own flag.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..cli import add_common_arguments, apply_common_arguments
from ..exec.context import make_executor
from .orchestrator import SweepProgress, run_sweep, sweep_status
from .spec import PRESETS, SweepSpec, SweepSpecError, parse_shard, preset
from .store import StoreError, SweepStore

#: Environment fallback for ``--store``.
STORE_ENV = "REPRO_SWEEP_STORE"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Million-point sweep service: run, resume, shard, merge, export.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p, required=False):
        p.add_argument(
            "--store",
            default=None,
            metavar="DB",
            help=f"SQLite result store (default: ${STORE_ENV} or sweep.sqlite)",
        )

    def add_spec(p):
        group = p.add_mutually_exclusive_group()
        group.add_argument("--spec", metavar="FILE", help="declarative sweep spec (JSON)")
        group.add_argument(
            "--preset",
            metavar="NAME",
            choices=sorted(PRESETS),
            help=f"built-in sweep ({', '.join(sorted(PRESETS))})",
        )
        p.add_argument(
            "--shard",
            metavar="i/n",
            default=None,
            help="run/report only the points whose key-hash lands in shard i of n",
        )

    run_p = sub.add_parser("run", help="run every missing point of a sweep into the store")
    add_store(run_p)
    add_spec(run_p)
    add_common_arguments(run_p, workers=True)
    run_p.add_argument("--chunk", type=int, default=None, metavar="N", help=argparse.SUPPRESS)
    run_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="compute at most N missing points then stop (kill/resume testing)",
    )
    run_p.add_argument("--no-progress", action="store_true")
    run_p.add_argument(
        "--progress-every", type=int, default=1, metavar="N", help=argparse.SUPPRESS
    )
    run_p.add_argument("--json", action="store_true", help="print the run report as JSON")

    status_p = sub.add_parser("status", help="points stored, coverage vs a spec, digest")
    add_store(status_p)
    add_spec(status_p)
    status_p.add_argument("--json", action="store_true")

    merge_p = sub.add_parser("merge", help="fold shard stores into one store")
    merge_p.add_argument("--into", required=True, metavar="DB", help="destination store")
    merge_p.add_argument("sources", nargs="+", metavar="DB", help="source stores")

    import_p = sub.add_parser(
        "import", help="one-shot ingest of a legacy JSON ResultCache directory"
    )
    add_store(import_p)
    import_p.add_argument("cache_dir", metavar="DIR", help="legacy cache directory")
    import_p.add_argument(
        "--verify",
        action="store_true",
        help="after importing, require every legacy entry to be a store hit "
        "with an identical result (exit 1 otherwise)",
    )

    export_p = sub.add_parser("export", help="bulk columnar reads / canonical snapshots")
    add_store(export_p)
    export_p.add_argument("--csv", metavar="FILE", help="flat analysis columns as CSV")
    export_p.add_argument("--jsonl", metavar="FILE", help="lossless key/spec/result JSONL")
    export_p.add_argument(
        "--db",
        metavar="FILE",
        help="canonical SQLite snapshot (byte-deterministic for equal content)",
    )
    export_p.add_argument("--digest", action="store_true", help="print the content digest")

    return parser


def _store_path(args) -> str:
    return args.store or os.environ.get(STORE_ENV) or "sweep.sqlite"


def _load_spec(args) -> Optional[SweepSpec]:
    if args.spec:
        return SweepSpec.from_file(args.spec)
    if args.preset:
        return preset(args.preset)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    apply_common_arguments(args)
    try:
        return _dispatch(args)
    except (SweepSpecError, StoreError) as exc:
        print(f"repro-sweep: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "run":
        spec = _load_spec(args)
        if spec is None:
            raise SweepSpecError("run needs --spec FILE or --preset NAME")
        shard = parse_shard(args.shard) if args.shard else None
        workers = args.workers
        if workers is None:
            raw = os.environ.get("REPRO_WORKERS", "").strip()
            workers = int(raw) if raw else 1
        executor = make_executor(workers=workers)
        with SweepStore(_store_path(args)) as store:
            progress = None
            if not args.no_progress:
                progress = SweepProgress(
                    total=0, workers=workers, stream=sys.stderr, every=args.progress_every
                )
            kwargs = {} if args.chunk is None else {"chunk": args.chunk}
            report = run_sweep(
                spec, store, executor, shard=shard, progress=progress,
                limit=args.limit, **kwargs,
            )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(
                f"sweep {report.sweep}: {report.computed} computed, "
                f"{report.already_stored} already stored, "
                f"{report.shard_points}/{report.total_points} points in shard, "
                f"{report.store_points} in store"
            )
        if report.write_errors:
            print(
                f"repro-sweep: {report.write_errors} store writes FAILED "
                "(full disk?) — those points will re-run next time",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.command == "status":
        spec = _load_spec(args)
        shard = parse_shard(args.shard) if args.shard else None
        with SweepStore(_store_path(args)) as store:
            status = sweep_status(spec, store, shard=shard)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            lines = [f"store: {_store_path(args)} ({status['store_points']} points)"]
            lines.append(f"content digest: {status['content_digest']}")
            if spec is not None:
                lines.append(
                    f"sweep {status['sweep']}: {status['done']}/{status['shard_points']} "
                    f"shard points done ({status['missing']} missing; "
                    f"{status['total_points']} total in sweep)"
                )
            print("\n".join(lines))
        return 0

    if args.command == "merge":
        with SweepStore(args.into) as dest:
            total_added = total_present = 0
            for source in args.sources:
                if not os.path.exists(source):
                    raise StoreError(f"source store not found: {source}")
                with SweepStore(source) as src:
                    added, present = dest.merge_from(src)
                total_added += added
                total_present += present
            print(
                f"merged {len(args.sources)} stores into {args.into}: "
                f"{total_added} added, {total_present} already present, "
                f"{len(dest)} total"
            )
        return 0

    if args.command == "import":
        if not os.path.isdir(args.cache_dir):
            raise StoreError(f"not a cache directory: {args.cache_dir}")
        with SweepStore(_store_path(args)) as store:
            imported, skipped = store.import_json_cache(args.cache_dir)
            print(f"imported {imported} points, skipped {skipped}, {len(store)} in store")
            if args.verify:
                mismatches = store.verify_json_cache(args.cache_dir)
                if mismatches:
                    for key in mismatches:
                        print(f"repro-sweep: VERIFY FAILED for key {key}", file=sys.stderr)
                    return 1
                print(f"verified {imported} imported points: all store hits, identical results")
        return 0

    # export
    path = _store_path(args)
    if not os.path.exists(path):
        raise StoreError(f"store not found: {path}")
    with SweepStore(path) as store:
        wrote_any = False
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(store.to_csv())
            print(f"wrote {len(store)} rows to {args.csv}")
            wrote_any = True
        if args.jsonl:
            count = store.export_jsonl(args.jsonl)
            print(f"wrote {count} points to {args.jsonl}")
            wrote_any = True
        if args.db:
            store.export_canonical(args.db)
            print(f"wrote canonical snapshot to {args.db}")
            wrote_any = True
        if args.digest or not wrote_any:
            print(store.content_digest())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
