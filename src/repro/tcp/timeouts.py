"""Timeout taxonomy from Zhang et al. (ICNP'13), used by the paper's Table I.

When an RTO fires, the stall is classified by what the sender heard since
the retransmission timer was last armed:

- **FLoss-TO** (*full window loss*): every packet of the outstanding window
  was lost — the sender received *no* ACK at all, so nothing could trigger
  data-driven recovery.
- **LAck-TO** (*lack of ACKs*): some packets survived and generated ACKs,
  but fewer than ``dupack_threshold`` duplicates arrived, so fast
  retransmit never fired and the timer expired anyway.
"""

from __future__ import annotations

from enum import Enum


class TimeoutKind(Enum):
    """Why the retransmission timer expired."""

    FLOSS = "FLoss-TO"
    LACK = "LAck-TO"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def from_label(cls, label: str) -> "TimeoutKind":
        """Parse a taxonomy label ("FLoss-TO" / "LAck-TO") back to a kind.

        Trace records carry the label (the ``detail`` column of ``rto``
        events), so the telemetry layer round-trips through this.
        """
        for kind in cls:
            if kind.value == label:
                return kind
        raise ValueError(f"unknown timeout label {label!r}")


def classify_timeout(acks_heard_since_armed: int) -> TimeoutKind:
    """Classify an expired RTO from the sender's ACK bookkeeping.

    ``acks_heard_since_armed`` counts every ACK (new or duplicate) for the
    flow received since the retransmission timer was last (re)started.
    """
    return TimeoutKind.FLOSS if acks_heard_since_armed == 0 else TimeoutKind.LACK
