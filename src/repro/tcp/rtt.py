"""RFC 6298 round-trip-time estimation.

Maintains SRTT/RTTVAR and derives the retransmission timeout.  Karn's
algorithm (never sample a retransmitted segment) is enforced by the sender,
which only calls :meth:`RttEstimator.add_sample` for clean segments.
"""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """SRTT/RTTVAR tracker producing RFC 6298 RTO values (integer ns)."""

    __slots__ = ("srtt_ns", "rttvar_ns", "rto_min_ns", "rto_max_ns", "rto_initial_ns", "samples")

    #: RFC 6298 gains: alpha = 1/8, beta = 1/4.
    ALPHA = 0.125
    BETA = 0.25
    #: Clock granularity term G is negligible at ns resolution; RFC's
    #: ``max(G, K*rttvar)`` reduces to ``K*rttvar`` with K = 4.
    K = 4

    def __init__(
        self,
        rto_min_ns: int,
        rto_max_ns: int,
        rto_initial_ns: int,
        seed_rtt_ns: Optional[int] = None,
    ):
        self.rto_min_ns = rto_min_ns
        self.rto_max_ns = rto_max_ns
        self.rto_initial_ns = rto_initial_ns
        self.srtt_ns: Optional[float] = None
        self.rttvar_ns: float = 0.0
        self.samples = 0
        if seed_rtt_ns is not None:
            self.add_sample(seed_rtt_ns)

    def add_sample(self, rtt_ns: int) -> None:
        """Fold one clean RTT measurement into the estimator."""
        if rtt_ns < 0:
            raise ValueError(f"negative RTT sample: {rtt_ns}")
        if self.srtt_ns is None:
            self.srtt_ns = float(rtt_ns)
            self.rttvar_ns = rtt_ns / 2.0
        else:
            err = abs(self.srtt_ns - rtt_ns)
            self.rttvar_ns = (1 - self.BETA) * self.rttvar_ns + self.BETA * err
            self.srtt_ns = (1 - self.ALPHA) * self.srtt_ns + self.ALPHA * rtt_ns
        self.samples += 1

    @property
    def rto_ns(self) -> int:
        """Current RTO (before exponential backoff), clamped to the bounds."""
        if self.srtt_ns is None:
            base = self.rto_initial_ns
        else:
            base = int(self.srtt_ns + self.K * self.rttvar_ns)
        return max(self.rto_min_ns, min(self.rto_max_ns, base))

    def backed_off_rto_ns(self, backoff_exponent: int) -> int:
        """RTO after ``backoff_exponent`` consecutive expirations."""
        rto = self.rto_ns << max(0, backoff_exponent)
        return min(self.rto_max_ns, rto)
