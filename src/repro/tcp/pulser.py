"""Pulser-style explicit incast notification (after arXiv:1809.09751).

Pulser's observation: ECN marking reacts to *queue depth*, which under a
massive synchronized fan-in is already too late — by the time the marks
come back as ECE the buffer has overflowed.  Pulser instead has the
switch detect the *onset* of an incast burst and broadcast an explicit
signal that senders treat as an order to back off multiplicatively,
right now, without waiting for the alpha estimate to catch up.

The model here keeps the repo's packet-level fidelity:

- the bottleneck queue gets an ``inc_threshold_bytes`` above the ECN knee
  (:func:`install_incast_notification`); any packet that arrives to find
  the occupancy past it is stamped with the ``inc`` bit;
- the receiver echoes ``inc`` on its next ACK (piggybacked, like ECE);
- :class:`PulserSender` — DCTCP plus the incast reaction — halves its
  window at most once per window of data when an ``inc`` echo arrives,
  on top of the normal DCTCP alpha machinery.

The per-window guard mirrors DCTCP's own once-per-RTT reduction rule:
one fan-in burst produces one multiplicative backoff, not one per ACK.
"""

from __future__ import annotations

from ..net.topology import TwoTierTree
from .dctcp import DctcpSender
from .events import CC_INC_ECHO, CCEvent

#: Multiplicative backoff applied on an incast-onset echo.
INC_BACKOFF_FACTOR = 0.5


def install_incast_notification(tree: TwoTierTree) -> None:
    """Arm the bottleneck queue's incast-onset detector.

    The threshold sits at twice the ECN marking point (capped at 3/4 of
    the buffer): occupancy past the knee *and still climbing* is the
    fan-in signature, while ordinary DCTCP steady-state marking around K
    must not trip it.  Queues without ECN use half the buffer.
    """
    queue = tree.bottleneck_port.queue
    ecn_threshold = queue.ecn_threshold_bytes
    if ecn_threshold is not None:
        threshold = min(2 * ecn_threshold, (queue.capacity_bytes * 3) // 4)
    else:
        threshold = queue.capacity_bytes // 2
    queue.inc_threshold_bytes = threshold


class PulserSender(DctcpSender):
    """DCTCP + multiplicative backoff on the switch's incast-onset signal."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: sequence guard: at most one incast backoff per window of data.
        self._inc_guard_seq = 0
        self.inc_acks_received = 0
        self.incast_backoffs = 0

    def on_ecn_echo(self, ev: CCEvent) -> None:
        if ev.kind is CC_INC_ECHO:
            self.inc_acks_received += 1
            self._on_incast_signal()
            return
        super().on_ecn_echo(ev)

    def _on_incast_signal(self) -> None:
        if self.snd_una < self._inc_guard_seq:
            return  # already backed off for this window of data
        cfg = self.config
        floor = cfg.min_cwnd_bytes
        self.cwnd = self._quantize_down(self.cwnd * INC_BACKOFF_FACTOR, floor)
        self.ssthresh = max(self.cwnd, floor)
        self._ca_bytes_acked = 0.0
        self._inc_guard_seq = self.snd_nxt
        self.incast_backoffs += 1

    def on_rto(self, ev: CCEvent) -> None:
        # The window was lost; the guard must not outlive the go-back-N
        # rewind or the first post-recovery signal would be ignored.
        self._inc_guard_seq = self.snd_una
        super().on_rto(ev)
