"""Pluggable congestion-control strategies.

Historically each protocol variant was a hardcoded branch of
``ProtocolSpec.make_sender`` plus an inheritance lattice (DCTCP+ on
DCTCP, D2TCP mixed into both).  This module replaces the dispatch with a
registry of :class:`CongestionControl` descriptors: a strategy is a named
sender factory plus the metadata the rest of the stack needs (ECN stance,
whether the slow_time law applies, deadline awareness, an optional
network-side installation hook).  The sender classes themselves are
unchanged — a strategy *wraps* one, it does not reimplement it — so
registering a new competitor is a dozen lines and no subclassing of the
protocol plumbing.

Builtins are bound here, in the paper's presentation order, so the
registry contents never depend on which module a caller imported first.
Factories import their sender lazily to keep this module import-cycle
free (``repro.core`` imports ``repro.tcp`` but not vice versa).

Example — registering an external strategy::

    from repro.tcp.cc import CongestionControl, register

    register(CongestionControl(
        name="my-cc", label="MyCC", ecn=True,
        factory=lambda sim, host, dst, fid, tcp, plus, done, deadline:
            MySender(sim, host, dst, fid, config=tcp, on_complete=done),
    ))

After registration the name works everywhere a protocol string does:
``spec_for("my-cc")``, ``ScenarioSpec.create(cc="my-cc", ...)``, the
fuzzer, and the arena experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import DctcpPlusConfig
    from ..net.host import Host
    from ..net.topology import TwoTierTree
    from ..sim.engine import Simulator
    from .config import TcpConfig
    from .sender import TcpSender

#: factory(sim, host, dst_node_id, flow_id, tcp_config, plus_config,
#:         on_complete, deadline_ns) -> TcpSender
SenderFactory = Callable[..., "TcpSender"]


@dataclass(frozen=True)
class CongestionControl:
    """One registered congestion-control strategy.

    Attributes
    ----------
    name:
        Registry key; the protocol string used by specs, CLI and cache keys.
    label:
        Display name matching the paper's figures.
    factory:
        Builds the sender endpoint; receives the resolved
        (tcp_config, plus_config) pair and may ignore either.
    ecn:
        Whether the strategy runs with ECN-capable transport.  Strategies
        with ``ecn=False`` (plain New Reno) have it forced off.
    slow_time:
        Whether the paper's slow_time enhancement law is active — i.e. the
        plus config is consumed and its cwnd floor overrides the transport's.
    deadline_aware:
        Whether the factory honours ``deadline_ns`` (D2TCP family).
    install_network:
        Optional hook run once per scenario against the built topology
        (Pulser arms the bottleneck's incast-notification threshold here).
        Must be deterministic; it runs in worker processes too.
    description:
        One line for ``--list``-style surfaces and the arena notes.
    """

    name: str
    label: str
    factory: SenderFactory
    ecn: bool = True
    slow_time: bool = False
    deadline_aware: bool = False
    install_network: Optional[Callable[["TwoTierTree"], None]] = None
    description: str = ""

    def build(
        self,
        sim: "Simulator",
        host: "Host",
        dst_node_id: int,
        flow_id: int,
        tcp_config: Optional["TcpConfig"] = None,
        plus_config: Optional["DctcpPlusConfig"] = None,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        deadline_ns: Optional[int] = None,
    ) -> "TcpSender":
        """Instantiate the sender endpoint for this strategy."""
        from ..core.config import DctcpPlusConfig
        from .config import TcpConfig

        return self.factory(
            sim,
            host,
            dst_node_id,
            flow_id,
            tcp_config if tcp_config is not None else TcpConfig(),
            plus_config if plus_config is not None else DctcpPlusConfig(),
            on_complete,
            deadline_ns,
        )


_REGISTRY: Dict[str, CongestionControl] = {}

#: Names with this prefix resolve to :mod:`repro.control` scripted
#: policies (``external:<policy>``).  They are *not* entries in the
#: registry — ``cc_names()`` stays exactly the builtins, so default
#: strategy fields (e.g. the arena's) never grow implicitly — but
#: :func:`get_cc` resolves them on demand, so the full spec/cache/sweep/
#: fuzzer pipeline accepts them anywhere a strategy name flows.
EXTERNAL_PREFIX = "external:"

#: Resolved external descriptors, cached by full name (kept separate from
#: ``_REGISTRY`` so enumeration never sees them).
_EXTERNAL: Dict[str, CongestionControl] = {}


def register(cc: CongestionControl, *, replace: bool = False) -> CongestionControl:
    """Add a strategy to the registry; returns it for chaining.

    Re-registering an existing name is an error unless ``replace=True``
    (explicit substitution, e.g. an instrumented variant in a test).
    """
    if not replace and cc.name in _REGISTRY:
        raise ValueError(f"congestion control {cc.name!r} is already registered")
    _REGISTRY[cc.name] = cc
    return cc


def unregister(name: str) -> None:
    """Remove a strategy (tests cleaning up after themselves)."""
    _REGISTRY.pop(name, None)


def get_cc(name: str) -> CongestionControl:
    """Look up a strategy by name.

    ``external:<policy>`` names resolve to :mod:`repro.control` scripted
    policies (imported lazily; the import is upward in the layer graph,
    which is why it happens here and not at module scope).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    if name.startswith(EXTERNAL_PREFIX):
        cached = _EXTERNAL.get(name)
        if cached is not None:
            return cached
        from ..control.policies import external_cc

        cc = external_cc(name[len(EXTERNAL_PREFIX):])
        _EXTERNAL[name] = cc
        return cc
    raise ValueError(
        f"unknown congestion control {name!r}; choose from {cc_names()}"
    )


def cc_names() -> Tuple[str, ...]:
    """All registered strategy names, builtins first in paper order."""
    return tuple(_REGISTRY)


def cc_labels() -> Dict[str, str]:
    """name -> display label for every registered strategy."""
    return {name: cc.label for name, cc in _REGISTRY.items()}


# -- builtin strategies -----------------------------------------------------------
def _tcp(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from .sender import TcpSender

    return TcpSender(
        sim, host, dst, fid,
        config=tcp_config.with_overrides(ecn_enabled=False),
        on_complete=on_complete,
    )


def _dctcp(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from .dctcp import DctcpSender

    return DctcpSender(sim, host, dst, fid, config=tcp_config, on_complete=on_complete)


def _dctcp_plus(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from ..core.dctcp_plus import DctcpPlusSender

    return DctcpPlusSender(
        sim, host, dst, fid,
        config=tcp_config, plus_config=plus_config, on_complete=on_complete,
    )


def _tcp_plus(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from ..core.reno_plus import RenoPlusSender

    return RenoPlusSender(
        sim, host, dst, fid,
        config=tcp_config, plus_config=plus_config, on_complete=on_complete,
    )


def _d2tcp(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from .d2tcp import D2tcpSender

    return D2tcpSender(
        sim, host, dst, fid,
        config=tcp_config, on_complete=on_complete, deadline_ns=deadline_ns,
    )


def _d2tcp_plus(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from .d2tcp import D2tcpPlusSender

    return D2tcpPlusSender(
        sim, host, dst, fid,
        config=tcp_config, plus_config=plus_config,
        on_complete=on_complete, deadline_ns=deadline_ns,
    )


def _pulser(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from .pulser import PulserSender

    return PulserSender(sim, host, dst, fid, config=tcp_config, on_complete=on_complete)


def _pulser_install(tree: "TwoTierTree") -> None:
    from .pulser import install_incast_notification

    install_incast_notification(tree)


def _tbtcp(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
    from .tbtcp import TbtcpSender

    return TbtcpSender(sim, host, dst, fid, config=tcp_config, on_complete=on_complete)


register(CongestionControl(
    name="tcp", label="TCP", factory=_tcp, ecn=False,
    description="TCP New Reno, no ECN (the paper's TCP baseline)",
))
register(CongestionControl(
    name="dctcp", label="DCTCP", factory=_dctcp,
    description="DCTCP (Alizadeh et al.)",
))
register(CongestionControl(
    name="dctcp+", label="DCTCP+", factory=_dctcp_plus, slow_time=True,
    description="full DCTCP+ (randomized slow_time regulation)",
))
register(CongestionControl(
    name="dctcp+norand", label="DCTCP+ (no desync)", factory=_dctcp_plus,
    slow_time=True,
    description="partially implemented DCTCP+ (Fig. 6): no randomization",
))
register(CongestionControl(
    name="tcp+", label="TCP+", factory=_tcp_plus, ecn=False, slow_time=True,
    description="New Reno + slow_time regulation (loss-channel driven)",
))
register(CongestionControl(
    name="d2tcp", label="D2TCP", factory=_d2tcp, deadline_aware=True,
    description="deadline-aware DCTCP (Vamanan et al.)",
))
register(CongestionControl(
    name="d2tcp+", label="D2TCP+", factory=_d2tcp_plus, slow_time=True,
    deadline_aware=True,
    description="D2TCP carrying the slow_time enhancement (Section VII)",
))
register(CongestionControl(
    name="pulser", label="Pulser", factory=_pulser,
    install_network=_pulser_install,
    description="DCTCP + explicit incast-onset notification from the switch "
    "(Pulser-style, arXiv:1809.09751)",
))
register(CongestionControl(
    name="tbtcp", label="TBTCP", factory=_tbtcp,
    description="DCTCP paced at cwnd/srtt with a capped window, holding the "
    "bottleneck queue near zero (TBTCP-style, arXiv:1909.05392)",
))
