"""TCP New Reno sender.

Implements the classic loss-based stack the paper uses as its "TCP"
baseline, and serves as the base class for DCTCP and DCTCP+:

- slow start / congestion avoidance (RFC 5681, byte-counted with Linux's
  integer-stepped window growth so cwnd holds steady values like 2 MSS),
- fast retransmit after 3 duplicate ACKs, NewReno fast recovery with
  partial-ACK retransmission (RFC 6582),
- RFC 6298 retransmission timer with exponential backoff and go-back-N on
  expiry,
- Karn's algorithm for RTT sampling,
- timeout classification (FLoss-TO / LAck-TO) for Table I,
- per-transmission ``(cwnd, ECE)`` snapshots for Fig. 2 / Table I,
- an optional pacing gate (used by DCTCP+'s slow_time regulation).

Storage layout: the counters touched per segment (cwnd, ssthresh,
snd_una, snd_nxt, dupacks, the CA byte accumulator) live in the
simulator-owned :class:`~repro.tcp.flowstate.FlowLedger` columns; the
sender holds a slot into them plus compatibility properties, and the hot
methods (`_on_ack` and everything it calls) index the columns directly
with locals — no property dispatch, no repeated attribute chains.
Packets are pooled handles (:mod:`repro.net.pool`); the sender frees the
ACK handle as soon as its fields are read.

Congestion-control surface
--------------------------
Strategies hook in through the typed :class:`~repro.tcp.events.CCEvent`
protocol (see :mod:`repro.tcp.events`):

``on_ack(ev)``               window growth + (in DCTCP) marking bookkeeping
``on_ecn_echo(ev)``          feedback echoes (per-ACK, and the INC bit)
``on_rto(ev)``               reaction to an expired RTO
``on_send_opportunity(ev)``  pacing gate (consulted only with a pacer)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from ..metrics.flowstats import FlowStats
from ..net.host import Host
from ..net.pool import F_ACK, F_ECE, F_INC, PacketPool
from ..sim.engine import Simulator
from .config import TcpConfig
from .events import CC_ACK, CC_ACK_ECHO, CC_INC_ECHO, CC_RTO, CC_SEND, CCEvent
from .flowstate import FlowLedger, ledger_field
from .rtt import RttEstimator
from .timeouts import classify_timeout


class Pacer(Protocol):
    """Transmission gate; DCTCP+ plugs its slow_time regulation in here."""

    def next_send_time(self, now: int) -> int: ...
    def on_sent(self, now: int) -> None: ...


class TcpSender:
    """Source endpoint of one flow (a thin view over the flow ledger)."""

    # Per-segment counters live in the FlowLedger; these properties keep
    # attribute-style access working for subclasses, the invariant
    # checker, metrics and tests.
    cwnd = ledger_field("cwnd")
    ssthresh = ledger_field("ssthresh")
    snd_una = ledger_field("snd_una")
    snd_nxt = ledger_field("snd_nxt")
    dupacks = ledger_field("dupacks")
    _ca_bytes_acked = ledger_field("ca_bytes_acked")

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        config: Optional[TcpConfig] = None,
        stats: Optional[FlowStats] = None,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.dst_node_id = dst_node_id
        self.flow_id = flow_id
        self.config = config or TcpConfig()
        cfg = self.config

        # Ledger slot first: every counter assignment below routes through
        # the compatibility properties into the columns.
        fl = FlowLedger.of(sim)
        self._fl = fl
        self._slot = fl.register()
        self._pool = PacketPool.of(sim)
        # Transmit binding: straight to the NIC port's send when the
        # access link is already attached (skips Host.send's None check
        # and call frame per packet); hosts built link-less fall back to
        # Host.send, which raises the usual error if still detached.
        nic = host.nic
        self._host_send = nic.send if nic is not None else host.send
        self._src_id = host.node_id

        self.total_bytes = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = cfg.init_cwnd_bytes
        self.ssthresh = cfg.init_ssthresh_bytes
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recover = 0
        self._ca_bytes_acked = 0.0  # Linux-style snd_cwnd_cnt analogue

        self.rtt = RttEstimator(cfg.rto_min_ns, cfg.rto_max_ns, cfg.rto_initial_ns, cfg.seed_rtt_ns)
        self.rto_backoff = 0
        self._rto_event = None
        self._acks_since_timer_armed = 0

        #: first-transmission times for outstanding segments (Karn-clean)
        self._segment_send_time: Dict[int, int] = {}
        self._pending_send_event = None

        self.completed = False
        self.closed = False
        self._last_send_time = -1  # kernel lsndtime, for cwnd restart
        #: high-water mark of the window lost at the last RTO; the sender is
        #: in loss recovery (kernel CA_Loss) until snd_una passes it.
        self.rto_recovery_point = 0
        #: ECE flag of the most recent ACK — the "ECE=1 before sending"
        #: state traced for Table I.
        self.last_ack_ece = False

        self.stats = stats or FlowStats(flow_id=flow_id)
        self.stats.flow_id = flow_id
        self.on_complete = on_complete
        self.pacer: Optional[Pacer] = None
        #: the one reusable CC event record, mutated in place per dispatch
        #: (events are transient — see :mod:`repro.tcp.events`).
        self._cc_event = CCEvent()

        host.register_flow(flow_id, self)
        #: bound once; rare-path emits (RTO, retransmit) test it for None,
        #: which is the only tracing cost an untraced sender ever pays.
        self._tracer = sim.tracer
        hooks = sim.hooks
        if hooks is not None:
            hooks.sender_created(self)

    # ------------------------------------------------------------------ app API
    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if self.closed:
            raise RuntimeError("sender is closed")
        if self.stats.start_time_ns < 0:
            self.stats.start_time_ns = self.sim.now
        if self.config.slow_start_after_idle:
            self._maybe_cwnd_restart()
        self.total_bytes += nbytes
        self.stats.total_bytes = self.total_bytes
        self.completed = False
        self._try_send()

    def _maybe_cwnd_restart(self) -> None:
        """Linux ``tcp_cwnd_restart``: decay cwnd after application idle.

        One halving per RTO of idle time, floored at the restart window
        (min of the initial window and the current cwnd); ssthresh is kept.
        """
        if self._last_send_time < 0:
            return
        idle = self.sim.now - self._last_send_time
        rto = self.rtt.rto_ns
        if idle <= rto:
            return
        cfg = self.config
        restart = min(cfg.init_cwnd_bytes, self.cwnd)
        halvings = min(int(idle // rto), 32)
        decayed = self.cwnd / float(1 << halvings)
        self.cwnd = max(self._quantize_down(decayed, cfg.min_cwnd_bytes), restart)
        self._ca_bytes_acked = 0.0

    def close(self) -> None:
        """Detach from the host and cancel timers."""
        if self.closed:
            return
        self.closed = True
        self.sim.cancel(self._rto_event)
        self._rto_event = None
        self.sim.cancel(self._pending_send_event)
        self._pending_send_event = None
        self.host.unregister_flow(self.flow_id)

    # -------------------------------------------------------------- convenience
    def _quantize_down(self, cwnd_bytes: float, floor_bytes: float) -> float:
        """Round a window reduction down to a whole number of segments.

        The kernel tracks ``snd_cwnd`` in integer packets, so every
        multiplicative decrease lands on an exact MSS multiple — e.g. DCTCP
        at cwnd=2 drops straight to 1 or stays at 2, never 1.4.  This
        integer behaviour is load-bearing for the paper: it is why flows
        park *exactly at* the floor with ECE still arriving (Table I).
        """
        mss = self.config.mss
        quantized = (int(cwnd_bytes) // mss) * mss
        return max(float(quantized), floor_bytes)

    @property
    def bytes_in_flight(self) -> int:
        fl = self._fl
        slot = self._slot
        return fl.snd_nxt[slot] - fl.snd_una[slot]

    @property
    def in_rto_recovery(self) -> bool:
        """True while retransmissions from the last RTO are outstanding."""
        return self._fl.snd_una[self._slot] < self.rto_recovery_point

    @property
    def cwnd_mss(self) -> float:
        return self._fl.cwnd[self._slot] / self.config.mss

    @property
    def effective_window_bytes(self) -> int:
        """Packet-counting window: whole MSS units, at least one segment."""
        mss = self.config.mss
        whole = int(self._fl.cwnd[self._slot] // mss) * mss
        return min(max(whole, mss), self.config.rwnd_bytes)

    # ------------------------------------------------------------- transmission
    def _try_send(self) -> None:
        if self.closed or self.completed:
            return
        cfg = self.config
        now = self.sim.now
        mss = cfg.mss
        fl = self._fl
        slot = self._slot
        nxt_col = fl.snd_nxt
        snd_una = fl.snd_una[slot]
        # effective_window_bytes, inlined (this is the per-segment gate).
        whole = int(fl.cwnd[slot] // mss) * mss
        window = min(max(whole, mss), cfg.rwnd_bytes)
        total = self.total_bytes
        pacer = self.pacer
        snd_nxt = nxt_col[slot]
        while snd_nxt < total:
            remaining = total - snd_nxt
            seg_len = mss if mss < remaining else remaining
            if snd_nxt - snd_una + seg_len > window:
                break
            if pacer is not None:
                ev = self._cc_event
                ev.kind = CC_SEND
                ev.time_ns = now
                gate = self.on_send_opportunity(ev)
                if gate > now:
                    self._schedule_send_retry(gate)
                    return
            self._transmit(snd_nxt, seg_len, is_retransmit=False)
            snd_nxt = nxt_col[slot] = snd_nxt + seg_len
        if snd_nxt - snd_una > 0 and self._rto_event is None:
            self._arm_timer()

    def _schedule_send_retry(self, at_time: int) -> None:
        if self._pending_send_event is not None:
            return
        self._pending_send_event = self.sim.at(at_time, self._send_retry)

    def _send_retry(self) -> None:
        self._pending_send_event = None
        self._try_send()

    def _transmit(self, seq: int, length: int, is_retransmit: bool) -> None:
        cfg = self.config
        sim = self.sim
        now = sim.now
        stats = self.stats
        stats.record_send_snapshot(int(self._fl.cwnd[self._slot] // cfg.mss), self.last_ack_ece)
        h = self._pool.alloc_data(
            self.flow_id,
            self._src_id,
            self.dst_node_id,
            seq,
            length,
            cfg.ecn_enabled,
            is_retransmit,
            sim.next_packet_id(),
        )
        if is_retransmit:
            # Karn: retransmitted segments are never RTT-sampled.
            self._segment_send_time.pop(seq, None)
            stats.retransmitted_packets += 1
            if self._tracer is not None:
                self._tracer.retransmitted(self, seq)
        else:
            self._segment_send_time[seq] = now
        stats.data_packets_sent += 1
        self._last_send_time = now
        self._host_send(h)
        pacer = self.pacer
        if pacer is not None:
            pacer.on_sent(now)

    def _retransmit_front(self) -> None:
        seg_len = min(self.config.mss, self.total_bytes - self.snd_una)
        if seg_len > 0:
            self._transmit(self.snd_una, seg_len, is_retransmit=True)

    # ------------------------------------------------------------ ACK processing
    def on_packet(self, h: int) -> None:
        """Consume a delivered packet handle (ACKs drive the state machine)."""
        pool = self._pool
        flags = pool.flags[h]
        ack_seq = pool.ack_seq[h]
        pool.free(h)
        if not (flags & F_ACK) or self.closed:
            return
        self._on_ack(ack_seq, bool(flags & F_ECE), flags & F_INC)

    def _on_ack(self, ack_seq: int, ece: bool, inc: int = 0) -> None:
        if self.completed:
            return
        if inc:
            # Explicit incast-onset echo (the INC bit): dispatched before
            # ACK processing so a strategy's backoff lands ahead of the
            # window-law update, exactly where Pulser's reaction sat.
            ev = self._cc_event
            ev.kind = CC_INC_ECHO
            ev.time_ns = self.sim.now
            ev.ece = ece
            ev.inc = True
            self.on_ecn_echo(ev)
        self._acks_since_timer_armed += 1
        stats = self.stats
        stats.acks_received += 1
        self.last_ack_ece = ece
        if ece:
            stats.ece_acks_received += 1

        fl = self._fl
        slot = self._slot
        snd_una = fl.snd_una[slot]
        snd_nxt = fl.snd_nxt[slot]
        # Highest byte ever handed to the network: go-back-N rewinds
        # snd_nxt, but a late ACK from the original (pre-timeout) flight is
        # still legitimate up to the recovery point.
        recovery_point = self.rto_recovery_point
        high_water = snd_nxt if snd_nxt > recovery_point else recovery_point
        if ack_seq > high_water:
            # RFC 793: an ACK for data we never sent is ignored.  Cannot
            # happen with well-behaved peers, but keeps the state machine
            # sound against reordering artifacts or buggy endpoints.
            return
        if ack_seq > snd_una:
            self._on_new_ack(ack_seq, ece)
        elif snd_nxt - snd_una > 0:
            self._on_dupack(ece)

    def _on_new_ack(self, ack_seq: int, ece: bool) -> None:
        fl = self._fl
        slot = self._slot
        cwnd_col = fl.cwnd
        newly_acked = ack_seq - fl.snd_una[slot]
        self._sample_rtt(ack_seq)
        fl.snd_una[slot] = ack_seq
        if fl.snd_nxt[slot] < ack_seq:
            # a late original-flight ACK overtook the go-back-N rewind
            fl.snd_nxt[slot] = ack_seq
        fl.dupacks[slot] = 0
        self.rto_backoff = 0
        cfg = self.config

        if self.in_fast_recovery:
            if ack_seq >= self.recover:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.in_fast_recovery = False
                cwnd_col[slot] = max(cfg.min_cwnd_bytes, fl.ssthresh[slot])
            else:
                # Partial ACK (RFC 6582): retransmit the next hole, deflate
                # by the amount acked, stay in recovery.
                self._retransmit_front()
                cwnd_col[slot] = max(float(cfg.mss), cwnd_col[slot] - newly_acked + cfg.mss)
        else:
            ev = self._cc_event
            ev.kind = CC_ACK
            ev.time_ns = self.sim.now
            ev.newly_acked = newly_acked
            ev.ece = ece
            self.on_ack(ev)

        total = self.total_bytes
        if total > 0 and ack_seq >= total:
            self._complete()
        elif fl.snd_nxt[slot] - ack_seq > 0:
            self._arm_timer()
        else:
            # Nothing outstanding (remaining data may be gated by the
            # pacer); the timer re-arms when the next packet departs.
            self._stop_timer()
        ev = self._cc_event
        ev.kind = CC_ACK_ECHO
        ev.time_ns = self.sim.now
        ev.ece = ece
        ev.is_dup = False
        self.on_ecn_echo(ev)
        if not self.completed:
            self._try_send()

    def _on_dupack(self, ece: bool) -> None:
        cfg = self.config
        fl = self._fl
        slot = self._slot
        dupacks = fl.dupacks[slot] = fl.dupacks[slot] + 1
        self.stats.dupacks_received += 1
        if self.in_fast_recovery:
            # Window inflation: each dupACK signals a departed segment.
            fl.cwnd[slot] += cfg.mss
        elif dupacks >= cfg.dupack_threshold:
            self._enter_fast_recovery()
        elif cfg.limited_transmit:
            # RFC 3042: the first two dupACKs each release one new segment
            # beyond the window, keeping the ACK clock alive for windows
            # too small to generate three duplicates.
            self._limited_transmit()
        ev = self._cc_event
        ev.kind = CC_ACK_ECHO
        ev.time_ns = self.sim.now
        ev.ece = ece
        ev.is_dup = True
        self.on_ecn_echo(ev)
        self._try_send()

    def _limited_transmit(self) -> None:
        cfg = self.config
        seg_len = min(cfg.mss, self.total_bytes - self.snd_nxt)
        if seg_len <= 0:
            return
        if self.bytes_in_flight + seg_len > cfg.rwnd_bytes:
            return
        if self.bytes_in_flight >= self.effective_window_bytes + 2 * cfg.mss:
            return
        self._transmit(self.snd_nxt, seg_len, is_retransmit=False)
        self.snd_nxt += seg_len

    def _enter_fast_recovery(self) -> None:
        cfg = self.config
        flight = self.bytes_in_flight
        self.ssthresh = self._quantize_down(flight / 2.0, cfg.min_cwnd_bytes)
        self.recover = self.snd_nxt
        self.in_fast_recovery = True
        self.stats.fast_retransmits += 1
        self._retransmit_front()
        self.cwnd = self.ssthresh + cfg.dupack_threshold * cfg.mss
        self._arm_timer()

    def _sample_rtt(self, ack_seq: int) -> None:
        """Karn-compliant RTT sample from the newest fully-acked segment."""
        newest_send = -1
        to_pop = []
        for seq, sent_at in self._segment_send_time.items():
            if seq >= ack_seq:
                break
            to_pop.append(seq)
            if sent_at > newest_send:
                newest_send = sent_at
        for seq in to_pop:
            del self._segment_send_time[seq]
        if newest_send >= 0:
            self.rtt.add_sample(self.sim.now - newest_send)

    # ----------------------------------------------------------------- RTO timer
    def _arm_timer(self) -> None:
        # Re-armed on every ACK; reschedule-in-place keeps this O(1) with no
        # heap traffic instead of pushing a fresh entry per ACK.
        duration = self.rtt.backed_off_rto_ns(self.rto_backoff)
        self._rto_event = self.sim.reschedule(self._rto_event, duration, self._on_rto)
        self._acks_since_timer_armed = 0

    def _stop_timer(self) -> None:
        self.sim.cancel(self._rto_event)
        self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.completed or self.closed or self.bytes_in_flight <= 0:
            return
        kind = classify_timeout(self._acks_since_timer_armed)
        self.stats.record_timeout(self.sim.now, kind)
        if self._tracer is not None:
            self._tracer.rto_fired(self, kind)
        # CA_Loss analogue: everything up to the pre-timeout high-water mark
        # is now a retransmission; recovery lasts until it is all ACKed.
        # The mark never moves down: a back-to-back RTO fires with snd_nxt
        # already rewound near snd_una, and lowering the mark would make a
        # late ACK from the original flight look like "data we never sent"
        # and be discarded forever (the flow then deadlocks retransmitting
        # one segment the receiver already has).
        self.rto_recovery_point = max(self.rto_recovery_point, self.snd_nxt)

        cfg = self.config
        flight = self.bytes_in_flight
        self.ssthresh = self._quantize_down(flight / 2.0, cfg.min_cwnd_bytes)
        self.cwnd = cfg.timeout_cwnd_bytes
        self.in_fast_recovery = False
        self.dupacks = 0
        self.snd_nxt = self.snd_una  # go-back-N
        self._segment_send_time.clear()  # Karn: everything is a retransmit now
        self.rto_backoff = min(self.rto_backoff + 1, cfg.max_rto_backoff)
        ev = self._cc_event
        ev.kind = CC_RTO
        ev.time_ns = self.sim.now
        ev.rto_kind = kind
        self.on_rto(ev)
        self._retransmit_front()
        self.snd_nxt = min(self.total_bytes, self.snd_una + cfg.mss)
        self._arm_timer()

    # ---------------------------------------------------------------- completion
    def _complete(self) -> None:
        self.completed = True
        self.stats.completion_time_ns = self.sim.now
        self._stop_timer()
        self.sim.cancel(self._pending_send_event)
        self._pending_send_event = None
        if self.on_complete is not None:
            self.on_complete(self)

    # ----------------------------------------------- CC event protocol (CCEvent)
    def on_ack(self, ev: CCEvent) -> None:
        """Window growth on a clean cumulative ACK (not in fast recovery)."""
        cfg = self.config
        fl = self._fl
        slot = self._slot
        newly_acked = ev.newly_acked
        cwnd_col = fl.cwnd
        cwnd = cwnd_col[slot]
        if cwnd < fl.ssthresh[slot]:
            # Slow start: one MSS per ACKed MSS (byte-counted, capped).
            cwnd_col[slot] = min(cwnd + min(newly_acked, cfg.mss), cfg.rwnd_bytes)
        else:
            # Congestion avoidance with Linux-style integer stepping: grow
            # by one MSS only after a full cwnd's worth of bytes is ACKed,
            # so the window rests at stable values like exactly 2 MSS.
            ca_col = fl.ca_bytes_acked
            acked = ca_col[slot] + newly_acked
            if acked >= cwnd:
                acked -= cwnd
                cwnd_col[slot] = min(cwnd + cfg.mss, cfg.rwnd_bytes)
            ca_col[slot] = acked

    def on_ecn_echo(self, ev: CCEvent) -> None:
        """Feedback echoes: per-ACK (``CC_ACK_ECHO``, after the ACK is
        processed — DCTCP+'s state-machine input) and the explicit
        incast-onset bit (``CC_INC_ECHO``, before — Pulser's reaction)."""

    def on_rto(self, ev: CCEvent) -> None:
        """Extra protocol reaction to an RTO (DCTCP+ hooks in here)."""

    def on_send_opportunity(self, ev: CCEvent) -> int:
        """Pacing gate: earliest allowed departure time in ns.

        Consulted per eligible segment **only when a pacer is attached**;
        the base implementation defers to it.  Returning ``ev.time_ns``
        (or any past time) releases the segment immediately.
        """
        return self.pacer.next_send_time(ev.time_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(flow={self.flow_id}, una={self.snd_una}, "
            f"nxt={self.snd_nxt}, cwnd={self.cwnd_mss:.2f}mss)"
        )
