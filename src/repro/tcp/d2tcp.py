"""D²TCP — Deadline-aware DCTCP (Vamanan et al., SIGCOMM 2012) — and its
DCTCP⁺-enhanced variant.

The paper's Section VII proposes coalescing the slow_time enhancement
with other datacenter transports, naming D²TCP first.  D²TCP replaces
DCTCP's backoff factor ``alpha`` with the gamma-corrected

    p = alpha ** d,        d = Tc / Delta  (clamped to [d_min, d_max])

where ``Tc`` is the flow's estimated completion time at its current rate
and ``Delta`` the time remaining until its deadline.  A flow that is
ahead of its deadline (d < 1) backs off *more* than DCTCP; a flow in
danger of missing it (d > 1) backs off less, stealing bandwidth from the
far-from-deadline flows.  Deadline-less flows use d = 1 (exact DCTCP).

:class:`D2tcpSender` layers this on :class:`~repro.tcp.dctcp.DctcpSender`;
:class:`D2tcpPlusSender` layers it on
:class:`~repro.core.dctcp_plus.DctcpPlusSender`, realizing the paper's
proposed "D²TCP⁺".
"""

from __future__ import annotations

from typing import Optional

from ..core.dctcp_plus import DctcpPlusSender
from .dctcp import DctcpSender

#: D2TCP's clamp on the deadline-imminence factor.
D_MIN = 0.5
D_MAX = 2.0


def deadline_factor(
    remaining_bytes: int,
    rate_bytes_per_ns: float,
    time_left_ns: int,
    d_min: float = D_MIN,
    d_max: float = D_MAX,
) -> float:
    """The gamma-correction exponent ``d = Tc / Delta``.

    A missed or immediate deadline (``time_left <= 0``) clamps to
    ``d_max`` (most aggressive); a flow with nothing left to send clamps
    to ``d_min`` (most polite).
    """
    if remaining_bytes <= 0:
        return d_min
    if time_left_ns <= 0:
        return d_max
    if rate_bytes_per_ns <= 0:
        return d_max
    completion_ns = remaining_bytes / rate_bytes_per_ns
    d = completion_ns / time_left_ns
    return max(d_min, min(d_max, d))


class _DeadlineMixin:
    """Shared deadline bookkeeping for the two D2TCP senders."""

    deadline_ns: Optional[int]

    def set_deadline(self, absolute_deadline_ns: Optional[int]) -> None:
        """Set (or clear) the flow's completion deadline."""
        self.deadline_ns = absolute_deadline_ns

    @property
    def deadline_missed(self) -> bool:
        """Whether the flow finished (or now stands) past its deadline."""
        if self.deadline_ns is None:
            return False
        reference = self.stats.completion_time_ns if self.completed else self.sim.now
        return reference > self.deadline_ns

    def _current_d(self) -> float:
        if self.deadline_ns is None:
            return 1.0  # deadline-less flows behave exactly like DCTCP
        remaining = self.total_bytes - self.snd_una
        # A congestion event can precede the first RTT sample (an unseeded
        # estimator holds srtt = None).  Dividing by a ~1 ns placeholder
        # would inflate the rate estimate ~1e5x and clamp d to d_min — the
        # flow would back off *hardest* exactly when its deadline clock
        # just started.  Fall back to the configured baseline RTT instead.
        srtt = self.rtt.srtt_ns
        if not srtt:
            srtt = self.config.seed_rtt_ns or self.rtt.rto_initial_ns
        rate = self.cwnd / srtt  # bytes per ns at the current window
        return deadline_factor(remaining, rate, self.deadline_ns - self.sim.now)

    def _reduction_penalty(self) -> float:
        # p = alpha ** d; d > 1 (deadline imminent) shrinks the penalty,
        # d < 1 (deadline far) grows it (alpha is in [0, 1]).
        return self.alpha ** self._current_d()


class D2tcpSender(_DeadlineMixin, DctcpSender):
    """DCTCP with deadline-gamma-corrected window reduction."""

    def __init__(self, *args, deadline_ns: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.deadline_ns = deadline_ns


class D2tcpPlusSender(_DeadlineMixin, DctcpPlusSender):
    """D²TCP carrying the paper's slow_time enhancement (Section VII)."""

    def __init__(self, *args, deadline_ns: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.deadline_ns = deadline_ns
