"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

Extends the New Reno sender with the two DCTCP equations the paper builds
on:

    alpha <- (1 - g) * alpha + g * F          (Eq. 1)
    W     <- W * (1 - alpha / 2),  W >= floor (Eq. 2)

``F`` is the fraction of ACKed bytes whose ACKs carried ECN-Echo during
the last window of data (~one RTT).  The window reduction is applied at
most once per window, at the window boundary, iff any mark was seen in
that window — the behaviour of the reference Linux implementation.

Loss handling (fast retransmit, RTO) is inherited unchanged from New Reno:
DCTCP reacts to packet loss exactly like TCP.

The alpha/window-of-data accumulators are flow-ledger columns (they are
touched on every ACK); the properties below preserve the attribute API
(``sender.alpha`` etc.) for subclasses, experiments and tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..metrics.flowstats import FlowStats
from ..net.host import Host
from ..sim.engine import Simulator
from .config import TcpConfig
from .events import CCEvent
from .flowstate import ledger_field, ledger_flag
from .sender import TcpSender


class DctcpSender(TcpSender):
    """TCP New Reno + DCTCP ECN reaction."""

    alpha = ledger_field("alpha")
    _win_end_seq = ledger_field("win_end_seq")
    _win_bytes_acked = ledger_field("win_bytes_acked")
    _win_bytes_marked = ledger_field("win_bytes_marked")
    _win_saw_ece = ledger_flag("win_saw_ece")

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        config: Optional[TcpConfig] = None,
        stats: Optional[FlowStats] = None,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
    ):
        config = (config or TcpConfig()).with_overrides(ecn_enabled=True)
        super().__init__(sim, host, dst_node_id, flow_id, config, stats, on_complete)
        self.alpha = config.dctcp_alpha_init
        self._win_end_seq = 0
        self._win_bytes_acked = 0
        self._win_bytes_marked = 0
        self._win_saw_ece = False
        #: number of times Eq. (2) was applied (instrumentation)
        self.ecn_reductions = 0
        #: number of times Eq. (2) wanted to reduce but cwnd was already at
        #: the floor — the "incapable" case of Section IV.B.
        self.floor_limited_reductions = 0

    # -- DCTCP marked-fraction bookkeeping --------------------------------------
    def on_ack(self, ev: CCEvent) -> None:
        fl = self._fl
        slot = self._slot
        newly_acked = ev.newly_acked
        fl.win_bytes_acked[slot] += newly_acked
        if ev.ece:
            fl.win_bytes_marked[slot] += newly_acked
            fl.win_saw_ece[slot] = 1
        super().on_ack(ev)
        if fl.snd_una[slot] >= fl.win_end_seq[slot]:
            self._end_of_window()

    def _end_of_window(self) -> None:
        cfg = self.config
        fl = self._fl
        slot = self._slot
        acked = fl.win_bytes_acked[slot]
        if acked > 0:
            fraction = fl.win_bytes_marked[slot] / acked
            fl.alpha[slot] = (1.0 - cfg.dctcp_g) * fl.alpha[slot] + cfg.dctcp_g * fraction
        if fl.win_saw_ece[slot]:
            floor = cfg.min_cwnd_bytes
            cwnd = fl.cwnd[slot]
            # Kernel semantics: the multiplicative decrease is computed in
            # integer packets (floor division), so cwnd=2 with any marking
            # drops to the next integer below 2 - alpha, i.e. straight to
            # the floor.
            penalty = self._reduction_penalty()
            target = self._quantize_down(cwnd * (1.0 - penalty / 2.0), floor)
            if target <= floor and cwnd <= floor:
                # Eq. (2) clamps: the sender *cannot* slow down further
                # despite ECN feedback (root cause #1 in the paper).
                self.floor_limited_reductions += 1
            if target < cwnd:
                self.ecn_reductions += 1
            fl.cwnd[slot] = target
            fl.ssthresh[slot] = max(target, floor)
            fl.ca_bytes_acked[slot] = 0.0
        fl.win_end_seq[slot] = fl.snd_nxt[slot]
        fl.win_bytes_acked[slot] = 0
        fl.win_bytes_marked[slot] = 0
        fl.win_saw_ece[slot] = 0

    def _reduction_penalty(self) -> float:
        """Backoff factor ``p`` in ``W <- W(1 - p/2)``.

        Plain DCTCP uses ``alpha``; deadline-aware variants (D2TCP)
        override this with the gamma-corrected ``alpha ** d``.
        """
        return self.alpha

    def on_rto(self, ev: CCEvent) -> None:
        # A whole window was lost; restart the marking observation window at
        # the retransmission point so stale mark counts don't leak in.
        self._win_end_seq = self.snd_una
        self._win_bytes_acked = 0
        self._win_bytes_marked = 0
        self._win_saw_ece = False
        super().on_rto(ev)
