"""TCP/DCTCP sender configuration.

Defaults mirror the paper's testbed (Linux 2.6.38-era stack, GbE):

- MSS 1460 B, per-packet immediate ACKs.
- Initial cwnd 2 MSS; cwnd floor 2 MSS for congestion reductions
  (the kernel's ``W ∈ [2, rwnd]`` in Eq. (2)); cwnd 1 MSS after a timeout.
- RTO per RFC 6298 with ``RTO_min`` 200 ms (the paper also evaluates 10 ms).
- DCTCP: g = 1/16, one window reduction per RTT of marked feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..sim.units import MS, SEC


@dataclass
class TcpConfig:
    """Tunables for :class:`repro.tcp.sender.TcpSender` and subclasses."""

    mss: int = 1460
    init_cwnd_mss: float = 2.0
    #: Lower bound enforced on congestion-signal reductions (ECN or fast
    #: retransmit); Eq. (2)'s ``W >= 2``.  The paper lowers this to 1 MSS for
    #: DCTCP+ (footnote 3).
    min_cwnd_mss: float = 2.0
    #: cwnd immediately after an RTO fires (Linux: 1 MSS).
    timeout_cwnd_mss: float = 1.0
    init_ssthresh_mss: float = 64.0
    dupack_threshold: int = 3
    rto_min_ns: int = 200 * MS
    rto_max_ns: int = 60 * SEC
    #: Upper bound on consecutive RTO backoff doublings (Linux: 15 retries).
    max_rto_backoff: int = 15
    #: ECN-capable transport: set ECT on data, react to ECE.  Enabled for
    #: DCTCP/DCTCP+; the paper's TCP baseline runs without ECN.
    ecn_enabled: bool = False
    #: DCTCP marked-fraction EWMA gain ``g`` in Eq. (1).
    dctcp_g: float = 1.0 / 16.0
    #: Initial value of DCTCP's alpha estimate.  1.0 matches the reference
    #: implementation (conservative on the first congested window).
    dctcp_alpha_init: float = 1.0
    #: Seed for the RTT estimator, emulating a persistent connection that
    #: has already measured the path (the incast benchmark reuses
    #: connections across rounds).  ``None`` starts RFC 6298 cold with
    #: ``rto = rto_initial_ns``.
    seed_rtt_ns: Optional[int] = None
    rto_initial_ns: int = 1 * SEC
    #: Receive window advertised by the peer.  Large enough to never bind in
    #: the paper's experiments (flows are at most a few MB).
    rwnd_bytes: int = 4 * 1024 * 1024
    #: Linux ``tcp_slow_start_after_idle`` (default on): when the connection
    #: has been application-idle for more than one RTO, cwnd is decayed by a
    #: halving per idle RTO, floored at the initial window.  On persistent
    #: incast connections this is what stops a flow that finished its
    #: response early (and grew cwnd against an empty network) from opening
    #: the next round with a stale multi-packet burst.
    slow_start_after_idle: bool = True
    #: RFC 3042 Limited Transmit: send one new segment on each of the first
    #: two duplicate ACKs, improving loss recovery for tiny windows (the
    #: LAck-TO regime).  Off by default to match the calibrated incast
    #: dynamics; see DESIGN.md.
    limited_transmit: bool = False

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.init_cwnd_mss <= 0:
            raise ValueError("initial cwnd must be positive")
        if self.min_cwnd_mss <= 0:
            raise ValueError("cwnd floor must be positive")
        if not 0.0 < self.dctcp_g <= 1.0:
            raise ValueError(f"dctcp_g must be in (0, 1], got {self.dctcp_g}")
        if self.dupack_threshold < 1:
            raise ValueError("dupack threshold must be >= 1")
        if self.rto_min_ns <= 0 or self.rto_max_ns < self.rto_min_ns:
            raise ValueError("invalid RTO bounds")

    # Convenience byte-denominated views -------------------------------------
    @property
    def init_cwnd_bytes(self) -> float:
        return self.init_cwnd_mss * self.mss

    @property
    def min_cwnd_bytes(self) -> float:
        return self.min_cwnd_mss * self.mss

    @property
    def timeout_cwnd_bytes(self) -> float:
        return self.timeout_cwnd_mss * self.mss

    @property
    def init_ssthresh_bytes(self) -> float:
        return self.init_ssthresh_mss * self.mss

    def with_overrides(self, **kwargs) -> "TcpConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
