"""TCP receiver: in-order reassembly, cumulative ACKs, per-packet ECN echo.

The receiver ACKs every data segment immediately (no delayed ACKs).  With
per-packet ACKs the DCTCP ECN-echo state machine degenerates to "ECE in
the ACK = CE on the segment that triggered it", which is exactly what we
implement; the sender's marked-byte fraction estimate is then exact.

Duplicate segments (retransmissions of data already received) still
generate ACKs — those duplicates are what drive fast retransmit at the
sender.

Storage layout mirrors the sender: the per-segment counters (``rcv_nxt``,
``bytes_delivered``) live in the simulator's flow ledger and the receiver
keeps a slot plus compatibility properties.  ``on_packet`` consumes a
pooled handle, reads the columns it needs, and frees the handle before
doing any protocol work; ACKs are allocated straight from the pool.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Simulator
from ..net.host import Host
from ..net.pool import F_ACK, F_CE, F_INC, PacketPool
from .flowstate import FlowLedger, ledger_field


class TcpReceiver:
    """Sink endpoint of one flow, attached to a host."""

    __slots__ = (
        "sim",
        "host",
        "peer_node_id",
        "flow_id",
        "_fl",
        "_slot",
        "_pool",
        "_host_send",
        "expected_bytes",
        "on_data",
        "on_complete",
        "_ooo",
        "_done",
        "_inc_echo",
        "data_packets_received",
        "duplicate_packets_received",
        "ce_packets_received",
        "reordered_packets",
        "closed",
    )

    rcv_nxt = ledger_field("rcv_nxt")
    bytes_delivered = ledger_field("bytes_delivered")

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        peer_node_id: int,
        flow_id: int,
        expected_bytes: Optional[int] = None,
        on_data: Optional[Callable[[int], None]] = None,
        on_complete: Optional[Callable[["TcpReceiver"], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.peer_node_id = peer_node_id
        self.flow_id = flow_id
        fl = FlowLedger.of(sim)
        self._fl = fl
        self._slot = fl.register()
        self._pool = PacketPool.of(sim)
        # Transmit binding: straight to the NIC port's send when the
        # access link is already attached (skips Host.send's None check
        # and call frame per packet); hosts built link-less fall back to
        # Host.send, which raises the usual error if still detached.
        nic = host.nic
        self._host_send = nic.send if nic is not None else host.send
        self.expected_bytes = expected_bytes
        self.on_data = on_data
        self.on_complete = on_complete
        self._ooo: Dict[int, int] = {}  # seq -> end of buffered segment
        self._done = False
        self._inc_echo = False  # pending incast-onset echo (see repro.tcp.pulser)
        self.data_packets_received = 0
        self.duplicate_packets_received = 0
        self.ce_packets_received = 0
        # New data that arrived ahead of a gap (could not advance rcv_nxt):
        # the receiver-visible signature of multipath reordering — packet-
        # level ECMP spray lands here even with zero loss.
        self.reordered_packets = 0
        self.closed = False
        host.register_flow(flow_id, self)
        hooks = sim.hooks
        if hooks is not None:
            hooks.receiver_created(self)

    def expect(self, additional_bytes: int) -> None:
        """Raise the completion target (a new request on a persistent
        connection); ``on_complete`` will fire again at the new target."""
        if additional_bytes <= 0:
            raise ValueError(f"additional_bytes must be positive, got {additional_bytes}")
        if self.expected_bytes is None:
            self.expected_bytes = 0
        self.expected_bytes += additional_bytes
        self._done = False

    def on_packet(self, h: int) -> None:
        """Handle an arriving segment handle; emit the cumulative ACK."""
        pool = self._pool
        flags = pool.flags[h]
        if flags & F_ACK:  # stray ACK routed to the receiver side; ignore
            pool.free(h)
            return
        seq = pool.seq[h]
        end_seq = seq + pool.payload_len[h]
        pool.free(h)

        self.data_packets_received += 1
        if flags & F_CE:
            self.ce_packets_received += 1
        if flags & F_INC:
            self._inc_echo = True

        fl = self._fl
        slot = self._slot
        rcv_col = fl.rcv_nxt
        rcv_before = rcv_col[slot]
        if end_seq <= rcv_before:
            self.duplicate_packets_received += 1
        else:
            self._buffer(seq, end_seq)
            self._advance()
        # duplicate or out-of-order segments must be ACKed immediately
        # (RFC 5681); in-order segments go through the ACK policy, which
        # subclasses may delay.
        out_of_order = rcv_col[slot] == rcv_before
        if out_of_order and end_seq > rcv_before:
            self.reordered_packets += 1

        self._ack_policy(flags, out_of_order, rcv_before)

        if (
            not self._done
            and self.expected_bytes is not None
            and rcv_col[slot] >= self.expected_bytes
        ):
            self._done = True
            if self.on_complete is not None:
                self.on_complete(self)

    # -- ACK policy (overridden by DelayedAckReceiver) ----------------------------
    def _ack_policy(self, flags: int, out_of_order: bool, rcv_before: int) -> None:
        """Immediate per-packet cumulative ACK echoing the segment's CE.

        ``flags`` is the arriving segment's flag byte (the handle itself is
        already freed); ``rcv_before`` is the cumulative point before this
        segment was reassembled (delayed-ACK subclasses acknowledge up to
        it when a CE state change forces an early flush).
        """
        self._send_ack(ece=bool(flags & F_CE))

    # -- internals --------------------------------------------------------------
    def _buffer(self, seq: int, end: int) -> None:
        existing_end = self._ooo.get(seq)
        if existing_end is None or existing_end < end:
            self._ooo[seq] = end

    def _advance(self) -> None:
        """Pull contiguous segments out of the reorder buffer."""
        fl = self._fl
        slot = self._slot
        rcv_col = fl.rcv_nxt
        before = rcv_col[slot]
        rcv_nxt = before
        ooo = self._ooo
        moved = True
        while moved:
            moved = False
            end = ooo.pop(rcv_nxt, None)
            if end is not None:
                if end > rcv_nxt:
                    rcv_nxt = end
                moved = True
            else:
                # A retransmission after a partial overlap can start below
                # rcv_nxt but extend past it; scan for such a segment.
                for seq, seg_end in ooo.items():
                    if seq <= rcv_nxt < seg_end:
                        del ooo[seq]
                        rcv_nxt = seg_end
                        moved = True
                        break
        rcv_col[slot] = rcv_nxt
        delivered = rcv_nxt - before
        if delivered > 0:
            fl.bytes_delivered[slot] += delivered
            if self.on_data is not None:
                self.on_data(delivered)
        # Drop any stale buffered segments fully below rcv_nxt.
        if ooo:
            stale = [s for s, e in ooo.items() if e <= rcv_nxt]
            for s in stale:
                del ooo[s]

    def _send_ack(self, ece: bool, ack_seq: Optional[int] = None) -> None:
        inc = self._inc_echo
        if inc:
            # The onset signal rides the next ACK out, whatever kind it is
            # (immediate, delayed, duplicate), then is consumed.
            self._inc_echo = False
        sim = self.sim
        h = self._pool.alloc_ack(
            self.flow_id,
            self.host.node_id,
            self.peer_node_id,
            self._fl.rcv_nxt[self._slot] if ack_seq is None else ack_seq,
            ece,
            inc,
            sim.next_packet_id(),
        )
        self._host_send(h)

    @property
    def complete(self) -> bool:
        return self._done

    def close(self) -> None:
        """Detach from the host (end of the flow's lifetime)."""
        if not self.closed:
            self.host.unregister_flow(self.flow_id)
            self.closed = True
