"""TBTCP-style tiny-buffer congestion control (after arXiv:1909.05392).

TBTCP's premise: datacenter switches can run with almost no buffer if
senders stop relying on the queue to absorb their bursts.  Two levers
realize that here:

- **rate pacing** — every departure is spaced ``srtt * mss / cwnd``
  after the previous one, so a window's worth of data leaves as an even
  stream over one RTT instead of a back-to-back burst.  The interval is
  recomputed per packet from the live (cwnd, srtt), so queueing delay
  that inflates srtt automatically slows the pace — the negative
  feedback that parks the bottleneck occupancy near zero;
- **a window cap** — the window never grows past a small multiple of the
  bandwidth-delay product's order (:data:`TBTCP_CWND_CAP_MSS` segments),
  so even a freshly-started flow cannot dump a large burst.

Everything else (alpha estimation, ECN reaction, loss recovery) is
inherited from DCTCP, making this a minimal registered strategy: a pacer
plus a clamp on top of an existing sender.
"""

from __future__ import annotations

from .dctcp import DctcpSender
from .events import CCEvent

#: Window cap in segments.  The paper's testbed BDP is ~8.5 MSS; ten
#: segments keeps a single paced flow link-limited while denying any flow
#: a burst larger than the pipe.
TBTCP_CWND_CAP_MSS = 10.0


class TinyBufferPacer:
    """Spaces departures ``srtt * mss / cwnd`` apart (implements Pacer)."""

    __slots__ = ("sender", "_next_ns", "paced_packets")

    def __init__(self, sender: "TbtcpSender"):
        self.sender = sender
        self._next_ns = 0
        self.paced_packets = 0

    def _interval_ns(self) -> int:
        sender = self.sender
        cfg = sender.config
        srtt = sender.rtt.srtt_ns
        if not srtt:
            # No sample yet (and no seeded estimate): fall back to the
            # configured baseline so the first window is still paced.
            srtt = cfg.seed_rtt_ns or sender.rtt.rto_initial_ns
        cwnd = max(sender.cwnd, float(cfg.mss))
        return int(srtt * cfg.mss / cwnd)

    def next_send_time(self, now: int) -> int:
        next_ns = self._next_ns
        return next_ns if next_ns > now else now

    def on_sent(self, now: int) -> None:
        self.paced_packets += 1
        self._next_ns = now + self._interval_ns()


class TbtcpSender(DctcpSender):
    """DCTCP paced to an even per-RTT stream with a capped window."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cwnd_cap_bytes = TBTCP_CWND_CAP_MSS * self.config.mss
        self.cwnd = min(self.cwnd, self._cwnd_cap_bytes)
        self.pacer = TinyBufferPacer(self)

    def on_ack(self, ev: CCEvent) -> None:
        super().on_ack(ev)
        if self.cwnd > self._cwnd_cap_bytes:
            self.cwnd = self._cwnd_cap_bytes
