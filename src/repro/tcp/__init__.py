"""Transport substrate: TCP New Reno, DCTCP, D2TCP, RTT estimation, timeouts."""

from .config import TcpConfig
from .dctcp import DctcpSender
from .delack import DelayedAckReceiver
from .receiver import TcpReceiver
from .rtt import RttEstimator
from .sender import TcpSender
from .timeouts import TimeoutKind, classify_timeout

# NOTE: the deadline-aware senders live in repro.tcp.d2tcp but are *not*
# re-exported here: they depend on repro.core (the DCTCP+ machinery), and
# importing them eagerly would make repro.tcp <-> repro.core circular.
# Import them as `from repro.tcp.d2tcp import D2tcpSender, D2tcpPlusSender`.

__all__ = [
    "TcpConfig",
    "TcpSender",
    "DctcpSender",
    "TcpReceiver",
    "DelayedAckReceiver",
    "RttEstimator",
    "TimeoutKind",
    "classify_timeout",
]
