"""The flow ledger: struct-of-arrays storage for per-flow hot counters.

Every ACK and every data segment touches a handful of per-flow counters —
the congestion window, the unacked byte range, dup-ack state, DCTCP's
alpha accumulators, the receiver's reassembly cursor.  The ledger moves
exactly those counters out of endpoint instance dicts into preallocated
parallel columns owned by the simulator (``sim.flows``), indexed by a
small integer **slot** handed out at endpoint registration.

The endpoints (:class:`~repro.tcp.sender.TcpSender`,
:class:`~repro.tcp.receiver.TcpReceiver` and their subclasses) become
thin views: each keeps its slot plus compatibility *properties* (``cwnd``,
``snd_una``, ``alpha`` …) that read/write the columns, so subclasses, the
invariant checker, metrics collectors and tests keep their attribute-style
access unchanged — the ``CongestionControl`` registry API is untouched.
Hot methods bypass the properties and bind the columns to locals.

Columns grow by ``append`` only (never reassignment), so column references
bound at endpoint construction stay valid for the simulation's lifetime.
"""

from __future__ import annotations

from typing import List


class FlowLedger:
    """Parallel per-flow counter columns; one slot per registered endpoint."""

    __slots__ = (
        # sender columns
        "cwnd",
        "ssthresh",
        "snd_una",
        "snd_nxt",
        "dupacks",
        "ca_bytes_acked",
        # DCTCP window-of-data accumulators
        "alpha",
        "win_end_seq",
        "win_bytes_acked",
        "win_bytes_marked",
        "win_saw_ece",
        # receiver columns
        "rcv_nxt",
        "bytes_delivered",
        "pending_segments",
        "ce_state",
        "slots",
    )

    def __init__(self):
        self.cwnd: List[float] = []
        self.ssthresh: List[float] = []
        self.snd_una: List[int] = []
        self.snd_nxt: List[int] = []
        self.dupacks: List[int] = []
        self.ca_bytes_acked: List[float] = []
        self.alpha: List[float] = []
        self.win_end_seq: List[int] = []
        self.win_bytes_acked: List[int] = []
        self.win_bytes_marked: List[int] = []
        self.win_saw_ece: List[int] = []
        self.rcv_nxt: List[int] = []
        self.bytes_delivered: List[int] = []
        self.pending_segments: List[int] = []
        self.ce_state: List[int] = []
        self.slots = 0

    @classmethod
    def of(cls, sim) -> "FlowLedger":
        """The simulator's ledger, created (and attached) on first use."""
        flows = sim.flows
        if flows is None:
            flows = sim.flows = cls()
        return flows

    def register(self) -> int:
        """Claim a fresh slot (one per endpoint), zero-initialized."""
        slot = self.slots
        self.slots = slot + 1
        self.cwnd.append(0.0)
        self.ssthresh.append(0.0)
        self.snd_una.append(0)
        self.snd_nxt.append(0)
        self.dupacks.append(0)
        self.ca_bytes_acked.append(0.0)
        self.alpha.append(0.0)
        self.win_end_seq.append(0)
        self.win_bytes_acked.append(0)
        self.win_bytes_marked.append(0)
        self.win_saw_ece.append(0)
        self.rcv_nxt.append(0)
        self.bytes_delivered.append(0)
        self.pending_segments.append(0)
        self.ce_state.append(0)
        return slot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowLedger({self.slots} slots)"


def ledger_field(column: str):
    """Compatibility property reading/writing one ledger column.

    Installed on endpoint classes for every counter the ledger owns, so
    ``sender.cwnd`` (subclasses, checker, metrics, tests) keeps working
    while the storage lives in ``sim.flows``.
    """

    def _get(self):
        return getattr(self._fl, column)[self._slot]

    def _set(self, value):
        getattr(self._fl, column)[self._slot] = value

    return property(_get, _set)


def ledger_flag(column: str):
    """Like :func:`ledger_field` but presenting an int column as a bool."""

    def _get(self):
        return bool(getattr(self._fl, column)[self._slot])

    def _set(self, value):
        getattr(self._fl, column)[self._slot] = 1 if value else 0

    return property(_get, _set)
