"""Delayed ACKs with the DCTCP ECN-echo state machine.

The base :class:`~repro.tcp.receiver.TcpReceiver` ACKs every segment
immediately, which makes the sender's marked-byte estimate exact but
doubles the ACK-path packet count relative to a real stack.  This module
provides the Linux-like alternative: ACK every second in-order segment
(or on a delayed-ACK timeout), with DCTCP's two-state ECN-echo machine
(Alizadeh et al., SIGCOMM'10, Fig. 2) keeping the marked-byte accounting
accurate across coalesced ACKs:

- the receiver remembers the CE state of the last segment;
- while arriving segments keep the same CE state, normal delayed ACKs are
  sent with ECE = that state;
- when a segment's CE differs from the remembered state, the pending
  segments are ACKed *immediately* with ECE reflecting the old state,
  then the state flips.

Out-of-order and duplicate segments are always ACKed immediately
(RFC 5681), which is what feeds fast retransmit.

The per-segment state (pending count, remembered CE) lives in the flow
ledger alongside the reassembly cursor; the properties below keep
attribute access working for tests while ``_ack_policy`` binds the
columns directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.host import Host
from ..net.pool import F_CE, F_ECT
from ..sim.engine import Simulator
from ..sim.units import MS
from .flowstate import ledger_field, ledger_flag
from .receiver import TcpReceiver

#: Linux's minimum delayed-ACK timeout is 40 ms (HZ=250); datacenter
#: deployments often tune it down — it is a constructor parameter.
DEFAULT_DELACK_TIMEOUT_NS = 40 * MS
#: ACK every second full segment (RFC 1122's "SHOULD").
DEFAULT_ACK_EVERY = 2


class DelayedAckReceiver(TcpReceiver):
    """TCP receiver with delayed ACKs + DCTCP ECE state machine."""

    __slots__ = (
        "ack_every",
        "delack_timeout_ns",
        "_delack_event",
        "delayed_acks_sent",
        "immediate_acks_sent",
        "delack_timeouts",
    )

    _pending_segments = ledger_field("pending_segments")
    _ce_state = ledger_flag("ce_state")

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        peer_node_id: int,
        flow_id: int,
        expected_bytes: Optional[int] = None,
        on_data: Optional[Callable[[int], None]] = None,
        on_complete: Optional[Callable[[TcpReceiver], None]] = None,
        ack_every: int = DEFAULT_ACK_EVERY,
        delack_timeout_ns: int = DEFAULT_DELACK_TIMEOUT_NS,
    ):
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {ack_every}")
        if delack_timeout_ns <= 0:
            raise ValueError("delayed-ACK timeout must be positive")
        super().__init__(sim, host, peer_node_id, flow_id, expected_bytes, on_data, on_complete)
        self.ack_every = ack_every
        self.delack_timeout_ns = delack_timeout_ns
        self._delack_event = None
        self.delayed_acks_sent = 0
        self.immediate_acks_sent = 0
        self.delack_timeouts = 0

    # -- ACK policy -----------------------------------------------------------
    def _ack_policy(self, flags: int, out_of_order: bool, rcv_before: int) -> None:
        fl = self._fl
        slot = self._slot
        ce = bool(flags & F_CE)
        if flags & F_ECT and ce != bool(fl.ce_state[slot]):
            # DCTCP state change: ACK the pending run with the *old* state
            # immediately — covering only the bytes that preceded this
            # segment — then adopt the new state.  This runs for *every*
            # arriving ECT segment, in-order or not (Linux's
            # tcp_ecn_check_ce updates the CE state before the queueing
            # decision): an out-of-order segment's mark would otherwise be
            # lost and the sender's alpha under-estimated.
            if fl.pending_segments[slot] > 0:
                self._flush_pending(ack_seq=rcv_before)
            fl.ce_state[slot] = 1 if ce else 0

        if out_of_order:
            # Duplicate/out-of-order: flush anything pending, then ACK now.
            self._flush_pending()
            self._send_ack(ece=bool(fl.ce_state[slot]) if flags & F_ECT else ce)
            self.immediate_acks_sent += 1
            return

        pending = fl.pending_segments[slot] = fl.pending_segments[slot] + 1
        if pending >= self.ack_every:
            self._flush_pending()
        elif self._delack_event is None:
            self._delack_event = self.sim.schedule(self.delack_timeout_ns, self._on_delack_timer)

    def _flush_pending(self, ack_seq: Optional[int] = None) -> None:
        if self._delack_event is not None:
            self.sim.cancel(self._delack_event)
            self._delack_event = None
        fl = self._fl
        slot = self._slot
        if fl.pending_segments[slot] == 0:
            return
        fl.pending_segments[slot] = 0
        self._send_ack(ece=bool(fl.ce_state[slot]), ack_seq=ack_seq)
        self.delayed_acks_sent += 1

    def _on_delack_timer(self) -> None:
        self._delack_event = None
        self.delack_timeouts += 1
        self._flush_pending()

    def close(self) -> None:
        if not self.closed and self._delack_event is not None:
            self.sim.cancel(self._delack_event)
            self._delack_event = None
        super().close()
