"""The typed congestion-control event protocol.

Congestion control used to reach into the sender through a grab-bag of
ad-hoc methods (``_cc_on_ack`` / ``_cc_on_timeout`` / ``_after_ack`` plus
Pulser's private ``_on_ack`` override).  This module replaces that with
one small surface every strategy — builtin or external — implements:

``on_ack(ev)``
    The window-law point: a clean cumulative ACK arrived and the sender
    is *not* in fast recovery.  ``ev.newly_acked`` / ``ev.ece`` carry the
    ACK; the base implementation is Reno growth, DCTCP layers its
    marked-byte bookkeeping on top.
``on_ecn_echo(ev)``
    Congestion-feedback echoes.  Two kinds share the method:
    ``CC_ACK_ECHO`` fires once per received ACK *after* the ACK has been
    fully processed (DCTCP+'s state machine feeds here), and
    ``CC_INC_ECHO`` fires *before* ACK processing when the ACK carries
    the explicit incast-onset bit (Pulser reacts here).  Dispatch order
    and sites are exactly where the legacy hooks sat, so migrated
    strategies are byte-for-byte identical.
``on_rto(ev)``
    The retransmission timer expired; ``ev.rto_kind`` is the
    :class:`~repro.tcp.timeouts.TimeoutKind` classification.
``on_send_opportunity(ev) -> int``
    The pacing gate consulted per departure **only when a pacer is
    attached**; returns the earliest allowed departure time in ns
    (``ev.time_ns`` to send now).  Unpaced senders never pay for it.

Events are **transient**: each sender owns one :class:`CCEvent` instance
and mutates it in place per dispatch (the hot path allocates nothing),
so handlers must read fields during the call and never retain the event.
Only the fields of the current ``kind`` are meaningful; the rest may
hold stale values from a previous dispatch.
"""

from __future__ import annotations

from typing import Optional, Protocol

from .timeouts import TimeoutKind

#: ``on_ack``: clean cumulative ACK outside fast recovery (window law).
CC_ACK = "ack"
#: ``on_ecn_echo``: per-ACK feedback echo, after ACK processing.
CC_ACK_ECHO = "ack-echo"
#: ``on_ecn_echo``: explicit incast-onset echo (the INC bit), before
#: ACK processing.
CC_INC_ECHO = "inc-echo"
#: ``on_rto``: retransmission timeout fired.
CC_RTO = "rto"
#: ``on_send_opportunity``: a data segment is eligible to depart.
CC_SEND = "send"


class CCEvent:
    """One congestion-control event (a reusable, mutable record).

    Field validity by ``kind``:

    =================  =================================================
    ``CC_ACK``         ``time_ns``, ``newly_acked``, ``ece``
    ``CC_ACK_ECHO``    ``time_ns``, ``ece``, ``is_dup``
    ``CC_INC_ECHO``    ``time_ns``, ``ece``, ``inc`` (always True)
    ``CC_RTO``         ``time_ns``, ``rto_kind``
    ``CC_SEND``        ``time_ns``
    =================  =================================================

    The ``kind`` values are the interned module constants above, so
    handlers can compare with ``is``.
    """

    __slots__ = ("kind", "time_ns", "newly_acked", "ece", "inc", "is_dup", "rto_kind")

    def __init__(self) -> None:
        self.kind: str = CC_ACK
        self.time_ns: int = 0
        self.newly_acked: int = 0
        self.ece: bool = False
        self.inc: bool = False
        self.is_dup: bool = False
        self.rto_kind: Optional[TimeoutKind] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CCEvent(kind={self.kind!r}, t={self.time_ns}, "
            f"newly_acked={self.newly_acked}, ece={self.ece}, "
            f"inc={self.inc}, is_dup={self.is_dup}, rto_kind={self.rto_kind})"
        )


class CCEventHandler(Protocol):
    """What a congestion-control implementation looks like.

    :class:`~repro.tcp.sender.TcpSender` and its subclasses implement
    this directly; :class:`~repro.control.ExternalPolicy` implements it
    with an explicit ``sender`` first argument and is adapted by
    ``ExternalPolicySender``.
    """

    def on_ack(self, ev: CCEvent) -> None: ...
    def on_ecn_echo(self, ev: CCEvent) -> None: ...
    def on_rto(self, ev: CCEvent) -> None: ...
    def on_send_opportunity(self, ev: CCEvent) -> int: ...
