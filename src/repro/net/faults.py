"""Fault injection: lossy and scriptable links.

Used by the failure-injection tests (and available to experiments) to
exercise retransmission machinery deterministically: random i.i.d. loss,
drop-the-nth-packet, and fully scripted drop decisions.

Drop policies receive a :class:`~repro.net.pool.PacketView` (attribute
access over the pooled columns), so policy code reads ``packet.is_ack``,
``packet.seq`` etc. exactly as it did against packet objects.  The view
is built per *offered* packet — faulty links are a cold path by design.
"""

from __future__ import annotations

import random
from typing import Callable, TYPE_CHECKING

from ..sim.engine import Simulator
from .link import Link
from .pool import PacketPool, PacketView

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

#: decides whether a packet is dropped; receives (packet-view, index-of-packet)
DropPolicy = Callable[[PacketView, int], bool]


class FaultyLink(Link):
    """A link that may drop packets according to a policy.

    Drops happen *after* serialization (the frame is corrupted on the
    wire), which is also where they are invisible to the sender — exactly
    the silent-loss behaviour that produces FLoss-TO.  An injected drop
    ends the packet's journey, so its handle is freed here.
    """

    __slots__ = ("policy", "offered_packets", "injected_drops", "_pool")

    def __init__(
        self,
        dst: "Node",
        rate_bps: int,
        prop_delay_ns: int,
        policy: DropPolicy,
    ):
        super().__init__(dst, rate_bps, prop_delay_ns)
        self.policy = policy
        self.offered_packets = 0
        self.injected_drops = 0
        self._pool = PacketPool.of(dst.sim) if dst is not None else None

    def propagate(self, sim: Simulator, h: int) -> None:
        index = self.offered_packets
        self.offered_packets += 1
        if self.policy(PacketView(self._pool, h), index):
            self.injected_drops += 1
            self._pool.free(h)
            return
        super().propagate(sim, h)


def random_loss(rng: random.Random, probability: float) -> DropPolicy:
    """Drop each packet independently with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")

    def _policy(packet: PacketView, index: int) -> bool:
        return rng.random() < probability

    return _policy


def drop_nth(*indices: int) -> DropPolicy:
    """Drop exactly the packets at the given 0-based offered positions."""
    targets = frozenset(indices)

    def _policy(packet: PacketView, index: int) -> bool:
        return index in targets

    return _policy


def drop_data_once(seq: int) -> DropPolicy:
    """Drop the first data segment whose sequence number equals ``seq``."""
    state = {"done": False}

    def _policy(packet: PacketView, index: int) -> bool:
        if not state["done"] and not packet.is_ack and packet.seq == seq:
            state["done"] = True
            return True
        return False

    return _policy


def never() -> DropPolicy:
    """A policy that drops nothing (useful as a default)."""
    return lambda packet, index: False


def make_lossy(link: Link, policy: DropPolicy) -> FaultyLink:
    """Wrap an existing link's parameters into a FaultyLink (same endpoint)."""
    return FaultyLink(link.dst, link.rate_bps, link.prop_delay_ns, policy)
