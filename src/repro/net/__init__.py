"""Network substrate: packets, links, queues, switches, hosts, topologies."""

from .faults import FaultyLink, drop_data_once, drop_nth, make_lossy, random_loss
from .host import Host
from .link import Link
from .node import Node
from .packet import ACK_BYTES, DEFAULT_MSS, HEADER_BYTES, Packet, make_ack_packet, make_data_packet
from .port import OutputPort
from .queues import DEFAULT_BUFFER_BYTES, DEFAULT_ECN_THRESHOLD, DropTailQueue
from .shared_buffer import SharedBufferSwitch
from .switch import Switch
from .topology import (
    TOPOLOGIES,
    DumbbellNetwork,
    FatTreeNetwork,
    TopologyParams,
    TwoTierTree,
    WiringError,
    build_dumbbell,
    build_fat_tree,
    build_star,
    build_two_tier,
    check_wiring,
    topology_builder,
    topology_names,
)

__all__ = [
    "Host",
    "Link",
    "Node",
    "Packet",
    "make_ack_packet",
    "make_data_packet",
    "ACK_BYTES",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "OutputPort",
    "DropTailQueue",
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_ECN_THRESHOLD",
    "Switch",
    "SharedBufferSwitch",
    "FaultyLink",
    "random_loss",
    "drop_nth",
    "drop_data_once",
    "make_lossy",
    "TopologyParams",
    "TwoTierTree",
    "DumbbellNetwork",
    "FatTreeNetwork",
    "WiringError",
    "build_dumbbell",
    "build_fat_tree",
    "build_star",
    "build_two_tier",
    "check_wiring",
    "topology_builder",
    "topology_names",
    "TOPOLOGIES",
]
