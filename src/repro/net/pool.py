"""The packet flyweight pool: struct-of-arrays storage for packets in flight.

Per-``Packet`` objects were the highest-churn allocation in the simulator:
every segment and every ACK paid an object construction, fifteen slot
writes, and (eventually) a deallocation.  The pool replaces the object
with an integer **handle** indexing preallocated parallel columns — one
column per field, ``bytearray`` for the flag bits and liveness, Python
lists for the integer fields (measured faster than ``array('q')`` for the
read/write mix of this workload).  Components on the hot path
(:class:`~repro.net.port.OutputPort`, :class:`~repro.net.queues.DropTailQueue`,
:class:`~repro.net.link.Link`, the TCP endpoints) bind the columns they
touch once at construction and then index them per packet.

Handle lifecycle
----------------
``alloc_data`` / ``alloc_ack`` / ``alloc_control`` pop a handle off the
freelist (growing the columns by doubling when it is empty) and
initialize the fields that packet kind uses.  Ownership travels with the
packet: whoever terminates the packet's journey frees the handle —

- the receiving endpoint, after copying the fields it needs to locals;
- a queue, when it drops the packet on overflow (after ``on_drop`` fires);
- a switch/host, for unroutable or undeliverable packets;
- a :class:`~repro.net.faults.FaultyLink`, for injected drops.

``free`` always verifies liveness, so a double free or a stale handle
raises :class:`PoolError` immediately instead of silently corrupting a
recycled packet (the same fail-fast contract the PR-3 event freelist
regression test established for events).

Columns grow **in place** (``extend`` — never reassignment), so column
references bound at component construction stay valid across growth.

The pool is simulator-owned (``sim.pool``), created lazily by
:meth:`PacketPool.of` so the engine never imports the net layer.
"""

from __future__ import annotations

from typing import List

from .packet import ACK_BYTES, HEADER_BYTES, Packet, UNASSIGNED_PACKET_ID

#: Flag bits packed into the ``flags`` column (one byte per packet).
F_ACK = 1  #: pure ACK (no payload)
F_ECT = 2  #: ECN-capable transport (RFC 3168 ECT codepoint)
F_CE = 4  #: congestion experienced (set by a switch)
F_ECE = 8  #: ECN-echo (receiver -> sender, on ACKs)
F_INC = 16  #: Pulser-style incast-onset bit (arXiv:1809.09751)
F_RETX = 32  #: retransmitted segment

#: Initial number of packet slots; grows by doubling under load.
DEFAULT_CAPACITY = 256


class PoolError(RuntimeError):
    """A handle was freed twice, or used after being freed."""


class PacketView:
    """Read-only object facade over one pooled packet.

    Cold paths that want ``Packet``-style attribute access (fault-injection
    policies, debug output, tests) get a view; the hot path never builds
    one.  The view snapshots nothing — it reads through to the columns —
    so it must not outlive the handle's allocation.
    """

    __slots__ = ("_pool", "_h")

    def __init__(self, pool: "PacketPool", handle: int):
        self._pool = pool
        self._h = handle

    @property
    def handle(self) -> int:
        return self._h

    @property
    def packet_id(self) -> int:
        return self._pool.packet_id[self._h]

    @property
    def flow_id(self) -> int:
        return self._pool.flow_id[self._h]

    @property
    def src(self) -> int:
        return self._pool.src[self._h]

    @property
    def dst(self) -> int:
        return self._pool.dst[self._h]

    @property
    def seq(self) -> int:
        return self._pool.seq[self._h]

    @property
    def payload_len(self) -> int:
        return self._pool.payload_len[self._h]

    @property
    def ack_seq(self) -> int:
        return self._pool.ack_seq[self._h]

    @property
    def wire_bytes(self) -> int:
        return self._pool.wire_bytes[self._h]

    @property
    def end_seq(self) -> int:
        return self._pool.seq[self._h] + self._pool.payload_len[self._h]

    @property
    def is_ack(self) -> bool:
        return bool(self._pool.flags[self._h] & F_ACK)

    @property
    def ect(self) -> bool:
        return bool(self._pool.flags[self._h] & F_ECT)

    @property
    def ce(self) -> bool:
        return bool(self._pool.flags[self._h] & F_CE)

    @property
    def ece(self) -> bool:
        return bool(self._pool.flags[self._h] & F_ECE)

    @property
    def inc(self) -> bool:
        return bool(self._pool.flags[self._h] & F_INC)

    @property
    def is_retransmit(self) -> bool:
        return bool(self._pool.flags[self._h] & F_RETX)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_ack:
            return (
                f"AckView(h={self._h}, flow={self.flow_id}, ack={self.ack_seq}, "
                f"{'E' if self.ece else '-'}, {self.src}->{self.dst})"
            )
        flags = ("T" if self.ect else "-") + ("C" if self.ce else "-")
        return (
            f"DataView(h={self._h}, flow={self.flow_id}, "
            f"seq={self.seq}+{self.payload_len}, {flags}, {self.src}->{self.dst})"
        )


class PacketPool:
    """Recycled-handle flyweight storage for every packet in one simulation."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload_len",
        "ack_seq",
        "wire_bytes",
        "packet_id",
        "flags",
        "live",
        "capacity",
        "allocated_total",
        "freed_total",
        "_free",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity}")
        self.flow_id: List[int] = [0] * capacity
        self.src: List[int] = [0] * capacity
        self.dst: List[int] = [0] * capacity
        self.seq: List[int] = [0] * capacity
        self.payload_len: List[int] = [0] * capacity
        self.ack_seq: List[int] = [0] * capacity
        self.wire_bytes: List[int] = [0] * capacity
        self.packet_id: List[int] = [UNASSIGNED_PACKET_ID] * capacity
        self.flags = bytearray(capacity)
        self.live = bytearray(capacity)
        self.capacity = capacity
        self.allocated_total = 0
        self.freed_total = 0
        # LIFO freelist: the most recently freed handle is the next
        # allocated, keeping the working set of columns cache-warm.
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    @classmethod
    def of(cls, sim) -> "PacketPool":
        """The simulator's pool, created (and attached) on first use."""
        pool = sim.pool
        if pool is None:
            pool = sim.pool = cls()
        return pool

    # -- capacity ---------------------------------------------------------------
    def _grow(self) -> None:
        """Double every column **in place**; bound column refs stay valid."""
        old = self.capacity
        self.flow_id.extend([0] * old)
        self.src.extend([0] * old)
        self.dst.extend([0] * old)
        self.seq.extend([0] * old)
        self.payload_len.extend([0] * old)
        self.ack_seq.extend([0] * old)
        self.wire_bytes.extend([0] * old)
        self.packet_id.extend([UNASSIGNED_PACKET_ID] * old)
        self.flags.extend(bytes(old))
        self.live.extend(bytes(old))
        self.capacity = old * 2
        self._free.extend(range(self.capacity - 1, old - 1, -1))

    # -- allocation -------------------------------------------------------------
    def alloc_data(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        payload_len: int,
        ect: bool,
        is_retransmit: bool,
        packet_id: int,
    ) -> int:
        """Allocate a data segment (payload + 40 B header on the wire)."""
        free = self._free
        if not free:
            self._grow()
        h = free.pop()
        self.flow_id[h] = flow_id
        self.src[h] = src
        self.dst[h] = dst
        self.seq[h] = seq
        self.payload_len[h] = payload_len
        self.ack_seq[h] = 0
        self.wire_bytes[h] = payload_len + HEADER_BYTES
        self.packet_id[h] = packet_id
        self.flags[h] = (F_ECT if ect else 0) | (F_RETX if is_retransmit else 0)
        self.live[h] = 1
        self.allocated_total += 1
        return h

    def alloc_ack(
        self,
        flow_id: int,
        src: int,
        dst: int,
        ack_seq: int,
        ece: bool,
        inc: bool,
        packet_id: int,
    ) -> int:
        """Allocate a pure cumulative ACK (64 B on the wire)."""
        free = self._free
        if not free:
            self._grow()
        h = free.pop()
        self.flow_id[h] = flow_id
        self.src[h] = src
        self.dst[h] = dst
        self.seq[h] = 0
        self.payload_len[h] = 0
        self.ack_seq[h] = ack_seq
        self.wire_bytes[h] = ACK_BYTES
        self.packet_id[h] = packet_id
        self.flags[h] = F_ACK | (F_ECE if ece else 0) | (F_INC if inc else 0)
        self.live[h] = 1
        self.allocated_total += 1
        return h

    def alloc_control(
        self, flow_id: int, src: int, dst: int, wire_bytes: int, packet_id: int
    ) -> int:
        """Allocate a bare control frame (incast request packets)."""
        free = self._free
        if not free:
            self._grow()
        h = free.pop()
        self.flow_id[h] = flow_id
        self.src[h] = src
        self.dst[h] = dst
        self.seq[h] = 0
        self.payload_len[h] = 0
        self.ack_seq[h] = 0
        self.wire_bytes[h] = wire_bytes
        self.packet_id[h] = packet_id
        self.flags[h] = 0
        self.live[h] = 1
        self.allocated_total += 1
        return h

    def intern(self, packet: Packet) -> int:
        """Copy a legacy :class:`Packet` object into the pool.

        The bridge for tests and tools that build packets declaratively
        with the classic constructor; internal components never call it.
        """
        free = self._free
        if not free:
            self._grow()
        h = free.pop()
        self.flow_id[h] = packet.flow_id
        self.src[h] = packet.src
        self.dst[h] = packet.dst
        self.seq[h] = packet.seq
        self.payload_len[h] = packet.payload_len
        self.ack_seq[h] = packet.ack_seq
        self.wire_bytes[h] = packet.wire_bytes
        self.packet_id[h] = packet.packet_id
        self.flags[h] = (
            (F_ACK if packet.is_ack else 0)
            | (F_ECT if packet.ect else 0)
            | (F_CE if packet.ce else 0)
            | (F_ECE if packet.ece else 0)
            | (F_INC if packet.inc else 0)
            | (F_RETX if packet.is_retransmit else 0)
        )
        self.live[h] = 1
        self.allocated_total += 1
        return h

    # -- release ----------------------------------------------------------------
    def free(self, h: int) -> None:
        """Return a handle to the freelist.

        Always validates liveness: freeing twice, or freeing a handle that
        was never allocated, raises :class:`PoolError` at the exact
        operation that went wrong.
        """
        if not self.live[h]:
            raise PoolError(
                f"free of dead packet handle {h} "
                f"(double free, or a stale handle kept past its lifetime)"
            )
        self.live[h] = 0
        self.freed_total += 1
        self._free.append(h)

    # -- views ------------------------------------------------------------------
    def view(self, h: int) -> PacketView:
        """An attribute-style facade over a live handle (cold paths only)."""
        if not self.live[h]:
            raise PoolError(f"view of dead packet handle {h}")
        return PacketView(self, h)

    @property
    def live_count(self) -> int:
        """Handles currently allocated (conservation: allocated - freed)."""
        return self.allocated_total - self.freed_total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PacketPool(capacity={self.capacity}, live={self.live_count}, "
            f"allocated={self.allocated_total}, freed={self.freed_total})"
        )
