"""Topology builders.

:func:`build_two_tier` reproduces the paper's testbed (Fig. 5 / Fig. 10): a
canonical tree-based 2-tier topology.  The aggregator hangs off the root
switch (*Switch 1*); worker servers are spread round-robin across leaf
switches that uplink to the root.  The bottleneck in every incast
experiment is the root switch's port toward the aggregator.

All links are 1 Gbps with a 12 µs propagation delay by default, giving an
unloaded worker→aggregator→worker RTT of ~100 µs — the paper's baseline
RTT, and the ``D`` in its pipeline-capacity calculation
``C·D + B ≈ 140.5 KB``.

Beyond the paper's tree, the module builds the other canonical data-center
shapes on the same :class:`TopologyParams` config:

- :func:`build_dumbbell` — N sender/receiver pairs across one shared
  bottleneck trunk, with optionally heterogeneous per-leg propagation
  delays (the classic RTT-unfairness testbed).
- :func:`build_fat_tree` — a k-ary fat-tree (k pods of k/2 edge + k/2
  aggregation switches over (k/2)² cores) with deterministic, seeded
  ECMP across the equal-cost uplinks (see
  :meth:`~repro.net.switch.Switch.add_ecmp_group`).
- :func:`build_star` — the single-switch star the unit tests use.

Every network object exposes the same workload-facing surface —
``servers``, ``aggregator``, ``all_hosts``, ``bottleneck_port``,
``hops_between`` and ``baseline_rtt_ns`` — so the workloads and scenario
layer are topology-agnostic.  :func:`check_wiring` walks any built network
and asserts the structural invariants (bidirectional rate-consistent
cables, all-pairs reachability, truly equal-cost ECMP candidate sets);
:data:`TOPOLOGIES` maps the spec-level topology names onto builders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..sim.engine import Simulator
from ..sim.units import GBPS, transmission_time_ns
from .host import Host
from .link import DEFAULT_PROP_DELAY_NS, Link
from .packet import ACK_BYTES, DEFAULT_MSS, HEADER_BYTES
from .port import OutputPort
from .queues import DEFAULT_BUFFER_BYTES, DEFAULT_ECN_THRESHOLD
from .shared_buffer import SharedBufferSwitch
from .switch import Switch


@dataclass
class TopologyParams:
    """Knobs shared by all links/switches of a built topology."""

    link_rate_bps: int = GBPS
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD
    n_servers: int = 9
    n_leaf_switches: int = 2
    #: When set, every switch becomes a :class:`SharedBufferSwitch` with a
    #: dynamically shared pool of this many bytes (``buffer_bytes`` then
    #: caps each individual port's share).
    shared_pool_bytes: Optional[int] = None
    #: Dumbbell: number of sender/receiver pairs across the trunk.
    n_pairs: int = 4
    #: Dumbbell: per-pair access-leg propagation delays, cycled when there
    #: are more pairs than entries; ``()`` keeps every leg at
    #: ``prop_delay_ns`` (homogeneous RTTs).  A tuple, so the params stay
    #: hashable for :class:`~repro.exec.ScenarioSpec` overrides.
    leg_delays_ns: Tuple[int, ...] = ()
    #: Fat-tree: arity (must be even; k pods, (k/2)² cores, k²·h/2 hosts).
    fat_tree_k: int = 4
    #: Fat-tree: hosts per edge switch (``None`` → the canonical k/2).
    hosts_per_edge: Optional[int] = None
    #: Fat-tree ECMP granularity: ``"flow"`` pins each flow to one path
    #: (order-preserving), ``"packet"`` sprays per packet (reordering-prone;
    #: the receiver's reassembly buffer absorbs it).
    ecmp_mode: str = "flow"


def _make_switch(sim: Simulator, name: str, params: "TopologyParams") -> Switch:
    if params.shared_pool_bytes is not None:
        return SharedBufferSwitch(
            sim,
            name,
            shared_pool_bytes=params.shared_pool_bytes,
            per_port_cap_bytes=params.buffer_bytes,
            ecn_threshold_bytes=params.ecn_threshold_bytes,
        )
    return Switch(sim, name, params.buffer_bytes, params.ecn_threshold_bytes)


@dataclass
class TwoTierTree:
    """The built testbed: handles to every node plus convenience queries."""

    sim: Simulator
    params: TopologyParams
    root: Switch
    leaves: List[Switch]
    aggregator: Host
    servers: List[Host]
    #: Root-switch egress port toward the aggregator — the incast bottleneck
    #: (the queue sampled in Fig. 9 / Fig. 14).
    bottleneck_port: OutputPort
    server_leaf: List[int] = field(default_factory=list)

    def hops_between(self, a: Host, b: Host) -> int:
        """Number of links on the path from host ``a`` to host ``b``."""
        if a is b:
            return 0
        hops_a = 1 if a is self.aggregator else 2  # to root
        hops_b = 1 if b is self.aggregator else 2
        if a is not self.aggregator and b is not self.aggregator:
            ia = self.servers.index(a)
            ib = self.servers.index(b)
            if self.server_leaf[ia] == self.server_leaf[ib]:
                return 2  # up to the shared leaf and back down
        return hops_a + hops_b

    def baseline_rtt_ns(self, payload_bytes: int = DEFAULT_MSS) -> int:
        """Unloaded data+ACK round trip between a server and the aggregator.

        Counts propagation and store-and-forward serialization on every hop
        for a full data segment one way and a pure ACK back.  This is the
        quantity the paper recommends for DCTCP+'s ``backoff_time_unit``.
        """
        hops = self.hops_between(self.servers[0], self.aggregator)
        rate = self.params.link_rate_bps
        data_ser = transmission_time_ns(payload_bytes + HEADER_BYTES, rate)
        ack_ser = transmission_time_ns(ACK_BYTES, rate)
        one_way_prop = hops * self.params.prop_delay_ns
        return 2 * one_way_prop + hops * (data_ser + ack_ser)

    @property
    def pipeline_capacity_bytes(self) -> float:
        """The paper's ``C × D + B`` for the bottleneck port."""
        c_times_d = self.params.link_rate_bps / 8 * (self.baseline_rtt_ns() / 1e9)
        return c_times_d + self.params.buffer_bytes

    @property
    def all_hosts(self) -> List[Host]:
        return [self.aggregator, *self.servers]


def _attach_host(
    sim: Simulator,
    switch: Switch,
    host: Host,
    params: TopologyParams,
    prop_delay_ns: Optional[int] = None,
) -> OutputPort:
    """Wire ``host`` to ``switch`` with a full-duplex cable; return the
    switch-side egress port toward the host.  ``prop_delay_ns`` overrides
    the shared delay for this one cable (heterogeneous dumbbell legs)."""
    delay = params.prop_delay_ns if prop_delay_ns is None else prop_delay_ns
    up = Link(switch, params.link_rate_bps, delay)
    host.attach_link(up)
    down = Link(host, params.link_rate_bps, delay)
    port = switch.add_port(down, name=f"{switch.name}->{host.name}")
    switch.add_route(host.node_id, port)
    return port


def _connect_switches(a: Switch, b: Switch, params: TopologyParams) -> tuple:
    """Full-duplex cable between two switches; returns (a->b, b->a) ports."""
    ab = a.add_port(Link(b, params.link_rate_bps, params.prop_delay_ns), name=f"{a.name}->{b.name}")
    ba = b.add_port(Link(a, params.link_rate_bps, params.prop_delay_ns), name=f"{b.name}->{a.name}")
    return ab, ba


def build_two_tier(sim: Simulator, params: Optional[TopologyParams] = None) -> TwoTierTree:
    """Build the paper's 2-tier testbed tree.

    Layout (defaults): 1 aggregator on the root switch; 9 servers spread
    round-robin across 2 leaf switches.
    """
    params = params or TopologyParams()
    if params.n_servers < 1:
        raise ValueError("need at least one server")
    if params.n_leaf_switches < 1:
        raise ValueError("need at least one leaf switch")

    root = _make_switch(sim, "switch1", params)
    leaves = [_make_switch(sim, f"switch{i + 2}", params) for i in range(params.n_leaf_switches)]
    aggregator = Host(sim, "aggregator")
    bottleneck_port = _attach_host(sim, root, aggregator, params)

    root_to_leaf = []
    leaf_to_root = []
    for leaf in leaves:
        down_port, up_port = _connect_switches(root, leaf, params)
        root_to_leaf.append(down_port)
        leaf_to_root.append(up_port)

    servers: List[Host] = []
    server_leaf: List[int] = []
    for i in range(params.n_servers):
        leaf_idx = i % params.n_leaf_switches
        server = Host(sim, f"server{i + 1}")
        _attach_host(sim, leaves[leaf_idx], server, params)
        servers.append(server)
        server_leaf.append(leaf_idx)
        # Root forwards traffic for this server down the right leaf uplink.
        root.add_route(server.node_id, root_to_leaf[leaf_idx])

    # Leaf switches: anything not local goes up to the root.
    for leaf_idx, leaf in enumerate(leaves):
        leaf.add_route(aggregator.node_id, leaf_to_root[leaf_idx])
        for i, server in enumerate(servers):
            if server_leaf[i] != leaf_idx:
                leaf.add_route(server.node_id, leaf_to_root[leaf_idx])

    return TwoTierTree(
        sim=sim,
        params=params,
        root=root,
        leaves=leaves,
        aggregator=aggregator,
        servers=servers,
        bottleneck_port=bottleneck_port,
        server_leaf=server_leaf,
    )


def build_star(
    sim: Simulator,
    n_senders: int = 2,
    params: Optional[TopologyParams] = None,
) -> TwoTierTree:
    """Single-switch star used by unit tests: N senders, one receiver.

    Returned as a :class:`TwoTierTree` with zero leaf switches collapsed
    into direct root attachment, so test code can reuse the same accessors
    (``aggregator``, ``servers``, ``bottleneck_port``).  (This used to be
    called ``build_dumbbell``; that name now builds a real two-switch
    dumbbell.)
    """
    params = params or TopologyParams()
    root = _make_switch(sim, "switch1", params)
    aggregator = Host(sim, "receiver")
    bottleneck_port = _attach_host(sim, root, aggregator, params)
    servers = []
    for i in range(n_senders):
        server = Host(sim, f"sender{i + 1}")
        _attach_host(sim, root, server, params)
        servers.append(server)
    tree = TwoTierTree(
        sim=sim,
        params=params,
        root=root,
        leaves=[],
        aggregator=aggregator,
        servers=servers,
        bottleneck_port=bottleneck_port,
        server_leaf=[0] * n_senders,
    )
    # Direct attachment: one hop each way.
    tree.hops_between = lambda a, b: 0 if a is b else 2  # type: ignore[method-assign]
    return tree


def _uniform_rtt_ns(params: TopologyParams, hops: int, payload_bytes: int) -> int:
    """Unloaded data+ACK RTT over ``hops`` homogeneous store-and-forward
    links (the same accounting :meth:`TwoTierTree.baseline_rtt_ns` does)."""
    rate = params.link_rate_bps
    data_ser = transmission_time_ns(payload_bytes + HEADER_BYTES, rate)
    ack_ser = transmission_time_ns(ACK_BYTES, rate)
    one_way_prop = hops * params.prop_delay_ns
    return 2 * one_way_prop + hops * (data_ser + ack_ser)


# -- dumbbell ----------------------------------------------------------------------
@dataclass
class DumbbellNetwork:
    """N sender/receiver pairs across one shared bottleneck trunk.

    Pair *i*'s sender hangs off the left switch and its receiver off the
    right switch; both access legs of a pair share ``leg_delays_ns[i]``, so
    pairs can be given deliberately unequal RTTs.  The trunk (left→right)
    is the shared bottleneck every forward-direction flow crosses.

    The workload-facing surface matches :class:`TwoTierTree`: ``servers``
    are the senders and the ``aggregator`` is pair 0's receiver, so the
    incast/HTTP/swarm workloads drive a dumbbell unchanged.
    """

    sim: Simulator
    params: TopologyParams
    left: Switch
    right: Switch
    senders: List[Host]
    receivers: List[Host]
    #: Left-switch egress port onto the trunk — the shared bottleneck.
    bottleneck_port: OutputPort
    #: Right-switch egress onto the trunk (ACKs and reverse traffic).
    reverse_port: OutputPort
    #: Effective per-pair access-leg propagation delay.
    leg_delays_ns: List[int] = field(default_factory=list)

    @property
    def servers(self) -> List[Host]:  # type: ignore[no-redef]
        return self.senders

    @property
    def aggregator(self) -> Host:
        return self.receivers[0]

    @property
    def all_hosts(self) -> List[Host]:
        return [*self.receivers, *self.senders]

    def hops_between(self, a: Host, b: Host) -> int:
        if a is b:
            return 0
        a_left = a in self.senders
        b_left = b in self.senders
        return 2 if a_left == b_left else 3

    def baseline_rtt_ns(self, payload_bytes: int = DEFAULT_MSS) -> int:
        """Unloaded data+ACK RTT between pair 0's endpoints (3 hops)."""
        rate = self.params.link_rate_bps
        data_ser = transmission_time_ns(payload_bytes + HEADER_BYTES, rate)
        ack_ser = transmission_time_ns(ACK_BYTES, rate)
        one_way_prop = 2 * self.leg_delays_ns[0] + self.params.prop_delay_ns
        return 2 * one_way_prop + 3 * (data_ser + ack_ser)


def build_dumbbell(
    sim: Simulator, params: Optional[TopologyParams] = None
) -> DumbbellNetwork:
    """Build a parameterized dumbbell: ``params.n_pairs`` sender/receiver
    pairs across one shared trunk.

    ``params.leg_delays_ns`` assigns per-pair access-leg delays (cycled
    when shorter than ``n_pairs``), modelling heterogeneous RTTs competing
    for the same bottleneck; the trunk itself keeps ``prop_delay_ns``.
    """
    params = params or TopologyParams()
    n = params.n_pairs
    if n < 1:
        raise ValueError("need at least one sender/receiver pair")
    legs = params.leg_delays_ns or (params.prop_delay_ns,)
    leg_delays = [int(legs[i % len(legs)]) for i in range(n)]
    if any(d < 0 for d in leg_delays):
        raise ValueError(f"leg delays must be >= 0, got {leg_delays}")

    left = _make_switch(sim, "left", params)
    right = _make_switch(sim, "right", params)
    bottleneck_port, reverse_port = _connect_switches(left, right, params)

    receivers: List[Host] = []
    senders: List[Host] = []
    for i in range(n):
        receiver = Host(sim, f"receiver{i + 1}")
        _attach_host(sim, right, receiver, params, prop_delay_ns=leg_delays[i])
        receivers.append(receiver)
        left.add_route(receiver.node_id, bottleneck_port)
    for i in range(n):
        sender = Host(sim, f"sender{i + 1}")
        _attach_host(sim, left, sender, params, prop_delay_ns=leg_delays[i])
        senders.append(sender)
        right.add_route(sender.node_id, reverse_port)

    return DumbbellNetwork(
        sim=sim,
        params=params,
        left=left,
        right=right,
        senders=senders,
        receivers=receivers,
        bottleneck_port=bottleneck_port,
        reverse_port=reverse_port,
        leg_delays_ns=leg_delays,
    )


# -- fat-tree ----------------------------------------------------------------------
@dataclass
class FatTreeNetwork:
    """A k-ary fat-tree: k pods × (k/2 edge + k/2 agg) over (k/2)² cores.

    Core group *a* (cores ``a·k/2 … a·k/2+k/2-1``) connects to aggregation
    switch *a* of every pod, the canonical wiring that gives every
    inter-pod host pair (k/2)² equal-cost paths and every intra-pod pair
    k/2.  Upward forwarding uses seeded deterministic ECMP; downward
    routes are unique.

    The workload surface matches :class:`TwoTierTree`: host 0 plays the
    ``aggregator`` (its edge-switch egress port is the ``bottleneck_port``
    incast converges on) and every other host is a server.
    """

    sim: Simulator
    params: TopologyParams
    k: int
    cores: List[Switch]
    aggs: List[List[Switch]]  # [pod][index]
    edges: List[List[Switch]]  # [pod][index]
    hosts: List[Host]
    host_pod: List[int]
    host_edge: List[int]
    #: Edge egress port toward host 0 — the incast bottleneck.
    bottleneck_port: OutputPort

    @property
    def aggregator(self) -> Host:
        return self.hosts[0]

    @property
    def servers(self) -> List[Host]:
        return self.hosts[1:]

    @property
    def all_hosts(self) -> List[Host]:
        return list(self.hosts)

    def hops_between(self, a: Host, b: Host) -> int:
        if a is b:
            return 0
        ia = self.hosts.index(a)
        ib = self.hosts.index(b)
        if self.host_pod[ia] != self.host_pod[ib]:
            return 6  # host-edge-agg-core-agg-edge-host
        if self.host_edge[ia] != self.host_edge[ib]:
            return 4  # host-edge-agg-edge-host
        return 2  # same edge switch

    def baseline_rtt_ns(self, payload_bytes: int = DEFAULT_MSS) -> int:
        hops = self.hops_between(self.servers[0], self.aggregator)
        return _uniform_rtt_ns(self.params, hops, payload_bytes)


def build_fat_tree(
    sim: Simulator, params: Optional[TopologyParams] = None
) -> FatTreeNetwork:
    """Build a k-ary fat-tree with deterministic ECMP.

    ``params.fat_tree_k`` must be even; ``params.hosts_per_edge`` defaults
    to the canonical k/2 (a full fat-tree has k³/4 hosts).  Every switch's
    ECMP hash is salted from a named simulator stream, so path assignment
    is a pure function of the scenario seed — identical across processes,
    serial/parallel executors and the native event core.
    """
    params = params or TopologyParams()
    k = params.fat_tree_k
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    if params.ecmp_mode not in ("flow", "packet"):
        raise ValueError(f"ecmp_mode must be 'flow' or 'packet', got {params.ecmp_mode!r}")
    half = k // 2
    hosts_per_edge = params.hosts_per_edge if params.hosts_per_edge is not None else half
    if hosts_per_edge < 1:
        raise ValueError("need at least one host per edge switch")
    per_packet = params.ecmp_mode == "packet"

    cores = [
        _make_switch(sim, f"core{g}-{c}", params) for g in range(half) for c in range(half)
    ]
    aggs: List[List[Switch]] = []
    edges: List[List[Switch]] = []
    for p in range(k):
        aggs.append([_make_switch(sim, f"pod{p}-agg{a}", params) for a in range(half)])
        edges.append([_make_switch(sim, f"pod{p}-edge{e}", params) for e in range(half)])

    hosts: List[Host] = []
    host_pod: List[int] = []
    host_edge: List[int] = []
    host_port: List[OutputPort] = []  # edge egress toward each host
    for p in range(k):
        for e in range(half):
            for _ in range(hosts_per_edge):
                host = Host(sim, f"host{len(hosts) + 1}")
                port = _attach_host(sim, edges[p][e], host, params)
                hosts.append(host)
                host_pod.append(p)
                host_edge.append(e)
                host_port.append(port)

    # Full-duplex fabric cables.  edge_up[p][e][a]: edge (p,e) toward agg a;
    # agg_down[p][a][e]: agg (p,a) toward edge e; agg_up[p][a][c]: agg (p,a)
    # toward its c-th core; core_down[g*half+c][p]: that core toward pod p.
    edge_up = [[[None] * half for _ in range(half)] for _ in range(k)]
    agg_down = [[[None] * half for _ in range(half)] for _ in range(k)]
    agg_up = [[[None] * half for _ in range(half)] for _ in range(k)]
    core_down = [[None] * k for _ in range(half * half)]
    for p in range(k):
        for e in range(half):
            for a in range(half):
                up, down = _connect_switches(edges[p][e], aggs[p][a], params)
                edge_up[p][e][a] = up
                agg_down[p][a][e] = down
    for p in range(k):
        for a in range(half):
            for c in range(half):
                core = a * half + c
                up, down = _connect_switches(aggs[p][a], cores[core], params)
                agg_up[p][a][c] = up
                core_down[core][p] = down

    # Routing.  Downward paths are unique; upward forwarding fans over the
    # equal-cost uplinks with a per-switch salted hash.
    def _salt(switch: Switch) -> int:
        return sim.stream(f"ecmp/{switch.name}").getrandbits(64)

    edge_salts = [[_salt(edges[p][e]) for e in range(half)] for p in range(k)]
    agg_salts = [[_salt(aggs[p][a]) for a in range(half)] for p in range(k)]
    for h, host in enumerate(hosts):
        hp, he = host_pod[h], host_edge[h]
        for p in range(k):
            for e in range(half):
                if (p, e) == (hp, he):
                    continue  # local hosts got their direct route in _attach_host
                edges[p][e].add_ecmp_group(
                    host.node_id, edge_up[p][e], edge_salts[p][e], per_packet
                )
            for a in range(half):
                if p == hp:
                    aggs[p][a].add_route(host.node_id, agg_down[p][a][he])
                else:
                    aggs[p][a].add_ecmp_group(
                        host.node_id, agg_up[p][a], agg_salts[p][a], per_packet
                    )
        for core in range(half * half):
            cores[core].add_route(host.node_id, core_down[core][hp])

    return FatTreeNetwork(
        sim=sim,
        params=params,
        k=k,
        cores=cores,
        aggs=aggs,
        edges=edges,
        hosts=hosts,
        host_pod=host_pod,
        host_edge=host_edge,
        bottleneck_port=host_port[0],
    )


#: Any built network object (they share the workload-facing surface).
Network = Union[TwoTierTree, DumbbellNetwork, FatTreeNetwork]


# -- structural validation ---------------------------------------------------------
class WiringError(AssertionError):
    """A built topology violates a structural invariant."""


def _discover_switches(hosts: List[Host]) -> List:
    """Every switch reachable from the hosts' access links (BFS)."""
    seen: List = []
    frontier = []
    for host in hosts:
        if host.nic is None:
            raise WiringError(f"host {host.name!r} has no access link")
        frontier.append(host.nic.link.dst)
    host_set = {id(h) for h in hosts}
    while frontier:
        node = frontier.pop()
        if id(node) in host_set or any(node is s for s in seen):
            continue
        seen.append(node)
        for port in node.ports:
            nxt = port.link.dst
            if id(nxt) not in host_set:
                frontier.append(nxt)
    return seen


def _check_cables(hosts: List[Host], switches: List) -> None:
    """Every cable must exist in both directions with matching rate/delay."""
    for host in hosts:
        up = host.nic.link
        switch = up.dst
        if not hasattr(switch, "ports"):
            raise WiringError(f"host {host.name!r} uplinks to a non-switch {switch!r}")
        down = [p.link for p in switch.ports if p.link.dst is host]
        if len(down) != 1:
            raise WiringError(
                f"host {host.name!r}: expected exactly one return link from "
                f"{switch.name!r}, found {len(down)}"
            )
        if (down[0].rate_bps, down[0].prop_delay_ns) != (up.rate_bps, up.prop_delay_ns):
            raise WiringError(
                f"host {host.name!r}: asymmetric access cable "
                f"({up.rate_bps}bps/{up.prop_delay_ns}ns up vs "
                f"{down[0].rate_bps}bps/{down[0].prop_delay_ns}ns down)"
            )
    for switch in switches:
        for port in switch.ports:
            link = port.link
            peer = link.dst
            if not hasattr(peer, "ports"):
                continue  # switch->host legs are covered above
            back = [
                p.link
                for p in peer.ports
                if p.link.dst is switch
                and (p.link.rate_bps, p.link.prop_delay_ns)
                == (link.rate_bps, link.prop_delay_ns)
            ]
            if not back:
                raise WiringError(
                    f"no matching return link for cable "
                    f"{switch.name!r}->{peer.name!r}"
                )


def _path_lengths(switch, dst: Host, hop_limit: int, on_path: Tuple[int, ...]) -> List[int]:
    """Lengths of every route-table path from ``switch`` to host ``dst``."""
    if len(on_path) > hop_limit:
        raise WiringError(
            f"path to {dst.name!r} exceeds {hop_limit} switch hops (routing loop?)"
        )
    candidates = None
    ecmp = getattr(switch, "ecmp_candidates", None)
    if ecmp is not None:
        candidates = ecmp(dst.node_id)
    if candidates is None:
        port = switch.route_for(dst.node_id)
        if port is None:
            raise WiringError(f"switch {switch.name!r} has no route toward {dst.name!r}")
        candidates = (port,)
    lengths: List[int] = []
    for port in candidates:
        nxt = port.link.dst
        if nxt is dst:
            lengths.append(1)
        elif hasattr(nxt, "ports"):
            if id(nxt) in on_path:
                raise WiringError(
                    f"routing loop through {nxt.name!r} toward {dst.name!r}"
                )
            lengths.extend(
                1 + n
                for n in _path_lengths(nxt, dst, hop_limit, on_path + (id(nxt),))
            )
        else:
            raise WiringError(
                f"switch {switch.name!r} forwards traffic for {dst.name!r} "
                f"to the wrong host {nxt.name!r}"
            )
    return lengths


def check_wiring(net: Network, hop_limit: int = 16) -> None:
    """Assert the structural invariants of a built network.

    - every cable is bidirectional and rate/delay-consistent;
    - every host's traffic to every other host terminates at that host
      (all-pairs reachability, no misdelivery, no routing loops);
    - along the way, every ECMP candidate set is *truly* equal cost: all
      alternative paths for an (src, dst) pair have the same hop count.

    Raises :class:`WiringError` on the first violation.  Purely passive
    (schedules no events, draws no randomness), so running it never
    perturbs simulation results.
    """
    hosts = list(net.all_hosts)
    if len(hosts) < 2:
        raise WiringError("a network needs at least two hosts")
    switches = _discover_switches(hosts)
    _check_cables(hosts, switches)
    for src in hosts:
        first = src.nic.link.dst
        for dst in hosts:
            if dst is src:
                continue
            lengths = _path_lengths(first, dst, hop_limit, (id(first),))
            if len(set(lengths)) != 1:
                raise WiringError(
                    f"unequal-cost paths from {src.name!r} to {dst.name!r}: "
                    f"hop counts {sorted(set(lengths))}"
                )


#: Spec-level topology names -> builders (all share the ``(sim, params)``
#: signature and the workload-facing network surface).
TOPOLOGIES: Dict[str, Callable[..., Network]] = {
    "two-tier": build_two_tier,
    "dumbbell": build_dumbbell,
    "fat-tree": build_fat_tree,
}


def topology_names() -> List[str]:
    """Registered topology names, in registry order."""
    return list(TOPOLOGIES)


def topology_builder(name: str) -> Callable[..., Network]:
    """Resolve a spec-level topology name to its builder."""
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {topology_names()}"
        ) from None
