"""Topology builders.

:func:`build_two_tier` reproduces the paper's testbed (Fig. 5 / Fig. 10): a
canonical tree-based 2-tier topology.  The aggregator hangs off the root
switch (*Switch 1*); worker servers are spread round-robin across leaf
switches that uplink to the root.  The bottleneck in every incast
experiment is the root switch's port toward the aggregator.

All links are 1 Gbps with a 12 µs propagation delay by default, giving an
unloaded worker→aggregator→worker RTT of ~100 µs — the paper's baseline
RTT, and the ``D`` in its pipeline-capacity calculation
``C·D + B ≈ 140.5 KB``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.engine import Simulator
from ..sim.units import GBPS, transmission_time_ns
from .host import Host
from .link import DEFAULT_PROP_DELAY_NS, Link
from .packet import ACK_BYTES, DEFAULT_MSS, HEADER_BYTES
from .port import OutputPort
from .queues import DEFAULT_BUFFER_BYTES, DEFAULT_ECN_THRESHOLD
from .shared_buffer import SharedBufferSwitch
from .switch import Switch


@dataclass
class TopologyParams:
    """Knobs shared by all links/switches of a built topology."""

    link_rate_bps: int = GBPS
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD
    n_servers: int = 9
    n_leaf_switches: int = 2
    #: When set, every switch becomes a :class:`SharedBufferSwitch` with a
    #: dynamically shared pool of this many bytes (``buffer_bytes`` then
    #: caps each individual port's share).
    shared_pool_bytes: Optional[int] = None


def _make_switch(sim: Simulator, name: str, params: "TopologyParams") -> Switch:
    if params.shared_pool_bytes is not None:
        return SharedBufferSwitch(
            sim,
            name,
            shared_pool_bytes=params.shared_pool_bytes,
            per_port_cap_bytes=params.buffer_bytes,
            ecn_threshold_bytes=params.ecn_threshold_bytes,
        )
    return Switch(sim, name, params.buffer_bytes, params.ecn_threshold_bytes)


@dataclass
class TwoTierTree:
    """The built testbed: handles to every node plus convenience queries."""

    sim: Simulator
    params: TopologyParams
    root: Switch
    leaves: List[Switch]
    aggregator: Host
    servers: List[Host]
    #: Root-switch egress port toward the aggregator — the incast bottleneck
    #: (the queue sampled in Fig. 9 / Fig. 14).
    bottleneck_port: OutputPort
    server_leaf: List[int] = field(default_factory=list)

    def hops_between(self, a: Host, b: Host) -> int:
        """Number of links on the path from host ``a`` to host ``b``."""
        if a is b:
            return 0
        hops_a = 1 if a is self.aggregator else 2  # to root
        hops_b = 1 if b is self.aggregator else 2
        if a is not self.aggregator and b is not self.aggregator:
            ia = self.servers.index(a)
            ib = self.servers.index(b)
            if self.server_leaf[ia] == self.server_leaf[ib]:
                return 2  # up to the shared leaf and back down
        return hops_a + hops_b

    def baseline_rtt_ns(self, payload_bytes: int = DEFAULT_MSS) -> int:
        """Unloaded data+ACK round trip between a server and the aggregator.

        Counts propagation and store-and-forward serialization on every hop
        for a full data segment one way and a pure ACK back.  This is the
        quantity the paper recommends for DCTCP+'s ``backoff_time_unit``.
        """
        hops = self.hops_between(self.servers[0], self.aggregator)
        rate = self.params.link_rate_bps
        data_ser = transmission_time_ns(payload_bytes + HEADER_BYTES, rate)
        ack_ser = transmission_time_ns(ACK_BYTES, rate)
        one_way_prop = hops * self.params.prop_delay_ns
        return 2 * one_way_prop + hops * (data_ser + ack_ser)

    @property
    def pipeline_capacity_bytes(self) -> float:
        """The paper's ``C × D + B`` for the bottleneck port."""
        c_times_d = self.params.link_rate_bps / 8 * (self.baseline_rtt_ns() / 1e9)
        return c_times_d + self.params.buffer_bytes

    @property
    def all_hosts(self) -> List[Host]:
        return [self.aggregator, *self.servers]


def _attach_host(sim: Simulator, switch: Switch, host: Host, params: TopologyParams) -> OutputPort:
    """Wire ``host`` to ``switch`` with a full-duplex cable; return the
    switch-side egress port toward the host."""
    up = Link(switch, params.link_rate_bps, params.prop_delay_ns)
    host.attach_link(up)
    down = Link(host, params.link_rate_bps, params.prop_delay_ns)
    port = switch.add_port(down, name=f"{switch.name}->{host.name}")
    switch.add_route(host.node_id, port)
    return port


def _connect_switches(a: Switch, b: Switch, params: TopologyParams) -> tuple:
    """Full-duplex cable between two switches; returns (a->b, b->a) ports."""
    ab = a.add_port(Link(b, params.link_rate_bps, params.prop_delay_ns), name=f"{a.name}->{b.name}")
    ba = b.add_port(Link(a, params.link_rate_bps, params.prop_delay_ns), name=f"{b.name}->{a.name}")
    return ab, ba


def build_two_tier(sim: Simulator, params: Optional[TopologyParams] = None) -> TwoTierTree:
    """Build the paper's 2-tier testbed tree.

    Layout (defaults): 1 aggregator on the root switch; 9 servers spread
    round-robin across 2 leaf switches.
    """
    params = params or TopologyParams()
    if params.n_servers < 1:
        raise ValueError("need at least one server")
    if params.n_leaf_switches < 1:
        raise ValueError("need at least one leaf switch")

    root = _make_switch(sim, "switch1", params)
    leaves = [_make_switch(sim, f"switch{i + 2}", params) for i in range(params.n_leaf_switches)]
    aggregator = Host(sim, "aggregator")
    bottleneck_port = _attach_host(sim, root, aggregator, params)

    root_to_leaf = []
    leaf_to_root = []
    for leaf in leaves:
        down_port, up_port = _connect_switches(root, leaf, params)
        root_to_leaf.append(down_port)
        leaf_to_root.append(up_port)

    servers: List[Host] = []
    server_leaf: List[int] = []
    for i in range(params.n_servers):
        leaf_idx = i % params.n_leaf_switches
        server = Host(sim, f"server{i + 1}")
        _attach_host(sim, leaves[leaf_idx], server, params)
        servers.append(server)
        server_leaf.append(leaf_idx)
        # Root forwards traffic for this server down the right leaf uplink.
        root.add_route(server.node_id, root_to_leaf[leaf_idx])

    # Leaf switches: anything not local goes up to the root.
    for leaf_idx, leaf in enumerate(leaves):
        leaf.add_route(aggregator.node_id, leaf_to_root[leaf_idx])
        for i, server in enumerate(servers):
            if server_leaf[i] != leaf_idx:
                leaf.add_route(server.node_id, leaf_to_root[leaf_idx])

    return TwoTierTree(
        sim=sim,
        params=params,
        root=root,
        leaves=leaves,
        aggregator=aggregator,
        servers=servers,
        bottleneck_port=bottleneck_port,
        server_leaf=server_leaf,
    )


def build_dumbbell(
    sim: Simulator,
    n_senders: int = 2,
    params: Optional[TopologyParams] = None,
) -> TwoTierTree:
    """Single-switch star used by unit tests: N senders, one receiver.

    Returned as a :class:`TwoTierTree` with zero leaf switches collapsed
    into direct root attachment, so test code can reuse the same accessors
    (``aggregator``, ``servers``, ``bottleneck_port``).
    """
    params = params or TopologyParams()
    root = _make_switch(sim, "switch1", params)
    aggregator = Host(sim, "receiver")
    bottleneck_port = _attach_host(sim, root, aggregator, params)
    servers = []
    for i in range(n_senders):
        server = Host(sim, f"sender{i + 1}")
        _attach_host(sim, root, server, params)
        servers.append(server)
    tree = TwoTierTree(
        sim=sim,
        params=params,
        root=root,
        leaves=[],
        aggregator=aggregator,
        servers=servers,
        bottleneck_port=bottleneck_port,
        server_leaf=[0] * n_senders,
    )
    # Direct attachment: one hop each way.
    tree.hops_between = lambda a, b: 0 if a is b else 2  # type: ignore[method-assign]
    return tree
