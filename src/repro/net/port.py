"""Output port: a drop-tail queue drained onto a link.

The port implements the standard store-and-forward egress pump: when a
packet is admitted to an idle port it begins serializing immediately; when
serialization finishes the frame is handed to the link for propagation and
the next queued frame (if any) starts serializing.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from .link import Link
from .packet import Packet
from .queues import DropTailQueue


class OutputPort:
    """Queue + transmitter for one egress direction.

    Parameters
    ----------
    sim:
        The simulator (owns the clock the pump runs on).
    link:
        The outgoing :class:`Link`.
    queue:
        Byte-accounted FIFO; ECN marking behaviour is configured there.
    name:
        Identifier used by instrumentation (e.g. ``"switch1->aggregator"``).
    """

    __slots__ = ("sim", "link", "queue", "name", "_busy", "tx_packets", "tx_bytes")

    def __init__(self, sim: Simulator, link: Link, queue: DropTailQueue, name: str = ""):
        self.sim = sim
        self.link = link
        self.queue = queue
        self.name = name
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0

    def send(self, packet: Packet) -> bool:
        """Admit ``packet`` to the egress queue; start the pump if idle.

        Returns False when the queue dropped the packet.
        """
        if not self.queue.enqueue(packet):
            return False
        if not self._busy:
            self._start_next()
        return True

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting (excludes the frame on the wire)."""
        return self.queue.occupancy_bytes

    def _start_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        delay = self.link.serialization_delay(packet)
        self.sim.schedule(delay, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.wire_bytes
        self.link.propagate(self.sim, packet)
        self._start_next()
