"""Output port: a drop-tail queue drained onto a link.

The port implements the standard store-and-forward egress pump: when a
packet is admitted to an idle port it begins serializing immediately; when
serialization finishes the frame is handed to the link for propagation and
the next queued frame (if any) starts serializing.

Every packet in every experiment crosses several ports, so the pump binds
its collaborators (queue ops, link delay lookup, scheduler) once at
construction instead of chasing attributes per packet.
"""

from __future__ import annotations

from ..sim.engine import Simulator
from .link import Link
from .packet import Packet
from .queues import DropTailQueue


class OutputPort:
    """Queue + transmitter for one egress direction.

    Parameters
    ----------
    sim:
        The simulator (owns the clock the pump runs on).
    link:
        The outgoing :class:`Link`.
    queue:
        Byte-accounted FIFO; ECN marking behaviour is configured there.
    name:
        Identifier used by instrumentation (e.g. ``"switch1->aggregator"``).
    """

    __slots__ = (
        "sim",
        "_link",
        "queue",
        "name",
        "_busy",
        "tx_packets",
        "tx_bytes",
        "_enqueue",
        "_dequeue",
        "_backlog",
        "_ser_delay",
        "_ser_get",
        "_propagate",
        "_schedule",
    )

    def __init__(self, sim: Simulator, link: Link, queue: DropTailQueue, name: str = ""):
        self.sim = sim
        self.queue = queue
        self.name = name
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self._enqueue = queue.enqueue
        self._dequeue = queue.dequeue
        # The queue's backing deque, tested for emptiness before paying the
        # dequeue call; roughly half of all pump polls find nothing queued.
        self._backlog = queue._queue
        self._schedule = sim.schedule
        self.link = link  # property: also binds the link fast paths
        hooks = sim.hooks
        if hooks is not None:
            hooks.port_created(self)

    @property
    def link(self) -> Link:
        return self._link

    @link.setter
    def link(self, link: Link) -> None:
        """Attach ``link``, rebinding the pump's per-packet fast paths.

        A property so that tests splicing a replacement link (e.g. a
        :class:`~repro.net.faults.FaultyLink`) onto a built port keep the
        bound methods coherent with the active link.
        """
        self._link = link
        self._ser_delay = link.serialization_delay
        # Fast path for the delay lookup: probe the link's memo dict
        # directly and only fall back to the computing method on a miss.
        self._ser_get = link._ser_ns.get
        self._propagate = link.propagate

    def send(self, packet: Packet) -> bool:
        """Admit ``packet`` to the egress queue; start the pump if idle.

        Returns False when the queue dropped the packet.
        """
        if not self._enqueue(packet):
            return False
        if not self._busy:
            self._start_next()
        return True

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting (excludes the frame on the wire)."""
        return self.queue.occupancy_bytes

    def _start_next(self) -> None:
        if not self._backlog:
            self._busy = False
            return
        packet = self._dequeue()
        self._busy = True
        delay = self._ser_get(packet.wire_bytes)
        if delay is None:
            delay = self._ser_delay(packet)
        self._schedule(delay, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.wire_bytes
        self._propagate(self.sim, packet)
        self._start_next()
