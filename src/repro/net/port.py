"""Output port: a drop-tail queue drained onto a link.

The port implements the standard store-and-forward egress pump: when a
packet is admitted to an idle port it begins serializing immediately; when
serialization finishes the frame is handed to the link for propagation and
the next queued frame (if any) starts serializing.

Every packet in every experiment crosses several ports, so the pump binds
its collaborators (queue ops, wire-size column, link delay lookup,
scheduler) once at construction instead of chasing attributes per packet,
and it moves packet *handles* (see :mod:`repro.net.pool`), never objects.
"""

from __future__ import annotations

from ..sim.engine import Simulator
from .link import Link
from .pool import F_CE, F_ECT, F_INC
from .queues import DropTailQueue

# Captured at import: the pump inlines DropTailQueue's enqueue/dequeue, and
# the inline gate must disengage if anyone has since swapped those methods
# (the validate fuzzer's mutation testing does exactly that to prove the
# checker catches accounting bugs).
_PRISTINE_ENQUEUE = DropTailQueue.enqueue
_PRISTINE_DEQUEUE = DropTailQueue.dequeue


class OutputPort:
    """Queue + transmitter for one egress direction.

    Parameters
    ----------
    sim:
        The simulator (owns the clock the pump runs on).
    link:
        The outgoing :class:`Link`.
    queue:
        Byte-accounted FIFO; ECN marking behaviour is configured there.
    name:
        Identifier used by instrumentation (e.g. ``"switch1->aggregator"``).
    """

    __slots__ = (
        "sim",
        "_link",
        "queue",
        "name",
        "_busy",
        "tx_packets",
        "tx_bytes",
        "_enqueue",
        "_dequeue",
        "_plain_queue",
        "_backlog",
        "_wire",
        "_ser_delay",
        "_ser_get",
        "_propagate",
        "_schedule",
        "_push_light",
        "_finish",
        "_prop_delay",
        "_dst_receive",
    )

    def __init__(self, sim: Simulator, link: Link, queue: DropTailQueue, name: str = ""):
        self.sim = sim
        self.queue = queue
        self.name = name
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self._enqueue = queue.enqueue
        self._dequeue = queue.dequeue
        # Exactly-DropTailQueue egress gets its enqueue/dequeue inlined
        # into the pump (marking, occupancy and departure counters, nothing
        # virtual); subclasses (e.g. the shared-buffer _PooledQueue) and
        # monkeypatched queue methods keep the indirect call so their
        # overrides stay in the loop.
        self._plain_queue = (
            queue.__class__ is DropTailQueue
            and DropTailQueue.enqueue is _PRISTINE_ENQUEUE
            and DropTailQueue.dequeue is _PRISTINE_DEQUEUE
        )
        # The queue's backing deque, tested for emptiness before paying the
        # dequeue call; roughly half of all pump polls find nothing queued.
        self._backlog = queue._queue
        # Wire-size column of the pool backing this queue's packets.
        self._wire = queue.pool.wire_bytes
        self._schedule = sim.schedule
        # Serialization-finish and propagation-arrival are one-shot and
        # never cancelled, so the pump schedules them as light events
        # (no Event allocation, no cancel bookkeeping) through the bound
        # absolute-time primitive — a direct C call in native mode.
        self._push_light = sim.push_light
        self.link = link  # property: also binds the link fast paths
        hooks = sim.hooks
        if hooks is not None:
            hooks.port_created(self)

    @property
    def link(self) -> Link:
        return self._link

    @link.setter
    def link(self, link: Link) -> None:
        """Attach ``link``, rebinding the pump's per-packet fast paths.

        A property so that tests splicing a replacement link (e.g. a
        :class:`~repro.net.faults.FaultyLink`) onto a built port keep the
        bound methods coherent with the active link.
        """
        self._link = link
        self._ser_delay = link.serialization_delay
        # Fast path for the delay lookup: probe the link's memo dict
        # directly and only fall back to the computing method on a miss.
        self._ser_get = link._ser_ns.get
        self._propagate = link.propagate
        if link.__class__ is Link and link.dst is not None:
            # A plain link is pure bookkeeping + a constant-delay hop, so
            # its propagate() is fused into the pump (_finish_tx): the
            # delivery schedules straight onto dst.receive with no
            # intermediate call frame.  Subclasses (FaultyLink et al.)
            # override propagate() and keep the indirect path.
            self._prop_delay = link.prop_delay_ns
            self._dst_receive = link._dst_receive
            self._finish = self._finish_tx
        else:
            self._prop_delay = None
            self._dst_receive = None
            self._finish = self._finish_tx_indirect

    def send(self, h: int) -> bool:
        """Admit handle ``h`` to the egress queue; start the pump if idle.

        Returns False when the queue dropped the packet (the handle is
        freed by the queue in that case and must not be used again).
        """
        if not self._plain_queue:
            if not self._enqueue(h):
                return False
            if not self._busy:
                self._start_next()
            return True
        # Inlined DropTailQueue.enqueue (keep in sync with queues.py):
        # ECN/INC marking against the occupancy the arriving packet sees,
        # then drop-tail admission.
        q = self.queue
        flags_col = q._flags
        occupancy = q.occupancy_bytes
        wire_bytes = self._wire[h]
        flags = flags_col[h]
        threshold = q.ecn_threshold_bytes
        if threshold is not None and flags & F_ECT and occupancy > threshold:
            if not (flags & F_CE):
                flags = flags_col[h] = flags | F_CE
                q.marked_packets += 1
                if q.on_mark is not None:
                    q.on_mark(h)
        inc_threshold = q.inc_threshold_bytes
        if inc_threshold is not None and occupancy > inc_threshold and not (flags & F_INC):
            flags_col[h] = flags | F_INC
            q.inc_marked_packets += 1
        if occupancy + wire_bytes > q.capacity_bytes:
            q.dropped_packets += 1
            q.dropped_bytes += wire_bytes
            if q.on_drop is not None:
                q.on_drop(h)
            q._pool_free(h)
            return False
        self._backlog.append(h)
        q.occupancy_bytes = occupancy + wire_bytes
        q.enqueued_packets += 1
        q.enqueued_bytes += wire_bytes
        if q.on_enqueue is not None:
            q.on_enqueue(h)
        if not self._busy:
            self._start_next()
        return True

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting (excludes the frame on the wire)."""
        return self.queue.occupancy_bytes

    def _start_next(self) -> None:
        backlog = self._backlog
        if not backlog:
            self._busy = False
            return
        if self._plain_queue:
            # Inlined DropTailQueue.dequeue (keep in sync with queues.py).
            h = backlog.popleft()
            q = self.queue
            wire_bytes = self._wire[h]
            q.occupancy_bytes -= wire_bytes
            q.dequeued_packets += 1
            q.dequeued_bytes += wire_bytes
        else:
            h = self._dequeue()
            wire_bytes = self._wire[h]
        self._busy = True
        delay = self._ser_get(wire_bytes)
        if delay is None:
            delay = self._ser_delay(wire_bytes)
        self._push_light(self.sim.now + delay, self._finish, h)

    def _finish_tx(self, h: int) -> None:
        # Fused fast path (plain Link only): port + link bookkeeping, the
        # propagation hop straight onto the destination's receive, then the
        # next frame's serialization — one callback per wire departure.
        if self._prop_delay is None:
            # The link was spliced (e.g. to a FaultyLink) while this frame
            # was on the wire; deliver it through the new link's propagate,
            # exactly as the pre-fusion pump did.
            self._finish_tx_indirect(h)
            return
        wire_bytes = self._wire[h]
        self.tx_packets += 1
        self.tx_bytes += wire_bytes
        link = self._link
        link.delivered_packets += 1
        link.delivered_bytes += wire_bytes
        now = self.sim.now
        push = self._push_light
        push(now + self._prop_delay, self._dst_receive, h)
        # Inlined _start_next: the pump is mid-transmission, so _busy is
        # already True and only the went-idle transition needs a store.
        backlog = self._backlog
        if not backlog:
            self._busy = False
            return
        if self._plain_queue:
            # Inlined DropTailQueue.dequeue (keep in sync with queues.py).
            nxt = backlog.popleft()
            q = self.queue
            wire_bytes = self._wire[nxt]
            q.occupancy_bytes -= wire_bytes
            q.dequeued_packets += 1
            q.dequeued_bytes += wire_bytes
        else:
            nxt = self._dequeue()
            wire_bytes = self._wire[nxt]
        delay = self._ser_get(wire_bytes)
        if delay is None:
            delay = self._ser_delay(wire_bytes)
        push(now + delay, self._finish, nxt)

    def _finish_tx_indirect(self, h: int) -> None:
        # Virtual path for Link subclasses whose propagate() does more
        # than bookkeeping (fault injection, scripted drops).
        self.tx_packets += 1
        self.tx_bytes += self._wire[h]
        self._propagate(self.sim, h)
        self._start_next()
