"""Packet model.

One :class:`Packet` instance models a single frame on the wire.  Packets
are the highest-churn objects in the simulator, so the class uses
``__slots__`` and plain attributes (no dataclass machinery in the hot
path).

ECN field semantics follow RFC 3168 naming:

- ``ect``  — sender marked the packet ECN-capable (ECT codepoint).
- ``ce``   — a switch changed ECT to CE (Congestion Experienced).
- ``ece``  — the receiver echoes CE back to the sender in ACKs (ECN-Echo).

``inc`` is the Pulser-style incast-onset bit (arXiv:1809.09751): a switch
stamps it on packets arriving past the incast threshold, the receiver
echoes it on ACKs, and incast-aware senders back off on the echo.  It is
always False unless a scenario armed the detector.
"""

from __future__ import annotations

#: Wire size of a full-MSS data frame: 1460 B payload + 40 B TCP/IP headers.
DEFAULT_MSS = 1460
HEADER_BYTES = 40
#: Wire size of a pure ACK (headers only, padded to minimum Ethernet frame).
ACK_BYTES = 64

#: ``packet_id`` of a packet that was never assigned one by its simulator.
UNASSIGNED_PACKET_ID = -1


class Packet:
    """A TCP segment (data or pure ACK) travelling through the network."""

    __slots__ = (
        "packet_id",
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload_len",
        "is_ack",
        "ack_seq",
        "ect",
        "ce",
        "ece",
        "inc",
        "wire_bytes",
        "sent_time",
        "is_retransmit",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        *,
        seq: int = 0,
        payload_len: int = 0,
        is_ack: bool = False,
        ack_seq: int = 0,
        ect: bool = False,
        ce: bool = False,
        ece: bool = False,
        inc: bool = False,
        wire_bytes: int = 0,
        is_retransmit: bool = False,
        packet_id: int = UNASSIGNED_PACKET_ID,
    ):
        # Ids come from the owning Simulator (Simulator.next_packet_id), not
        # a process-global counter: a module-level count() would make ids
        # depend on everything that ran earlier in the process, breaking
        # run-to-run and serial-vs-worker-pool reproducibility.
        self.packet_id = packet_id
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload_len = payload_len
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.ect = ect
        self.ce = ce
        self.ece = ece
        self.inc = inc
        self.wire_bytes = wire_bytes if wire_bytes else (payload_len + HEADER_BYTES)
        self.sent_time = -1
        self.is_retransmit = is_retransmit

    @property
    def end_seq(self) -> int:
        """Sequence number one past the last payload byte."""
        return self.seq + self.payload_len

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_ack:
            flags = "E" if self.ece else "-"
            return (
                f"Ack(flow={self.flow_id}, ack={self.ack_seq}, {flags}, "
                f"{self.src}->{self.dst})"
            )
        flags = ("T" if self.ect else "-") + ("C" if self.ce else "-")
        return (
            f"Data(flow={self.flow_id}, seq={self.seq}+{self.payload_len}, {flags}, "
            f"{self.src}->{self.dst})"
        )


def make_data_packet(
    flow_id: int,
    src: int,
    dst: int,
    seq: int,
    payload_len: int,
    *,
    ect: bool = False,
    is_retransmit: bool = False,
    packet_id: int = UNASSIGNED_PACKET_ID,
) -> Packet:
    """Build a data segment (payload + 40 B header on the wire)."""
    return Packet(
        flow_id,
        src,
        dst,
        seq=seq,
        payload_len=payload_len,
        ect=ect,
        is_retransmit=is_retransmit,
        packet_id=packet_id,
    )


def make_ack_packet(
    flow_id: int,
    src: int,
    dst: int,
    ack_seq: int,
    *,
    ece: bool = False,
    inc: bool = False,
    packet_id: int = UNASSIGNED_PACKET_ID,
) -> Packet:
    """Build a pure cumulative ACK (64 B on the wire)."""
    return Packet(
        flow_id,
        src,
        dst,
        is_ack=True,
        ack_seq=ack_seq,
        ece=ece,
        inc=inc,
        wire_bytes=ACK_BYTES,
        packet_id=packet_id,
    )
