"""Dynamically shared switch buffering.

The paper's testbed switches use *static* per-port buffers (every port
owns 128 KB outright), and the original DCTCP paper points out that
incast severity depends on this choice: a dynamically shared pool lets a
single congested port absorb a larger burst at the expense of isolation.
:class:`SharedBufferSwitch` models the shared-pool variant so that the
choice can be studied (see ``benchmarks/bench_extension_shared_buffer``).

Admission rule per incoming packet destined to port *p*:

1. the *pool* occupancy (sum over all ports) must stay within
   ``shared_pool_bytes``;
2. optionally, port *p* itself must stay within ``per_port_cap_bytes``
   (a simple static cap preventing total monopolization).

ECN marking is unchanged: instantaneous per-port queue vs threshold K.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .pool import PacketPool
from .port import OutputPort
from .queues import DEFAULT_ECN_THRESHOLD, DropTailQueue


class _PooledQueue(DropTailQueue):
    """A port queue whose admission also checks the switch-wide pool."""

    __slots__ = ("switch_ref",)

    def __init__(self, capacity_bytes, ecn_threshold_bytes, switch_ref, pool):
        super().__init__(capacity_bytes, ecn_threshold_bytes, pool=pool)
        self.switch_ref = switch_ref

    def enqueue(self, h: int) -> bool:
        switch = self.switch_ref
        wire_bytes = self._wire[h]
        if switch._pool_occupancy + wire_bytes > switch.shared_pool_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += wire_bytes
            switch.pool_drops += 1
            if self.on_drop is not None:
                self.on_drop(h)
            self._pool_free(h)
            return False
        if super().enqueue(h):
            switch._pool_occupancy += wire_bytes
            return True
        return False

    def dequeue(self):
        h = super().dequeue()
        if h is not None:
            self.switch_ref._pool_occupancy -= self._wire[h]
        return h


class SharedBufferSwitch(Node):
    """Output-queued switch with a dynamically shared buffer pool."""

    __slots__ = (
        "ports",
        "pool",
        "_dst_col",
        "_pkt_free",
        "_routes",
        "shared_pool_bytes",
        "per_port_cap_bytes",
        "ecn_threshold_bytes",
        "pool_drops",
        "unroutable_drops",
        "_pool_occupancy",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        shared_pool_bytes: int = 512 * 1024,
        per_port_cap_bytes: Optional[int] = None,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD,
    ):
        super().__init__(sim, name)
        if shared_pool_bytes <= 0:
            raise ValueError("shared pool must be positive")
        self.ports: List[OutputPort] = []
        self.pool = PacketPool.of(sim)
        self._dst_col = self.pool.dst
        self._pkt_free = self.pool.free
        self._routes = {}
        self.shared_pool_bytes = shared_pool_bytes
        self.per_port_cap_bytes = per_port_cap_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.pool_drops = 0
        self.unroutable_drops = 0
        # Maintained incrementally by _PooledQueue so per-packet admission
        # is O(1) instead of summing every port; the validate layer
        # cross-checks it against the per-port sum.
        self._pool_occupancy = 0
        hooks = sim.hooks
        if hooks is not None:
            hooks.switch_created(self)

    @property
    def pool_occupancy_bytes(self) -> int:
        """Bytes currently buffered across every port."""
        return self._pool_occupancy

    def add_port(self, link: Link, name: str = "") -> OutputPort:
        per_port_cap = (
            self.per_port_cap_bytes
            if self.per_port_cap_bytes is not None
            else self.shared_pool_bytes
        )
        queue = _PooledQueue(per_port_cap, self.ecn_threshold_bytes, self, self.pool)
        port = OutputPort(self.sim, link, queue, name or f"{self.name}:p{len(self.ports)}")
        self.ports.append(port)
        return port

    def add_route(self, dst_node_id: int, port: OutputPort) -> None:
        if port not in self.ports:
            raise ValueError(f"port {port.name!r} does not belong to switch {self.name!r}")
        self._routes[dst_node_id] = port

    def route_for(self, dst_node_id: int):
        return self._routes.get(dst_node_id)

    def receive(self, h: int) -> None:
        port = self._routes.get(self._dst_col[h])
        if port is None:
            self.unroutable_drops += 1
            self._pkt_free(h)
            return
        port.send(h)
