"""Dynamically shared switch buffering.

The paper's testbed switches use *static* per-port buffers (every port
owns 128 KB outright), and the original DCTCP paper points out that
incast severity depends on this choice: a dynamically shared pool lets a
single congested port absorb a larger burst at the expense of isolation.
:class:`SharedBufferSwitch` models the shared-pool variant so that the
choice can be studied (see ``benchmarks/bench_extension_shared_buffer``).

Admission rule per incoming packet destined to port *p*:

1. the *pool* occupancy (sum over all ports) must stay within
   ``shared_pool_bytes``;
2. optionally, port *p* itself must stay within ``per_port_cap_bytes``
   (a simple static cap preventing total monopolization).

ECN marking is unchanged: instantaneous per-port queue vs threshold K.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .pool import PacketPool
from .port import OutputPort
from .queues import DEFAULT_ECN_THRESHOLD, DropTailQueue
from .switch import make_ecmp_forward


class _EcmpRoute:
    """Route-table entry that fans one destination over an ECMP group.

    ``receive`` only ever calls ``.send(h)`` on whatever the route table
    holds, so an object exposing the selector closure as ``send`` slots
    into ``_routes`` without touching the forwarding path.
    """

    __slots__ = ("send",)

    def __init__(self, send):
        self.send = send


class _PooledQueue(DropTailQueue):
    """A port queue whose admission also checks the switch-wide pool."""

    __slots__ = ("switch_ref",)

    def __init__(self, capacity_bytes, ecn_threshold_bytes, switch_ref, pool):
        super().__init__(capacity_bytes, ecn_threshold_bytes, pool=pool)
        self.switch_ref = switch_ref

    def enqueue(self, h: int) -> bool:
        switch = self.switch_ref
        wire_bytes = self._wire[h]
        if switch._pool_occupancy + wire_bytes > switch.shared_pool_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += wire_bytes
            switch.pool_drops += 1
            if self.on_drop is not None:
                self.on_drop(h)
            self._pool_free(h)
            return False
        if super().enqueue(h):
            switch._pool_occupancy += wire_bytes
            return True
        return False

    def dequeue(self):
        h = super().dequeue()
        if h is not None:
            self.switch_ref._pool_occupancy -= self._wire[h]
        return h


class SharedBufferSwitch(Node):
    """Output-queued switch with a dynamically shared buffer pool."""

    __slots__ = (
        "ports",
        "pool",
        "_dst_col",
        "_pkt_free",
        "_routes",
        "shared_pool_bytes",
        "per_port_cap_bytes",
        "ecn_threshold_bytes",
        "pool_drops",
        "unroutable_drops",
        "_pool_occupancy",
        "_ecmp",
        "_flow_ord",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        shared_pool_bytes: int = 512 * 1024,
        per_port_cap_bytes: Optional[int] = None,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD,
    ):
        super().__init__(sim, name)
        if shared_pool_bytes <= 0:
            raise ValueError("shared pool must be positive")
        self.ports: List[OutputPort] = []
        self.pool = PacketPool.of(sim)
        self._dst_col = self.pool.dst
        self._pkt_free = self.pool.free
        self._routes = {}
        self.shared_pool_bytes = shared_pool_bytes
        self.per_port_cap_bytes = per_port_cap_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.pool_drops = 0
        self.unroutable_drops = 0
        # Maintained incrementally by _PooledQueue so per-packet admission
        # is O(1) instead of summing every port; the validate layer
        # cross-checks it against the per-port sum.
        self._pool_occupancy = 0
        self._ecmp: Dict[int, Tuple[OutputPort, ...]] = {}
        self._flow_ord: Dict[int, int] = {}
        hooks = sim.hooks
        if hooks is not None:
            hooks.switch_created(self)

    @property
    def pool_occupancy_bytes(self) -> int:
        """Bytes currently buffered across every port."""
        return self._pool_occupancy

    def add_port(self, link: Link, name: str = "") -> OutputPort:
        per_port_cap = (
            self.per_port_cap_bytes
            if self.per_port_cap_bytes is not None
            else self.shared_pool_bytes
        )
        queue = _PooledQueue(per_port_cap, self.ecn_threshold_bytes, self, self.pool)
        port = OutputPort(self.sim, link, queue, name or f"{self.name}:p{len(self.ports)}")
        self.ports.append(port)
        return port

    def add_route(self, dst_node_id: int, port: OutputPort) -> None:
        if port not in self.ports:
            raise ValueError(f"port {port.name!r} does not belong to switch {self.name!r}")
        self._routes[dst_node_id] = port
        self._ecmp.pop(dst_node_id, None)

    def add_ecmp_group(
        self,
        dst_node_id: int,
        ports: Sequence[OutputPort],
        salt: int,
        per_packet: bool = False,
    ) -> None:
        """Install an equal-cost multipath entry (see :meth:`Switch.add_ecmp_group`)."""
        ports = tuple(ports)
        if not ports:
            raise ValueError("an ECMP group needs at least one port")
        for port in ports:
            if port not in self.ports:
                raise ValueError(
                    f"port {port.name!r} does not belong to switch {self.name!r}"
                )
        if len(ports) == 1:
            self.add_route(dst_node_id, ports[0])
            return
        self._ecmp[dst_node_id] = ports
        self._routes[dst_node_id] = _EcmpRoute(
            make_ecmp_forward(self.pool, self._flow_ord, ports, salt, per_packet)
        )

    def route_for(self, dst_node_id: int):
        port = self._routes.get(dst_node_id)
        return None if isinstance(port, _EcmpRoute) else port

    def ecmp_candidates(self, dst_node_id: int) -> Optional[Tuple[OutputPort, ...]]:
        """The equal-cost candidate set for a destination (None otherwise)."""
        return self._ecmp.get(dst_node_id)

    def receive(self, h: int) -> None:
        port = self._routes.get(self._dst_col[h])
        if port is None:
            self.unroutable_drops += 1
            self._pkt_free(h)
            return
        port.send(h)
