"""Output-queued switch with static per-port buffers.

Forwarding is destination-based: the topology builder installs a route for
every reachable host, mapping its node id to one of this switch's output
ports.  Each port owns a *static* (not shared) buffer, matching the paper's
"static 128KB shared buffer in each port" testbed switches: the buffer is
statically partitioned per port, so one congested port cannot borrow from
others.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .pool import PacketPool
from .port import OutputPort
from .queues import DEFAULT_BUFFER_BYTES, DEFAULT_ECN_THRESHOLD, DropTailQueue

_MASK64 = (1 << 64) - 1
_GOLDEN64 = 0x9E3779B97F4A7C15


def ecmp_hash(key: int, salt: int) -> int:
    """Seeded 64-bit integer mix (splitmix64 finalizer) used for ECMP.

    Pure arithmetic on explicit inputs: no ``hash()``, no process state,
    so the same (key, salt) picks the same next hop in every process,
    every executor, and under the native event core.
    """
    x = (key * _GOLDEN64 + salt) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def make_ecmp_forward(
    pool: PacketPool,
    ordinals: Dict[int, int],
    ports: Tuple[OutputPort, ...],
    salt: int,
    per_packet: bool,
) -> Callable[[int], bool]:
    """Build the per-destination ECMP forwarding closure.

    ``ordinals`` is the owning switch's flow-normalization table: flow ids
    come from a process-wide counter (their numeric values depend on what
    ran earlier in the process), so the hash keys on the order flows
    *first traverse the switch* — a pure function of the scenario,
    identical across processes, executors and reruns.
    """
    sends = tuple(port.send for port in ports)
    n = len(ports)
    flow_col = pool.flow_id
    if per_packet:
        pid_col = pool.packet_id

        def _forward(
            h: int,
            _sends=sends,
            _n=n,
            _salt=salt,
            _flow=flow_col,
            _pid=pid_col,
            _ord=ordinals,
            _mix=ecmp_hash,
        ) -> bool:
            fid = _flow[h]
            o = _ord.get(fid)
            if o is None:
                o = _ord[fid] = len(_ord)
            # Packet ids come from the per-simulator counter, so the spray
            # sequence replays exactly for a given scenario seed.
            return _sends[_mix((o << 32) + _pid[h], _salt) % _n](h)

    else:

        def _forward(
            h: int,
            _sends=sends,
            _n=n,
            _salt=salt,
            _flow=flow_col,
            _ord=ordinals,
            _mix=ecmp_hash,
        ) -> bool:
            fid = _flow[h]
            o = _ord.get(fid)
            if o is None:
                o = _ord[fid] = len(_ord)
            return _sends[_mix(o, _salt) % _n](h)

    return _forward


class Switch(Node):
    """ECN-capable output-queued switch."""

    __slots__ = (
        "ports",
        "pool",
        "_dst_col",
        "_pool_free",
        "_routes",
        "_sends",
        "_sends_get",
        "_ecmp",
        "_flow_ord",
        "buffer_bytes",
        "ecn_threshold_bytes",
        "unroutable_drops",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD,
    ):
        super().__init__(sim, name)
        self.ports: List[OutputPort] = []
        self.pool = PacketPool.of(sim)
        # Bound once: the route lookup runs for every forwarded packet.
        self._dst_col = self.pool.dst
        self._pool_free = self.pool.free
        self._routes: Dict[int, OutputPort] = {}
        # Forwarding fast path: destination -> the route port's bound
        # send(), so the per-packet hop is one dict probe + one call with
        # no attribute chase.  Kept in lockstep with _routes by add_route.
        self._sends: Dict[int, Callable[[int], bool]] = {}
        self._sends_get = self._sends.get
        # ECMP groups: destination -> the tuple of equal-cost candidate
        # ports (empty dict on single-path switches; the fast path above
        # is untouched unless add_ecmp_group installs a selector).
        self._ecmp: Dict[int, Tuple[OutputPort, ...]] = {}
        # Per-switch flow normalization for the ECMP hash: the process-wide
        # flow-id counter depends on what ran earlier in the process, so the
        # hash keys on the order flows *first traverse this switch* — a pure
        # function of the scenario, identical across processes and reruns.
        self._flow_ord: Dict[int, int] = {}
        self.buffer_bytes = buffer_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.unroutable_drops = 0

    def add_port(self, link: Link, name: str = "") -> OutputPort:
        """Attach an egress link behind a fresh static buffer."""
        queue = DropTailQueue(self.buffer_bytes, self.ecn_threshold_bytes, pool=self.pool)
        port = OutputPort(self.sim, link, queue, name or f"{self.name}:p{len(self.ports)}")
        self.ports.append(port)
        return port

    def add_route(self, dst_node_id: int, port: OutputPort) -> None:
        """Install a destination-based forwarding entry."""
        if port not in self.ports:
            raise ValueError(f"port {port.name!r} does not belong to switch {self.name!r}")
        self._routes[dst_node_id] = port
        self._sends[dst_node_id] = port.send
        self._ecmp.pop(dst_node_id, None)

    def add_ecmp_group(
        self,
        dst_node_id: int,
        ports: Sequence[OutputPort],
        salt: int,
        per_packet: bool = False,
    ) -> None:
        """Install an equal-cost multipath entry for one destination.

        ``ports`` are the candidate next hops; ``salt`` seeds the hash (the
        topology builders draw it from a named simulator stream, so path
        assignment is a pure function of the scenario seed).  The default
        flow-level mode pins each flow to one candidate — the classic
        per-flow ECMP that keeps a flow's segments in order.  ``per_packet``
        sprays individual packets instead (packet-level ECMP), which is
        deliberately reordering-prone; the TCP receiver's reassembly buffer
        absorbs it and counts ``reordered_packets``.
        """
        ports = tuple(ports)
        if not ports:
            raise ValueError("an ECMP group needs at least one port")
        for port in ports:
            if port not in self.ports:
                raise ValueError(
                    f"port {port.name!r} does not belong to switch {self.name!r}"
                )
        if len(ports) == 1:
            self.add_route(dst_node_id, ports[0])
            return
        self._ecmp[dst_node_id] = ports
        self._routes.pop(dst_node_id, None)
        self._sends[dst_node_id] = make_ecmp_forward(
            self.pool, self._flow_ord, ports, salt, per_packet
        )

    def route_for(self, dst_node_id: int) -> Optional[OutputPort]:
        return self._routes.get(dst_node_id)

    def ecmp_candidates(self, dst_node_id: int) -> Optional[Tuple[OutputPort, ...]]:
        """The equal-cost candidate set for a destination (None if the
        destination has a plain single route or no route at all)."""
        return self._ecmp.get(dst_node_id)

    def receive(self, h: int) -> None:
        send = self._sends_get(self._dst_col[h])
        if send is None:
            # Mirrors a real switch's behaviour for an unknown unicast
            # destination with learning disabled: count, drop, free.
            self.unroutable_drops += 1
            self._pool_free(h)
            return
        send(h)
