"""Output-queued switch with static per-port buffers.

Forwarding is destination-based: the topology builder installs a route for
every reachable host, mapping its node id to one of this switch's output
ports.  Each port owns a *static* (not shared) buffer, matching the paper's
"static 128KB shared buffer in each port" testbed switches: the buffer is
statically partitioned per port, so one congested port cannot borrow from
others.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .packet import Packet
from .port import OutputPort
from .queues import DEFAULT_BUFFER_BYTES, DEFAULT_ECN_THRESHOLD, DropTailQueue


class Switch(Node):
    """ECN-capable output-queued switch."""

    __slots__ = (
        "ports",
        "_routes",
        "_routes_get",
        "buffer_bytes",
        "ecn_threshold_bytes",
        "unroutable_drops",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD,
    ):
        super().__init__(sim, name)
        self.ports: List[OutputPort] = []
        self._routes: Dict[int, OutputPort] = {}
        # Bound once: the route lookup runs for every forwarded packet.
        self._routes_get = self._routes.get
        self.buffer_bytes = buffer_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.unroutable_drops = 0

    def add_port(self, link: Link, name: str = "") -> OutputPort:
        """Attach an egress link behind a fresh static buffer."""
        queue = DropTailQueue(self.buffer_bytes, self.ecn_threshold_bytes)
        port = OutputPort(self.sim, link, queue, name or f"{self.name}:p{len(self.ports)}")
        self.ports.append(port)
        return port

    def add_route(self, dst_node_id: int, port: OutputPort) -> None:
        """Install a destination-based forwarding entry."""
        if port not in self.ports:
            raise ValueError(f"port {port.name!r} does not belong to switch {self.name!r}")
        self._routes[dst_node_id] = port

    def route_for(self, dst_node_id: int) -> Optional[OutputPort]:
        return self._routes.get(dst_node_id)

    def receive(self, packet: Packet) -> None:
        port = self._routes_get(packet.dst)
        if port is None:
            # Mirrors a real switch's behaviour for an unknown unicast
            # destination with learning disabled: count and drop.
            self.unroutable_drops += 1
            return
        port.send(packet)
