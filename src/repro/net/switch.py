"""Output-queued switch with static per-port buffers.

Forwarding is destination-based: the topology builder installs a route for
every reachable host, mapping its node id to one of this switch's output
ports.  Each port owns a *static* (not shared) buffer, matching the paper's
"static 128KB shared buffer in each port" testbed switches: the buffer is
statically partitioned per port, so one congested port cannot borrow from
others.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .pool import PacketPool
from .port import OutputPort
from .queues import DEFAULT_BUFFER_BYTES, DEFAULT_ECN_THRESHOLD, DropTailQueue


class Switch(Node):
    """ECN-capable output-queued switch."""

    __slots__ = (
        "ports",
        "pool",
        "_dst_col",
        "_pool_free",
        "_routes",
        "_sends",
        "_sends_get",
        "buffer_bytes",
        "ecn_threshold_bytes",
        "unroutable_drops",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD,
    ):
        super().__init__(sim, name)
        self.ports: List[OutputPort] = []
        self.pool = PacketPool.of(sim)
        # Bound once: the route lookup runs for every forwarded packet.
        self._dst_col = self.pool.dst
        self._pool_free = self.pool.free
        self._routes: Dict[int, OutputPort] = {}
        # Forwarding fast path: destination -> the route port's bound
        # send(), so the per-packet hop is one dict probe + one call with
        # no attribute chase.  Kept in lockstep with _routes by add_route.
        self._sends: Dict[int, Callable[[int], bool]] = {}
        self._sends_get = self._sends.get
        self.buffer_bytes = buffer_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.unroutable_drops = 0

    def add_port(self, link: Link, name: str = "") -> OutputPort:
        """Attach an egress link behind a fresh static buffer."""
        queue = DropTailQueue(self.buffer_bytes, self.ecn_threshold_bytes, pool=self.pool)
        port = OutputPort(self.sim, link, queue, name or f"{self.name}:p{len(self.ports)}")
        self.ports.append(port)
        return port

    def add_route(self, dst_node_id: int, port: OutputPort) -> None:
        """Install a destination-based forwarding entry."""
        if port not in self.ports:
            raise ValueError(f"port {port.name!r} does not belong to switch {self.name!r}")
        self._routes[dst_node_id] = port
        self._sends[dst_node_id] = port.send

    def route_for(self, dst_node_id: int) -> Optional[OutputPort]:
        return self._routes.get(dst_node_id)

    def receive(self, h: int) -> None:
        send = self._sends_get(self._dst_col[h])
        if send is None:
            # Mirrors a real switch's behaviour for an unknown unicast
            # destination with learning disabled: count, drop, free.
            self.unroutable_drops += 1
            self._pool_free(h)
            return
        send(h)
