"""Point-to-point links.

A :class:`Link` is **unidirectional**: it carries frames from one node's
output port to a destination node, modelling serialization delay (frame
bits at the link rate) followed by propagation delay.  Full-duplex cables
are modelled as two independent ``Link`` objects, which matches how the
experiments use them (data one way, ACKs the other, no interference).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..sim.engine import Simulator
from ..sim.units import GBPS, transmission_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

#: Paper testbed: GbE links, RTT ~100 us across the 2-tier tree.
DEFAULT_RATE_BPS = GBPS
DEFAULT_PROP_DELAY_NS = 12_000  # 12 us per hop -> ~100 us unloaded RTT


class Link:
    """One direction of a cable: serialization + propagation to ``dst``."""

    __slots__ = (
        "rate_bps",
        "prop_delay_ns",
        "dst",
        "delivered_packets",
        "delivered_bytes",
        "_ser_ns",
        "_wire",
        "_dst_receive",
    )

    def __init__(
        self,
        dst: "Node",
        rate_bps: int = DEFAULT_RATE_BPS,
        prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay_ns}")
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.dst = dst
        self.delivered_packets = 0
        self.delivered_bytes = 0
        # Traffic uses a handful of frame sizes (full MSS, pure ACK, tail
        # segments), so serialization delays memoize to a tiny dict and the
        # per-packet ceil-division drops out of the hot path.
        self._ser_ns: Dict[int, int] = {}
        # dst may legitimately be None in unit tests that only exercise the
        # delay arithmetic; propagate() would fail on such a link either way.
        if dst is not None:
            from .pool import PacketPool

            self._wire = PacketPool.of(dst.sim).wire_bytes
            self._dst_receive = dst.receive
        else:
            self._wire = None
            self._dst_receive = None

    def serialization_delay(self, wire_bytes: int) -> int:
        """Time to clock ``wire_bytes`` onto the wire, in nanoseconds."""
        delay = self._ser_ns.get(wire_bytes)
        if delay is None:
            delay = self._ser_ns[wire_bytes] = transmission_time_ns(wire_bytes, self.rate_bps)
        return delay

    def propagate(self, sim: Simulator, h: int) -> None:
        """Deliver handle ``h`` to the far end after the propagation delay.

        Called by the output port at the instant serialization completes.
        (Ports fuse this into their pump for plain links; this method runs
        for subclasses and direct callers.)  The arrival is one-shot and
        never cancelled, so it schedules as a light event.
        """
        self.delivered_packets += 1
        self.delivered_bytes += self._wire[h]
        sim.schedule_light(self.prop_delay_ns, self._dst_receive, h)
