"""End host: a NIC egress queue plus a flow demultiplexer.

Hosts do not route; every outgoing packet goes to the single access link.
Incoming packets are demultiplexed by flow id to a registered endpoint
(TCP sender or receiver).  A flow's sender and receiver live on different
hosts, so both register the same flow id on their own host.

The NIC queue is deliberately generous (default 1 MB, no ECN marking): the
bottleneck in every experiment is a switch port, and a real host backs
pressure into socket buffers rather than dropping on its own NIC.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .pool import PacketPool
from .port import OutputPort
from .queues import DropTailQueue

DEFAULT_NIC_BUFFER_BYTES = 1024 * 1024


class FlowEndpoint(Protocol):
    """Anything that consumes packets for one flow (sender or receiver).

    ``on_packet`` receives a live pool handle and owns it: the endpoint
    frees it (directly or by forwarding it onward).
    """

    def on_packet(self, h: int) -> None: ...


class Host(Node):
    """A server in the testbed (aggregator or worker)."""

    __slots__ = (
        "nic",
        "pool",
        "_flow_col",
        "_pool_free",
        "_flows",
        "_dispatch",
        "_dispatch_get",
        "undeliverable_packets",
    )

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, name)
        self.nic: Optional[OutputPort] = None
        self.pool = PacketPool.of(sim)
        # Bound once: the demux lookup runs for every delivered packet.
        self._flow_col = self.pool.flow_id
        self._pool_free = self.pool.free
        self._flows: Dict[int, FlowEndpoint] = {}
        # Demux fast path: flow id -> the endpoint's bound on_packet, so
        # delivery is one dict probe + one call.  Kept in lockstep with
        # _flows by register/unregister (endpoints never rebind on_packet).
        self._dispatch: Dict[int, Callable[[int], None]] = {}
        self._dispatch_get = self._dispatch.get
        self.undeliverable_packets = 0

    def attach_link(self, link: Link, nic_buffer_bytes: int = DEFAULT_NIC_BUFFER_BYTES) -> None:
        """Connect the host's NIC to its access link."""
        queue = DropTailQueue(nic_buffer_bytes, ecn_threshold_bytes=None, pool=self.pool)
        self.nic = OutputPort(self.sim, link, queue, name=f"{self.name}:nic")

    def register_flow(self, flow_id: int, endpoint: FlowEndpoint) -> None:
        """Bind incoming packets of ``flow_id`` to ``endpoint``."""
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._flows[flow_id] = endpoint
        self._dispatch[flow_id] = endpoint.on_packet

    def unregister_flow(self, flow_id: int) -> None:
        self._flows.pop(flow_id, None)
        self._dispatch.pop(flow_id, None)

    def send(self, h: int) -> bool:
        """Transmit through the NIC; returns False on NIC-queue drop."""
        if self.nic is None:
            raise RuntimeError(f"host {self.name} has no attached link")
        return self.nic.send(h)

    def receive(self, h: int) -> None:
        on_packet = self._dispatch_get(self._flow_col[h])
        if on_packet is None:
            # End of the line for a packet nobody claims: count and free.
            self.undeliverable_packets += 1
            self._pool_free(h)
            return
        on_packet(h)
