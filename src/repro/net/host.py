"""End host: a NIC egress queue plus a flow demultiplexer.

Hosts do not route; every outgoing packet goes to the single access link.
Incoming packets are demultiplexed by flow id to a registered endpoint
(TCP sender or receiver).  A flow's sender and receiver live on different
hosts, so both register the same flow id on their own host.

The NIC queue is deliberately generous (default 1 MB, no ECN marking): the
bottleneck in every experiment is a switch port, and a real host backs
pressure into socket buffers rather than dropping on its own NIC.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from ..sim.engine import Simulator
from .link import Link
from .node import Node
from .packet import Packet
from .port import OutputPort
from .queues import DropTailQueue

DEFAULT_NIC_BUFFER_BYTES = 1024 * 1024


class FlowEndpoint(Protocol):
    """Anything that consumes packets for one flow (sender or receiver)."""

    def on_packet(self, packet: Packet) -> None: ...


class Host(Node):
    """A server in the testbed (aggregator or worker)."""

    __slots__ = ("nic", "_flows", "_flows_get", "undeliverable_packets")

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, name)
        self.nic: Optional[OutputPort] = None
        self._flows: Dict[int, FlowEndpoint] = {}
        # Bound once: the demux lookup runs for every delivered packet.
        self._flows_get = self._flows.get
        self.undeliverable_packets = 0

    def attach_link(self, link: Link, nic_buffer_bytes: int = DEFAULT_NIC_BUFFER_BYTES) -> None:
        """Connect the host's NIC to its access link."""
        queue = DropTailQueue(nic_buffer_bytes, ecn_threshold_bytes=None)
        self.nic = OutputPort(self.sim, link, queue, name=f"{self.name}:nic")

    def register_flow(self, flow_id: int, endpoint: FlowEndpoint) -> None:
        """Bind incoming packets of ``flow_id`` to ``endpoint``."""
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._flows[flow_id] = endpoint

    def unregister_flow(self, flow_id: int) -> None:
        self._flows.pop(flow_id, None)

    def send(self, packet: Packet) -> bool:
        """Transmit through the NIC; returns False on NIC-queue drop."""
        if self.nic is None:
            raise RuntimeError(f"host {self.name} has no attached link")
        return self.nic.send(packet)

    def receive(self, packet: Packet) -> None:
        endpoint = self._flows_get(packet.flow_id)
        if endpoint is None:
            self.undeliverable_packets += 1
            return
        endpoint.on_packet(packet)
