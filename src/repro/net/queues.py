"""Output-port queueing: drop-tail FIFO with byte accounting + ECN marking.

The switch model in the paper's testbed uses a **static** per-port buffer
(128 KB) with drop-tail and DCTCP-style ECN marking: packets are marked CE
on *enqueue* when the instantaneous queue occupancy exceeds the threshold
``K`` (32 KB).  Marking happens before the drop decision is taken on the
incoming packet, mirroring a real egress pipeline (mark, then try to admit).

Queues operate on pooled packet **handles** (see :mod:`repro.net.pool`):
the flag and wire-size columns are bound once at construction and indexed
per packet, and the queue owns the handle of any packet it drops — the
drop is the end of that packet's journey, so the handle is freed here
(after ``on_drop`` fires, while the fields are still readable).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from .pool import F_CE, F_ECT, F_INC, PacketPool

#: Paper defaults (Section III / VI.A).
DEFAULT_BUFFER_BYTES = 128 * 1024
DEFAULT_ECN_THRESHOLD = 32 * 1024


class DropTailQueue:
    """FIFO byte-limited queue with optional instantaneous ECN marking.

    Parameters
    ----------
    capacity_bytes:
        Static buffer size; a packet that would push occupancy past this is
        dropped (drop-tail).
    ecn_threshold_bytes:
        Mark incoming ECT packets CE when current occupancy (before the new
        packet is admitted) is at or above this threshold.  ``None`` disables
        marking (plain drop-tail, used for host NIC queues).
    on_drop / on_mark / on_enqueue:
        Optional instrumentation callbacks invoked with the packet handle
        (``on_enqueue`` fires after a successful admit, once occupancy
        reflects the new packet; the telemetry layer's queue
        high-watermark tracking hangs off it).  ``on_drop`` fires while the
        dropped handle is still live; the queue frees it right after.
    pool:
        The owning simulation's :class:`~repro.net.pool.PacketPool`.
    """

    __slots__ = (
        "capacity_bytes",
        "ecn_threshold_bytes",
        "inc_threshold_bytes",
        "inc_marked_packets",
        "pool",
        "_flags",
        "_wire",
        "_pool_free",
        "_queue",
        "occupancy_bytes",
        "enqueued_packets",
        "dequeued_packets",
        "dropped_packets",
        "marked_packets",
        "enqueued_bytes",
        "dequeued_bytes",
        "dropped_bytes",
        "on_drop",
        "on_mark",
        "on_enqueue",
    )

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD,
        on_drop: Optional[Callable[[int], None]] = None,
        on_mark: Optional[Callable[[int], None]] = None,
        on_enqueue: Optional[Callable[[int], None]] = None,
        *,
        pool: PacketPool,
    ):
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_bytes}")
        if ecn_threshold_bytes is not None and ecn_threshold_bytes < 0:
            raise ValueError(f"ECN threshold must be non-negative, got {ecn_threshold_bytes}")
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        #: Pulser-style incast-onset threshold; ``None`` (the default)
        #: disables the detector entirely — see repro.tcp.pulser.
        self.inc_threshold_bytes: Optional[int] = None
        self.inc_marked_packets = 0
        self.pool = pool
        # Column views bound once; pool growth extends in place, so these
        # references stay valid for the queue's lifetime.
        self._flags = pool.flags
        self._wire = pool.wire_bytes
        self._pool_free = pool.free
        self._queue: Deque[int] = deque()
        self.occupancy_bytes = 0
        self.enqueued_packets = 0
        self.dequeued_packets = 0
        self.dropped_packets = 0
        self.marked_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_bytes = 0
        self.dropped_bytes = 0
        self.on_drop = on_drop
        self.on_mark = on_mark
        self.on_enqueue = on_enqueue

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, h: int) -> bool:
        """Admit handle ``h``; returns False (and counts a drop) on overflow.

        ECN marking uses the occupancy *including* the queued bytes already
        present (instantaneous queue length seen by the arriving packet), the
        same rule as the DCTCP switch: mark if ``queue length > K``.

        Runs once per packet per hop; occupancy, flags and wire size are
        read into locals once.  A dropped packet's handle is freed here.
        """
        flags_col = self._flags
        occupancy = self.occupancy_bytes
        wire_bytes = self._wire[h]
        flags = flags_col[h]
        threshold = self.ecn_threshold_bytes
        if threshold is not None and flags & F_ECT and occupancy > threshold:
            if not (flags & F_CE):
                flags = flags_col[h] = flags | F_CE
                self.marked_packets += 1
                if self.on_mark is not None:
                    self.on_mark(h)
        inc_threshold = self.inc_threshold_bytes
        if inc_threshold is not None and occupancy > inc_threshold and not (flags & F_INC):
            flags_col[h] = flags | F_INC
            self.inc_marked_packets += 1
        if occupancy + wire_bytes > self.capacity_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += wire_bytes
            if self.on_drop is not None:
                self.on_drop(h)
            self._pool_free(h)
            return False
        self._queue.append(h)
        self.occupancy_bytes = occupancy + wire_bytes
        self.enqueued_packets += 1
        self.enqueued_bytes += wire_bytes
        if self.on_enqueue is not None:
            self.on_enqueue(h)
        return True

    def dequeue(self) -> Optional[int]:
        """Remove and return the head-of-line handle (None when empty)."""
        queue = self._queue
        if not queue:
            return None
        h = queue.popleft()
        wire_bytes = self._wire[h]
        self.occupancy_bytes -= wire_bytes
        # Departure counters close the conservation law the validate layer
        # sweeps: enqueued == dequeued + resident, in packets and bytes.
        self.dequeued_packets += 1
        self.dequeued_bytes += wire_bytes
        return h

    @property
    def is_empty(self) -> bool:
        return not self._queue
