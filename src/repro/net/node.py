"""Base class for network nodes (hosts and switches)."""

from __future__ import annotations

from itertools import count

from ..sim.engine import Simulator

_node_ids = count()


class Node:
    """Anything with an address that can receive packets.

    ``receive`` takes a live pool handle (see :mod:`repro.net.pool`) and
    owns it: the node either forwards it onward or frees it.
    """

    __slots__ = ("sim", "node_id", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.node_id = next(_node_ids)
        self.name = name or f"node{self.node_id}"

    def receive(self, h: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name}, id={self.node_id})"
