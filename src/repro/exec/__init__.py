"""Scenario/execution layer: declarative points, parallel fan-out, caching.

- :mod:`repro.exec.scenario`  — :class:`ScenarioSpec` (a frozen, hashable
  description of one simulation point), :class:`PointResult`, and
  :func:`run_scenario` (spec -> result, pure and picklable);
- :mod:`repro.exec.executors` — :class:`SerialExecutor` and the
  process-pool :class:`ParallelExecutor`, with progress callbacks;
- :mod:`repro.exec.cache`     — on-disk JSON :class:`ResultCache` keyed by
  :meth:`ScenarioSpec.cache_key`;
- :mod:`repro.exec.context`   — the ambient executor the experiment
  drivers submit batches through (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``).
"""

from .cache import ResultCache
from .context import (
    CACHE_DIR_ENV,
    WORKERS_ENV,
    get_executor,
    make_executor,
    set_executor,
    using_executor,
)
from .executors import (
    Executor,
    ParallelExecutor,
    ProgressEvent,
    SerialExecutor,
)
from .scenario import PointResult, ScenarioSpec, run_scenario

__all__ = [
    "ScenarioSpec",
    "PointResult",
    "run_scenario",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProgressEvent",
    "ResultCache",
    "get_executor",
    "set_executor",
    "using_executor",
    "make_executor",
    "WORKERS_ENV",
    "CACHE_DIR_ENV",
]
