"""Execution layer: run batches of :class:`ScenarioSpec` serially or in
parallel worker processes.

Both executors share the same contract:

- :meth:`Executor.map` preserves input order — ``results[i]`` corresponds
  to ``specs[i]`` no matter which worker finished first;
- results are **identical** between :class:`SerialExecutor` and
  :class:`ParallelExecutor` because every simulation is fully described by
  its spec and seeded via :class:`~repro.sim.rng.RngRegistry` (see
  ``tests/test_exec.py::TestSerialParallelEquivalence``);
- an optional :class:`~repro.exec.cache.ResultCache` short-circuits points
  that were already computed by any earlier run of the same code version;
- an optional progress callback receives a :class:`ProgressEvent` as each
  point completes (the CLI renders these).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .cache import ResultCache
from .scenario import PointResult, ScenarioSpec, run_scenario

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed point inside a batch."""

    done: int
    total: int
    spec: ScenarioSpec
    result: PointResult
    cached: bool
    #: Cumulative failed cache writes on the executor's cache so far (0
    #: with no cache attached).  Progress renderers print it when nonzero
    #: so a full disk is visible instead of silently degrading to cold
    #: reruns.
    cache_write_errors: int = 0


class Executor:
    """Base class: cache bookkeeping + progress fan-out.

    Subclasses implement :meth:`_run_pending` to compute the cache-missed
    indices and must call :meth:`_finish` for each one.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        #: Anything speaking the cache protocol (``get``/``put`` plus the
        #: ``hits``/``misses``/``write_errors`` counters): the JSON
        #: :class:`ResultCache` or a :class:`repro.sweep.SweepStore`.
        self.cache = cache
        self.progress = progress

    def map(self, specs: Sequence[ScenarioSpec]) -> List[PointResult]:
        """Run every spec (or fetch it from cache); results in input order."""
        specs = list(specs)
        total = len(specs)
        results: List[Optional[PointResult]] = [None] * total
        pending: List[int] = []
        self._done = 0
        for i, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                results[i] = hit
                self._emit(spec, hit, cached=True, total=total)
            else:
                pending.append(i)
        if pending:
            self._run_pending(specs, pending, results, total)
        return results  # type: ignore[return-value]  # every slot is filled

    # -- subclass protocol -----------------------------------------------------
    def _run_pending(
        self,
        specs: List[ScenarioSpec],
        pending: List[int],
        results: List[Optional[PointResult]],
        total: int,
    ) -> None:
        raise NotImplementedError

    def _finish(
        self,
        index: int,
        spec: ScenarioSpec,
        result: PointResult,
        results: List[Optional[PointResult]],
        total: int,
    ) -> None:
        results[index] = result
        if self.cache is not None:
            self.cache.put(spec, result)
        self._emit(spec, result, cached=False, total=total)

    def _emit(self, spec: ScenarioSpec, result: PointResult, cached: bool, total: int) -> None:
        self._done += 1
        if self.progress is not None:
            self.progress(
                ProgressEvent(
                    done=self._done,
                    total=total,
                    spec=spec,
                    result=result,
                    cached=cached,
                    cache_write_errors=getattr(self.cache, "write_errors", 0),
                )
            )


class SerialExecutor(Executor):
    """Runs every point in-process, one after another (the default —
    deterministic, debuggable, CI-friendly)."""

    def _run_pending(self, specs, pending, results, total):
        for i in pending:
            self._finish(i, specs[i], run_scenario(specs[i]), results, total)


class ParallelExecutor(Executor):
    """Fans points out to a :class:`concurrent.futures.ProcessPoolExecutor`.

    Workers receive picklable specs, build their own simulator, and return
    picklable results; aggregation happens back in the parent.  With
    ``workers=1`` this degrades to serial execution without spawning a pool.
    """

    def __init__(
        self,
        workers: int,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        super().__init__(cache=cache, progress=progress)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def _run_pending(self, specs, pending, results, total):
        if self.workers == 1 or len(pending) == 1:
            for i in pending:
                self._finish(i, specs[i], run_scenario(specs[i]), results, total)
            return
        max_workers = min(self.workers, len(pending))
        with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {pool.submit(run_scenario, specs[i]): i for i in pending}
            for future in concurrent.futures.as_completed(futures):
                i = futures[future]
                self._finish(i, specs[i], future.result(), results, total)
