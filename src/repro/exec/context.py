"""Ambient executor for the experiment drivers.

Figure drivers submit scenario batches through :func:`get_executor` so
that the *caller* — the CLI, a bench, a test — decides how points run
(serial, N worker processes, cached) without threading an executor handle
through every driver signature.

Resolution order:

1. an executor installed with :func:`set_executor` / :func:`using_executor`;
2. the environment: ``REPRO_WORKERS`` (int, default 1) and
   ``REPRO_CACHE_DIR`` (path, default unset);
3. a plain :class:`SerialExecutor` — the deterministic default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from .cache import ResultCache
from .executors import Executor, ParallelExecutor, ProgressCallback, SerialExecutor

_current: Optional[Executor] = None

#: Environment knobs honoured when no executor was installed explicitly.
WORKERS_ENV = "REPRO_WORKERS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def make_executor(
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    progress: Optional[ProgressCallback] = None,
) -> Executor:
    """Build an executor; ``None`` arguments fall back to the environment."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(raw) if raw else 1
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    cache = ResultCache(cache_dir) if cache_dir else None
    if workers > 1:
        return ParallelExecutor(workers, cache=cache, progress=progress)
    return SerialExecutor(cache=cache, progress=progress)


def get_executor() -> Executor:
    """The executor experiment drivers should submit batches to."""
    if _current is not None:
        return _current
    return make_executor()


def set_executor(executor: Optional[Executor]) -> None:
    """Install (or with ``None``, clear) the ambient executor."""
    global _current
    _current = executor


@contextmanager
def using_executor(executor: Executor) -> Iterator[Executor]:
    """Scoped :func:`set_executor`; restores the previous one on exit."""
    global _current
    previous = _current
    _current = executor
    try:
        yield executor
    finally:
        _current = previous
