"""Declarative experiment points.

A :class:`ScenarioSpec` is a frozen, hashable, picklable description of
**one** simulation point — (protocol, N, seed) plus every knob the figure
drivers vary.  Because the spec is pure data, a point can be handed to a
worker process, replayed later, or used as a cache key; because every
simulation is seeded through :class:`~repro.sim.rng.RngRegistry` with
per-simulation stream names, running the same spec anywhere yields the
same :class:`PointResult`.

:func:`run_scenario` is the one place a spec is turned into a simulation:
it builds a fresh :class:`~repro.sim.engine.Simulator`, topology and
workload, runs to completion, and returns a :class:`PointResult` carrying
the aggregates, the per-flow statistics and wall-clock/event telemetry.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..metrics.flowstats import FlowStats
from ..metrics.queue_sampler import QueueSampler
from ..net.faults import drop_nth, make_lossy, random_loss
from ..net.topology import (
    TopologyParams,
    TwoTierTree,
    check_wiring,
    topology_builder,
)
from ..sim.engine import Simulator
from ..tcp.timeouts import TimeoutKind
from ..telemetry.tracer import Tracer, TraceRecord
from ..workloads.background import BackgroundTraffic
from ..workloads.http import HttpConfig, HttpWorkload
from ..workloads.incast import IncastConfig, IncastWorkload
from ..workloads.protocols import ProtocolSpec, spec_for
from ..workloads.swarm import SwarmConfig, SwarmWorkload

#: Bumped whenever the on-disk result encoding changes shape; part of the
#: cache key so stale entries from older encodings never decode.
#: v3: ScenarioSpec.cc dimension + PointResult.round_durations_ns.
#: v4: ScenarioSpec.topology / workload / workload_overrides dimensions.
#: v5: external CC policies (cc="external:<policy>") resolve through the
#:     strategy registry; their senders ride the CC event protocol.
SCHEMA_VERSION = 5

#: Spec-level workload names (see :func:`_make_workload`): the incast
#: barrier benchmark, the HTTP closed loop, and the many-to-many swarm.
WORKLOAD_NAMES = ("incast", "http", "swarm")

Overrides = Tuple[Tuple[str, object], ...]


def _freeze(overrides: Optional[Mapping[str, object]]) -> Overrides:
    """Normalize an override mapping to a sorted, hashable tuple of pairs."""
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one (protocol, N, seed) measurement."""

    protocol: str
    n_flows: int
    rounds: int = 20
    seed: int = 1
    tcp_overrides: Overrides = ()
    plus_overrides: Overrides = ()
    incast_overrides: Overrides = ()
    #: () means "builder defaults"; otherwise the full TopologyParams fields.
    topo_overrides: Overrides = ()
    #: fault injection on the bottleneck link, as pure data (see
    #: :func:`_apply_faults`); () means no injected faults.
    fault_overrides: Overrides = ()
    with_background: bool = False
    sample_queue: bool = False
    #: record telemetry trace events (repro.telemetry.Tracer) during the
    #: run; the tracer schedules no events, so results are identical to an
    #: untraced run apart from the ``trace_events`` payload.
    trace: bool = False
    max_events: int = 400_000_000
    #: Congestion-control strategy override (a repro.tcp.cc registry name).
    #: "" — the default — derives the strategy from ``protocol``; a
    #: non-empty value selects the strategy while ``protocol`` remains the
    #: point's reporting label.  Part of to_dict(), so it joins the cache
    #: key and the fuzzer's differential digests.
    cc: str = ""
    #: Network shape (a :data:`repro.net.topology.TOPOLOGIES` name).
    topology: str = "two-tier"
    #: Application shape (a :data:`WORKLOAD_NAMES` entry).  ``n_flows`` maps
    #: onto the workload's fan-out (flows / clients / peers) and ``rounds``
    #: onto its repetition count (rounds / requests / pieces).
    workload: str = "incast"
    #: Overrides for the non-incast workload configs (``incast_overrides``
    #: keeps serving the incast workload, unchanged).
    workload_overrides: Overrides = ()

    @classmethod
    def create(
        cls,
        protocol: str,
        n_flows: int,
        rounds: int = 20,
        seed: int = 1,
        rto_min_ms: Optional[float] = None,
        min_cwnd_mss: Optional[float] = None,
        tcp_overrides: Optional[Mapping[str, object]] = None,
        plus_overrides: Optional[Mapping[str, object]] = None,
        incast_overrides: Optional[Mapping[str, object]] = None,
        topo: Optional[Union[TopologyParams, Mapping[str, object]]] = None,
        fault_overrides: Optional[Mapping[str, object]] = None,
        with_background: bool = False,
        sample_queue: bool = False,
        trace: bool = False,
        max_events: int = 400_000_000,
        cc: str = "",
        topology: str = "two-tier",
        workload: str = "incast",
        workload_overrides: Optional[Mapping[str, object]] = None,
    ) -> "ScenarioSpec":
        """Build a spec from the kwargs the figure drivers historically used.

        ``rto_min_ms`` / ``min_cwnd_mss`` are folded into ``tcp_overrides``
        exactly as :func:`repro.experiments.common.make_spec` does.
        """
        tcp: Dict[str, object] = dict(tcp_overrides or {})
        if rto_min_ms is not None:
            tcp["rto_min_ns"] = int(rto_min_ms * 1e6)
        if min_cwnd_mss is not None:
            tcp["min_cwnd_mss"] = min_cwnd_mss
        if isinstance(topo, TopologyParams):
            topo = asdict(topo)
        return cls(
            protocol=protocol,
            n_flows=n_flows,
            rounds=rounds,
            seed=seed,
            tcp_overrides=_freeze(tcp),
            plus_overrides=_freeze(plus_overrides),
            incast_overrides=_freeze(incast_overrides),
            topo_overrides=_freeze(topo),
            fault_overrides=_freeze(fault_overrides),
            with_background=with_background,
            sample_queue=sample_queue,
            trace=trace,
            max_events=max_events,
            cc=cc,
            topology=topology,
            workload=workload,
            workload_overrides=_freeze(workload_overrides),
        )

    @property
    def cc_name(self) -> str:
        """The effective congestion-control strategy name."""
        return self.cc or self.protocol

    # -- derived builders ------------------------------------------------------
    def protocol_spec(self) -> ProtocolSpec:
        return spec_for(
            self.cc_name,
            tcp_overrides=dict(self.tcp_overrides),
            plus_overrides=dict(self.plus_overrides),
        )

    def topology_params(self) -> Optional[TopologyParams]:
        if not self.topo_overrides:
            return None
        return TopologyParams(**dict(self.topo_overrides))

    def incast_config(self) -> IncastConfig:
        kwargs: Dict[str, object] = dict(n_flows=self.n_flows, n_rounds=self.rounds)
        kwargs.update(dict(self.incast_overrides))
        return IncastConfig(**kwargs)

    # -- identity --------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (tuples become lists)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [list(pair) for pair in value]
            out[f.name] = value
        return out

    def cache_key(self) -> str:
        """Stable content digest of the spec + package/schema version.

        Any change to a field, to the package version or to the result
        encoding yields a new key, so on-disk cache entries are invalidated
        automatically.
        """
        from .. import __version__

        payload = self.to_dict()
        payload["__version__"] = __version__
        payload["__schema__"] = SCHEMA_VERSION
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        name = self.protocol if not self.cc else f"{self.protocol}[cc={self.cc}]"
        extra = ""
        if self.topology != "two-tier" or self.workload != "incast":
            extra = f" {self.topology}/{self.workload}"
        return f"{name}{extra} N={self.n_flows} seed={self.seed}"


@dataclass
class PointResult:
    """Outcome of one or more scenario runs at a (protocol, N) point.

    A single :func:`run_scenario` produces a one-seed result; the executor
    folds per-seed results into a cross-seed aggregate with
    :meth:`PointResult.aggregate` — averaging goodput/FCT, summing the
    counters, concatenating the traces.  Background throughput is a real
    optional field (it used to be stashed on the result dynamically).
    """

    protocol: str
    n_flows: int
    seeds: Tuple[int, ...]
    goodput_mbps: float
    fct_ms: float
    timeouts: int
    rounds: int
    bad_rounds: int
    flow_stats: List[FlowStats] = field(default_factory=list)
    queue_samples_bytes: List[int] = field(default_factory=list)
    #: Per-round completion times, concatenated across seeds — the tail
    #: behind the ``fct_ms`` mean (the arena scores p99 from these).
    round_durations_ns: List[int] = field(default_factory=list)
    #: Telemetry records captured when the spec asked for tracing (empty
    #: otherwise); serialized with the result, so cached runs keep their
    #: telemetry.
    trace_events: List[TraceRecord] = field(default_factory=list)
    #: Mean long-flow throughput when the scenario ran with background
    #: traffic; ``None`` otherwise.
    bg_throughput_mbps: Optional[float] = None
    #: Simulator events processed (deterministic given the spec).
    events_processed: int = 0
    #: Host wall-clock seconds spent simulating; excluded from equality so a
    #: cache hit compares equal to the cold run that produced it.
    wall_time_s: float = field(default=0.0, compare=False)

    @property
    def fct_p99_ms(self) -> float:
        """99th-percentile round completion time (nearest-rank).

        Falls back to the mean when per-round durations are unavailable
        (results decoded from a pre-v3 encoding).
        """
        durations = self.round_durations_ns
        if not durations:
            return self.fct_ms
        ranked = sorted(durations)
        index = max(0, -(-99 * len(ranked) // 100) - 1)  # ceil(0.99 n) - 1
        return ranked[index] / 1e6

    @classmethod
    def aggregate(cls, results: Sequence["PointResult"]) -> "PointResult":
        """Fold per-seed results for one (protocol, N) point."""
        if not results:
            raise ValueError("cannot aggregate zero results")
        first = results[0]
        for r in results[1:]:
            if (r.protocol, r.n_flows) != (first.protocol, first.n_flows):
                raise ValueError(
                    "cannot aggregate results from different points: "
                    f"{(first.protocol, first.n_flows)} vs {(r.protocol, r.n_flows)}"
                )
        bg = [r.bg_throughput_mbps for r in results if r.bg_throughput_mbps is not None]
        return cls(
            protocol=first.protocol,
            n_flows=first.n_flows,
            seeds=tuple(s for r in results for s in r.seeds),
            goodput_mbps=sum(r.goodput_mbps for r in results) / len(results),
            fct_ms=sum(r.fct_ms for r in results) / len(results),
            timeouts=sum(r.timeouts for r in results),
            rounds=sum(r.rounds for r in results),
            bad_rounds=sum(r.bad_rounds for r in results),
            flow_stats=[fs for r in results for fs in r.flow_stats],
            queue_samples_bytes=[q for r in results for q in r.queue_samples_bytes],
            round_durations_ns=[d for r in results for d in r.round_durations_ns],
            trace_events=[e for r in results for e in r.trace_events],
            bg_throughput_mbps=sum(bg) / len(bg) if bg else None,
            events_processed=sum(r.events_processed for r in results),
            wall_time_s=sum(r.wall_time_s for r in results),
        )

    # -- JSON codec (for the on-disk result cache) ----------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n_flows": self.n_flows,
            "seeds": list(self.seeds),
            "goodput_mbps": self.goodput_mbps,
            "fct_ms": self.fct_ms,
            "timeouts": self.timeouts,
            "rounds": self.rounds,
            "bad_rounds": self.bad_rounds,
            "flow_stats": [_flowstats_to_dict(fs) for fs in self.flow_stats],
            "queue_samples_bytes": list(self.queue_samples_bytes),
            "round_durations_ns": list(self.round_durations_ns),
            "trace_events": [list(e) for e in self.trace_events],
            "bg_throughput_mbps": self.bg_throughput_mbps,
            "events_processed": self.events_processed,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PointResult":
        return cls(
            protocol=data["protocol"],
            n_flows=data["n_flows"],
            seeds=tuple(data["seeds"]),
            goodput_mbps=data["goodput_mbps"],
            fct_ms=data["fct_ms"],
            timeouts=data["timeouts"],
            rounds=data["rounds"],
            bad_rounds=data["bad_rounds"],
            flow_stats=[_flowstats_from_dict(d) for d in data["flow_stats"]],
            queue_samples_bytes=list(data["queue_samples_bytes"]),
            round_durations_ns=list(data.get("round_durations_ns", [])),
            trace_events=[TraceRecord(*row) for row in data.get("trace_events", [])],
            bg_throughput_mbps=data["bg_throughput_mbps"],
            events_processed=data["events_processed"],
            wall_time_s=data["wall_time_s"],
        )


def _flowstats_to_dict(fs: FlowStats) -> Dict[str, object]:
    return {
        "flow_id": fs.flow_id,
        "total_bytes": fs.total_bytes,
        "start_time_ns": fs.start_time_ns,
        "completion_time_ns": fs.completion_time_ns,
        "data_packets_sent": fs.data_packets_sent,
        "retransmitted_packets": fs.retransmitted_packets,
        "fast_retransmits": fs.fast_retransmits,
        "timeouts": [[t, kind.name] for t, kind in fs.timeouts],
        "acks_received": fs.acks_received,
        "dupacks_received": fs.dupacks_received,
        "ece_acks_received": fs.ece_acks_received,
        "send_snapshots": [[cwnd, ece, count] for (cwnd, ece), count in fs.send_snapshots.items()],
    }


def _flowstats_from_dict(data: Mapping[str, object]) -> FlowStats:
    return FlowStats(
        flow_id=data["flow_id"],
        total_bytes=data["total_bytes"],
        start_time_ns=data["start_time_ns"],
        completion_time_ns=data["completion_time_ns"],
        data_packets_sent=data["data_packets_sent"],
        retransmitted_packets=data["retransmitted_packets"],
        fast_retransmits=data["fast_retransmits"],
        timeouts=[(t, TimeoutKind[name]) for t, name in data["timeouts"]],
        acks_received=data["acks_received"],
        dupacks_received=data["dupacks_received"],
        ece_acks_received=data["ece_acks_received"],
        send_snapshots={(cwnd, ece): count for cwnd, ece, count in data["send_snapshots"]},
    )


def _apply_faults(sim: Simulator, tree: TwoTierTree, fault_overrides: Overrides) -> None:
    """Splice a lossy link onto the bottleneck port per the fault spec.

    The spec is pure data so it stays hashable/picklable: ``kind`` selects
    the policy (``random_loss`` with ``rate``, or ``drop_nth`` with
    ``indices``), and randomness comes from a named simulator stream so the
    injected losses replay exactly for a given scenario seed.
    """
    cfg = dict(fault_overrides)
    kind = cfg.get("kind")
    if kind == "random_loss":
        policy = random_loss(sim.stream("faults/bottleneck"), float(cfg.get("rate", 0.01)))
    elif kind == "drop_nth":
        policy = drop_nth(*cfg.get("indices", ()))
    else:
        raise ValueError(f"unknown fault kind: {kind!r}")
    port = tree.bottleneck_port
    port.link = make_lossy(port.link, policy)


def _make_workload(spec: ScenarioSpec, sim: Simulator, tree, protocol_spec: ProtocolSpec):
    """Instantiate the spec's workload over a built network.

    ``n_flows``/``rounds`` keep their historical meaning for incast and map
    onto the closed-loop workloads' fan-out/repetition knobs, so sweep
    grids and the arena vary all three workloads through one axis pair.
    """
    if spec.workload == "incast":
        return IncastWorkload(sim, tree, protocol_spec, spec.incast_config())
    if spec.workload == "http":
        kwargs: Dict[str, object] = dict(n_clients=spec.n_flows, n_requests=spec.rounds)
        kwargs.update(dict(spec.workload_overrides))
        return HttpWorkload(sim, tree, protocol_spec, HttpConfig(**kwargs))
    if spec.workload == "swarm":
        kwargs = dict(n_peers=spec.n_flows, n_pieces=spec.rounds)
        kwargs.update(dict(spec.workload_overrides))
        return SwarmWorkload(sim, tree, protocol_spec, SwarmConfig(**kwargs))
    raise ValueError(
        f"unknown workload {spec.workload!r}; choose from {list(WORKLOAD_NAMES)}"
    )


def run_scenario(
    spec: ScenarioSpec, validate: Optional[bool] = None, profiler=None
) -> PointResult:
    """Simulate one :class:`ScenarioSpec` and return its :class:`PointResult`.

    This is the worker function of the execution layer: it is a pure
    function of the spec (module-level, so it pickles for process pools),
    builds its own :class:`Simulator`, and never touches shared state.
    Flow ids in the returned stats are renumbered to per-scenario indices so
    that results are identical no matter which process ran the spec.

    ``validate`` attaches the :mod:`repro.validate` invariant checker for
    this run (``None`` defers to ``REPRO_VALIDATE``, so worker processes
    inherit the choice through the environment).  ``spec.trace`` attaches a
    :class:`~repro.telemetry.Tracer` whose records land in
    ``PointResult.trace_events``; ``profiler`` accepts a
    :class:`~repro.telemetry.EngineProfiler` for dispatch-loop timing
    (local to this call — not part of the spec, so never cached).
    """
    started = time.perf_counter()
    tracer = Tracer() if spec.trace else None
    sim = Simulator(seed=spec.seed, validate=validate, tracer=tracer, profiler=profiler)
    events_before = sim.events_processed
    tree = topology_builder(spec.topology)(sim, spec.topology_params())
    if sim.checker is not None:
        # Structural invariants piggyback on validate mode: check_wiring is
        # purely passive, so validated results stay identical to plain runs.
        check_wiring(tree)
    if spec.fault_overrides:
        _apply_faults(sim, tree, spec.fault_overrides)
    protocol_spec = spec.protocol_spec()
    # Strategy network hook (e.g. Pulser arming the bottleneck's incast
    # detector); a no-op for every strategy that doesn't declare one.
    protocol_spec.install_network(tree)

    background = None
    if spec.with_background:
        background = BackgroundTraffic(sim, tree, spec.protocol_spec())
        background.start()

    sampler = None
    if spec.sample_queue:
        sampler = QueueSampler(sim, tree.bottleneck_port)
        sampler.start()

    workload = _make_workload(spec, sim, tree, protocol_spec)
    workload.run_to_completion(max_events=spec.max_events)
    if sim.checker is not None:
        sim.checker.verify_all()

    queue_samples: List[int] = []
    if sampler is not None:
        sampler.stop()
        queue_samples = list(sampler.occupancy_bytes)

    bg_throughput_mbps = None
    if background is not None:
        bg_throughput_mbps = background.mean_throughput_bps() / 1e6
        background.stop()

    flow_stats = workload.flow_stats
    # Flow ids come from a process-global counter; renumber so the result
    # does not depend on what else ran in this process before us.
    for i, fs in enumerate(flow_stats):
        fs.flow_id = i
    workload.close()

    return PointResult(
        protocol=spec.protocol,
        n_flows=spec.n_flows,
        seeds=(spec.seed,),
        goodput_mbps=workload.mean_goodput_bps / 1e6,
        fct_ms=workload.mean_fct_ns / 1e6,
        timeouts=workload.total_timeouts,
        rounds=len(workload.rounds),
        bad_rounds=sum(1 for r in workload.rounds if r.timeouts > 0),
        flow_stats=flow_stats,
        queue_samples_bytes=queue_samples,
        round_durations_ns=[r.duration_ns for r in workload.rounds],
        trace_events=list(tracer.records) if tracer is not None else [],
        bg_throughput_mbps=bg_throughput_mbps,
        events_processed=sim.events_processed - events_before,
        wall_time_s=time.perf_counter() - started,
    )
