"""Opt-in on-disk result cache, keyed by :meth:`ScenarioSpec.cache_key`.

One JSON file per point under the cache directory.  The key digests the
full spec plus the package version and the result-schema version, so any
change to the scenario, the code version or the encoding silently misses
instead of returning stale data.  Each file also embeds the spec it was
computed from; a digest collision or a hand-edited file is detected by
comparing that embedded spec against the requested one.

Writes are atomic (temp file + ``os.replace``) so a parallel run never
leaves a half-written entry behind, and unreadable/corrupt entries are
treated as misses rather than errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from .scenario import PointResult, ScenarioSpec


class ResultCache:
    """Directory of ``<cache_key>.json`` files mapping spec -> result."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.directory / f"{spec.cache_key()}.json"

    def get(self, spec: ScenarioSpec) -> Optional[PointResult]:
        """Decode the cached result for ``spec``, or None on any miss."""
        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            # AttributeError covers entries whose top level decodes but is
            # not an object (a file truncated to "null", a bare list): they
            # must count as exactly one miss, not crash the executor.
            if entry.get("spec") != spec.to_dict():
                raise ValueError("cache entry spec mismatch")
            result = PointResult.from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ScenarioSpec, result: PointResult) -> None:
        """Store ``result`` atomically under the spec's key (best effort)."""
        entry = {
            "key": spec.cache_key(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        path = self.path_for(spec)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=path.stem, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:
            # A full/read-only disk degrades to "no cache", not a crash —
            # but it is *counted*, and the executors surface the counter on
            # their stderr progress line, so cold reruns caused by failed
            # writes don't masquerade as an inexplicable 0% hit rate.
            self.write_errors += 1
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
