"""Analytic models from the paper's Sections II.C and IV.C.

These closed-form quantities predict *where* the simulated (and testbed)
dynamics change regime, and the test suite cross-checks the simulator
against them:

- **Pipeline capacity** ``C x D + B`` — the bytes the network can hold.
- **Collapse fan-in** — the paper's Section IV.C calculation: N flows at
  w MSS each overflow once ``N * w * MSS`` exceeds the pipeline capacity
  (their example: N = 40 at w = 3, or N = 60 at w = 2, vs 140.5 KB).
- **Required slow_time** — the interval regulation target: N flows of
  one packet per ``RTT + slow_time`` fit into C only when the interval
  reaches ``N * packet_time``.
- **RTO-bound goodput** — the collapse floor: one ``RTO_min`` stall per
  round caps goodput at roughly ``round_bytes / RTO_min`` (the flat
  ~41 Mbps line in Figs. 1/7/8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import SECOND


@dataclass(frozen=True)
class PathModel:
    """Static description of the bottleneck path."""

    link_rate_bps: int
    base_rtt_ns: int
    buffer_bytes: int
    mss_wire_bytes: int = 1500

    @property
    def bandwidth_delay_product_bytes(self) -> float:
        """In-flight capacity ``C x D`` in bytes."""
        return self.link_rate_bps / 8.0 * self.base_rtt_ns / SECOND

    @property
    def pipeline_capacity_bytes(self) -> float:
        """The paper's ``C x D + B``."""
        return self.bandwidth_delay_product_bytes + self.buffer_bytes

    def packet_service_time_ns(self, wire_bytes: int = 0) -> float:
        """Serialization time of one frame at the bottleneck."""
        size = wire_bytes or self.mss_wire_bytes
        return size * 8.0 * SECOND / self.link_rate_bps


def collapse_fanin(path: PathModel, window_mss: float, mss: int = 1460) -> int:
    """Largest N for which N synchronized windows still fit the pipeline.

    Section IV.C: ``sum(w_i) = N * w * MSS`` against ``C x D + B``.  The
    paper's example (w = 2, 1 Gbps x 100 us + 128 KB) gives N ~ 46; with
    w = 3 it drops to ~31 — bracketing the observed DCTCP collapse at ~35.
    """
    if window_mss <= 0:
        raise ValueError("window must be positive")
    per_flow = window_mss * mss
    return int(path.pipeline_capacity_bytes // per_flow)


def required_slow_time_ns(path: PathModel, n_flows: int) -> float:
    """slow_time needed so N one-packet-per-interval flows fit into C.

    Stability needs per-flow interval >= N * packet_time; the pacer
    provides ``RTT + slow_time``, so the requirement is
    ``slow_time >= N * packet_time - RTT`` (0 when the ACK clock alone is
    slow enough).
    """
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    needed_interval = n_flows * path.packet_service_time_ns()
    return max(0.0, needed_interval - path.base_rtt_ns)


def rto_bound_goodput_bps(round_bytes: int, rto_ns: int, transfer_ns: float = 0.0) -> float:
    """Goodput of a round that hits one retransmission timeout.

    The collapse floor of Figs. 1/7: with ``RTO_min`` = 200 ms and 1 MB
    rounds, ~41 Mbps regardless of N.
    """
    if rto_ns <= 0:
        raise ValueError("rto must be positive")
    duration = rto_ns + transfer_ns
    return round_bytes * 8.0 * SECOND / duration


def expected_goodput_bps(
    round_bytes: int,
    clean_round_ns: float,
    timeout_probability: float,
    rto_ns: int,
) -> float:
    """Mean per-round goodput when a fraction of rounds stall once.

    Used to interpret the paper's "fluctuates between 600 and 900 Mbps":
    with mean-of-rounds reporting, a small probability of a single
    ``RTO_min`` stall produces exactly that band.
    """
    if not 0.0 <= timeout_probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    clean = round_bytes * 8.0 * SECOND / clean_round_ns
    stalled = round_bytes * 8.0 * SECOND / (clean_round_ns + rto_ns)
    return (1.0 - timeout_probability) * clean + timeout_probability * stalled
