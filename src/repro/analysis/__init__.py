"""Closed-form models of the paper's back-of-envelope analysis."""

from .pipeline import (
    PathModel,
    collapse_fanin,
    expected_goodput_bps,
    required_slow_time_ns,
    rto_bound_goodput_bps,
)

__all__ = [
    "PathModel",
    "collapse_fanin",
    "required_slow_time_ns",
    "rto_bound_goodput_bps",
    "expected_goodput_bps",
]
