"""A gym-style step/observe/act environment over the simulator.

:class:`ControlEnv` runs the incast workload exactly as
:func:`~repro.exec.scenario.run_scenario` would, but pauses the event
loop at every window boundary of one or more *controlled* flows and
hands the caller an :class:`~repro.telemetry.observe.Observation`.  The
caller answers with an :class:`Action` (adjust cwnd, set a pacing
interval) or ``None`` (autopilot: let the flow's own congestion law
act), and ``step`` resumes the simulation to the next boundary.

The loop is the classic agent interface::

    env = ControlEnv(protocol="dctcp", n_flows=16, rounds=2, seed=1)
    obs = env.reset()
    while not obs.done:
        obs = env.step(Action(cwnd_scale=0.5) if obs.marked_fraction > 0.5 else None)
    print(env.summary())

Mechanics
---------
- Controlled flows are :class:`~repro.control.external.ExternalPolicySender`
  endpoints bound to an :class:`EnvBridgePolicy` — an
  :class:`~repro.control.policies.ExternalPolicy` that accumulates the
  per-window ACK/mark bytes, snapshots an observation at each window
  boundary (``snd_una`` crossing the window-end sequence, DCTCP's own
  per-RTT cadence) and stops the event loop via
  :meth:`~repro.sim.engine.Simulator.request_stop`.  Uncontrolled flows
  run the spec's builtin strategy untouched.
- The bridge can wrap an inner scripted policy (by default the one
  mirroring the spec's protocol), so ``step(None)`` on every boundary
  reproduces the uncontrolled run **byte-for-byte** — the determinism
  tier asserts this.
- The environment builds its simulator with ``native=False`` and sets
  ``control_active``; the engine refuses to combine step boundaries with
  the native core (whose event heap the pure loop cannot see).  The
  validated and profiled loops are pure and honour ``request_stop``, so
  ``validate=True`` / a profiler compose with control.
- Determinism: the env draws no randomness of its own; all stream draws
  happen at the same ``next_sequence`` offsets as the uncontrolled run.
  Two envs driven with the same action sequence produce identical
  simulations (serial vs worker, across process restarts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Union

from ..net.topology import TopologyParams, topology_builder
from ..sim.engine import Simulator
from ..telemetry.observe import Observation, ObservationAssembler
from ..tcp.events import CCEvent
from ..workloads.incast import IncastConfig, IncastWorkload
from ..workloads.protocols import ProtocolSpec, spec_for
from .external import ExternalPolicySender
from .policies import ExternalPolicy, get_policy


@dataclass
class Action:
    """One control decision for the flow that produced the observation.

    All fields default to "leave alone"; ``step(None)`` is equivalent to
    ``step(Action())``.
    """

    #: Set cwnd to this many bytes (quantized down to whole MSS, floored
    #: at the transport's minimum window).  Takes precedence over scale.
    cwnd_bytes: Optional[float] = None
    #: Multiply the current cwnd (1.0 = unchanged).
    cwnd_scale: float = 1.0
    #: Minimum spacing between data departures (ns); 0 disables pacing.
    #: ``None`` leaves the current interval unchanged.
    pacing_interval_ns: Optional[int] = None


class _EnvPacer:
    """Pacer wrapper: max of the inner gate and the env's pacing clock.

    Identity-preserving when the interval is 0 — it returns exactly what
    the wrapped pacer (or ``now``, if none) would, so an all-autopilot
    episode is byte-identical to the uncontrolled run.
    """

    __slots__ = ("inner", "interval_ns", "_next")

    def __init__(self, inner) -> None:
        self.inner = inner
        self.interval_ns = 0
        self._next = 0

    def next_send_time(self, now: int) -> int:
        inner = self.inner
        gate = now if inner is None else inner.next_send_time(now)
        return gate if gate >= self._next else self._next

    def on_sent(self, now: int) -> None:
        if self.inner is not None:
            self.inner.on_sent(now)
        if self.interval_ns > 0:
            self._next = now + self.interval_ns


class EnvBridgePolicy(ExternalPolicy):
    """The policy bound to each controlled flow: observes, then delegates.

    Wraps an optional inner :class:`ExternalPolicy` (the flow's scripted
    congestion law); with no inner policy the defaults — plain DCTCP —
    apply.  The bridge's only additions are per-window ACK/mark
    accounting, the window-boundary callback into the env, and the
    :class:`_EnvPacer` wrapped around whatever pacer the inner policy
    installed.
    """

    name = "env-bridge"
    label = "ControlEnv"
    description = "observation/action bridge for repro.control.ControlEnv"

    def __init__(self, env: "ControlEnv", flow: int, inner: Optional[ExternalPolicy] = None):
        self._env = env
        self.flow = flow
        self.inner = inner
        # Shadow the class attrs so ExternalPolicySender applies the same
        # config overrides (cwnd floor) the inner policy would get alone.
        self.slow_time = inner is not None and inner.slow_time
        self.deadline_aware = inner is not None and inner.deadline_aware
        self.assembler = ObservationAssembler()
        self.sender: Optional[ExternalPolicySender] = None
        self.pacer: Optional[_EnvPacer] = None
        self._acked = 0
        self._marked = 0
        self._obs_end_seq = 0

    def bind(self, sender: ExternalPolicySender) -> None:
        if self.inner is not None:
            self.inner.bind(sender)
        pacer = _EnvPacer(sender.pacer)
        sender.pacer = pacer
        self.pacer = pacer
        self.sender = sender

    def take_window(self):
        """Return and reset the window's (acked, marked) byte counters."""
        window = (self._acked, self._marked)
        self._acked = 0
        self._marked = 0
        return window

    # -- CC event surface --------------------------------------------------------
    def on_ack(self, sender: ExternalPolicySender, ev: CCEvent) -> None:
        self._acked += ev.newly_acked
        if ev.ece:
            self._marked += ev.newly_acked
        if self.inner is not None:
            self.inner.on_ack(sender, ev)
        else:
            ExternalPolicy.on_ack(self, sender, ev)
        if sender.snd_una >= self._obs_end_seq:
            self._obs_end_seq = sender.snd_nxt
            self._env._on_window_boundary(self)

    def on_ecn_echo(self, sender: ExternalPolicySender, ev: CCEvent) -> None:
        if self.inner is not None:
            self.inner.on_ecn_echo(sender, ev)

    def on_rto(self, sender: ExternalPolicySender, ev: CCEvent) -> None:
        if self.inner is not None:
            self.inner.on_rto(sender, ev)
        else:
            ExternalPolicy.on_rto(self, sender, ev)

    def on_send_opportunity(self, sender: ExternalPolicySender, ev: CCEvent) -> int:
        # The _EnvPacer is sender.pacer, so the default dispatch already
        # composes the inner gate with the env's pacing clock.
        return ExternalPolicy.on_send_opportunity(self, sender, ev)

    def reduction_penalty(self, sender: ExternalPolicySender) -> float:
        if self.inner is not None:
            return self.inner.reduction_penalty(sender)
        return ExternalPolicy.reduction_penalty(self, sender)


class _ControlledSpec:
    """ProtocolSpec proxy that swaps controlled ordinals' senders.

    Forwards every attribute read/write to the wrapped spec (the workload
    both reads and *assigns* ``tcp_config``), and intercepts only
    ``make_sender``: flows whose construction ordinal is controlled get an
    :class:`ExternalPolicySender` bound to an env bridge; the rest get the
    spec's builtin strategy.
    """

    def __init__(self, inner: ProtocolSpec, env: "ControlEnv", controlled) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_env", env)
        object.__setattr__(self, "_controlled", frozenset(controlled))
        object.__setattr__(self, "_ordinal", 0)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __setattr__(self, name, value):
        if name.startswith("_"):
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    def make_sender(self, sim, host, dst_node_id, flow_id, on_complete=None, deadline_ns=None):
        ordinal = self._ordinal
        self._ordinal = ordinal + 1
        if ordinal in self._controlled:
            return self._env._make_controlled_sender(
                self._inner, ordinal, sim, host, dst_node_id, flow_id,
                on_complete, deadline_ns,
            )
        return self._inner.make_sender(
            sim, host, dst_node_id, flow_id, on_complete, deadline_ns
        )


class ControlEnv:
    """Step/observe/act environment over one incast scenario."""

    def __init__(
        self,
        protocol: str = "dctcp",
        n_flows: int = 8,
        rounds: int = 2,
        seed: int = 1,
        controlled: Sequence[int] = (0,),
        policy: Union[str, type, None] = None,
        tcp_overrides: Optional[dict] = None,
        plus_overrides: Optional[dict] = None,
        incast_overrides: Optional[dict] = None,
        topology: str = "two-tier",
        topo: Optional[TopologyParams] = None,
        validate: Optional[bool] = None,
        max_events: int = 400_000_000,
    ):
        """``protocol`` names the strategy uncontrolled flows run; it also
        picks the controlled flows' default inner policy (the scripted
        DCTCP⁺ for slow_time strategies, plain DCTCP laws otherwise), so
        an all-``step(None)`` episode reproduces the uncontrolled run.
        ``policy`` overrides that inner policy by registry name or
        :class:`ExternalPolicy` subclass.  Controlled flows always ride
        the DCTCP-family transport (ECN on).
        """
        if not controlled:
            raise ValueError("need at least one controlled flow ordinal")
        bad = [i for i in controlled if not (0 <= i < n_flows)]
        if bad:
            raise ValueError(f"controlled ordinals out of range: {bad}")
        self.protocol = protocol
        self.n_flows = n_flows
        self.rounds = rounds
        self.seed = seed
        self.controlled = tuple(controlled)
        self.policy = policy
        self.tcp_overrides = dict(tcp_overrides or {})
        self.plus_overrides = dict(plus_overrides or {})
        self.incast_overrides = dict(incast_overrides or {})
        self.topology = topology
        self.topo = topo
        self.validate = validate
        self.max_events = max_events

        self.sim: Optional[Simulator] = None
        self.workload: Optional[IncastWorkload] = None
        self._bridges: List[EnvBridgePolicy] = []
        self._bridge_by_flow: Dict[int, EnvBridgePolicy] = {}
        self._pending: Deque[Observation] = deque()
        self._last_obs: Optional[Observation] = None
        self._started = False

    # -- episode lifecycle -------------------------------------------------------
    def reset(self) -> Observation:
        """Build a fresh simulation and run it to the first step boundary."""
        self.close()
        sim = Simulator(seed=self.seed, validate=self.validate, native=False)
        sim.control_active = True
        self.sim = sim
        self._bridges = []
        self._bridge_by_flow = {}
        self._pending = deque()
        self._last_obs = None

        tree = topology_builder(self.topology)(sim, self.topo)
        spec = spec_for(self.protocol, self.tcp_overrides, self.plus_overrides)
        spec.install_network(tree)
        wrapped = _ControlledSpec(spec, self, self.controlled)
        config = IncastConfig(
            n_flows=self.n_flows, n_rounds=self.rounds, **self.incast_overrides
        )
        self.workload = IncastWorkload(sim, tree, wrapped, config)
        for bridge in self._bridges:
            bridge.assembler.watch_queue(tree.bottleneck_port.queue)
        self.workload.start()
        self._started = True
        self._last_obs = self._advance()
        return self._last_obs

    def step(self, action: Optional[Action] = None) -> Observation:
        """Apply ``action`` to the observed flow, resume to the next boundary."""
        if not self._started:
            raise RuntimeError("call reset() before step()")
        last = self._last_obs
        if last is None or last.done:
            raise RuntimeError("episode finished; call reset() for a new one")
        if action is not None:
            self._apply(action, last.flow)
        self._last_obs = self._advance()
        return self._last_obs

    def observe(self) -> Observation:
        """The most recent observation (same object ``reset``/``step`` returned)."""
        if self._last_obs is None:
            raise RuntimeError("no observation yet; call reset() first")
        return self._last_obs

    def close(self) -> None:
        """Tear down the current episode's endpoints (idempotent)."""
        if self.workload is not None:
            self.workload.close()
            self.workload = None
        self.sim = None
        self._started = False

    # -- results -----------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Headline aggregates of the finished (or in-progress) episode."""
        wl = self.workload
        if wl is None:
            raise RuntimeError("no episode; call reset() first")
        return {
            "goodput_mbps": wl.mean_goodput_bps / 1e6,
            "fct_ms": wl.mean_fct_ns / 1e6,
            "timeouts": float(wl.total_timeouts),
            "rounds": float(len(wl.rounds)),
            "bad_rounds": float(sum(1 for r in wl.rounds if r.timeouts > 0)),
        }

    # -- internals ---------------------------------------------------------------
    def _make_controlled_sender(
        self, spec: ProtocolSpec, ordinal, sim, host, dst_node_id, flow_id,
        on_complete, deadline_ns,
    ) -> ExternalPolicySender:
        inner = self._make_inner_policy(spec)
        bridge = EnvBridgePolicy(self, flow=ordinal, inner=inner)
        self._bridges.append(bridge)
        self._bridge_by_flow[ordinal] = bridge
        return ExternalPolicySender(
            sim, host, dst_node_id, flow_id,
            policy=bridge,
            config=spec.tcp_config,
            plus_config=spec.plus_config,
            on_complete=on_complete,
            deadline_ns=deadline_ns,
        )

    def _make_inner_policy(self, spec: ProtocolSpec) -> Optional[ExternalPolicy]:
        if self.policy is not None:
            cls = get_policy(self.policy) if isinstance(self.policy, str) else self.policy
            return cls()
        if spec.is_plus:
            # Mirror the spec's slow_time law so autopilot matches builtin.
            return get_policy("dctcp-plus-scripted")()
        return None  # ExternalPolicy defaults: plain DCTCP

    def _on_window_boundary(self, bridge: EnvBridgePolicy) -> None:
        acked, marked = bridge.take_window()
        self._pending.append(
            bridge.assembler.snapshot(bridge.sender, bridge.flow, acked, marked)
        )
        self.sim.request_stop()

    def _advance(self) -> Observation:
        sim = self.sim
        wl = self.workload
        while not self._pending:
            if wl.finished:
                for bridge in self._bridges:
                    acked, marked = bridge.take_window()
                    self._pending.append(
                        bridge.assembler.snapshot(
                            bridge.sender, bridge.flow, acked, marked, done=True
                        )
                    )
                break
            before = sim.events_processed
            sim.run(stop_when=self._finished, max_events=self.max_events)
            if not self._pending and not wl.finished and sim.events_processed == before:
                raise RuntimeError(
                    "simulation stalled before reaching a step boundary "
                    "(event queue drained or max_events exhausted)"
                )
        return self._pending.popleft()

    def _finished(self) -> bool:
        return self.workload.finished

    def _apply(self, action: Action, flow: int) -> None:
        bridge = self._bridge_by_flow[flow]
        sender = bridge.sender
        target = None
        if action.cwnd_bytes is not None:
            target = float(action.cwnd_bytes)
        elif action.cwnd_scale != 1.0:
            target = sender.cwnd * action.cwnd_scale
        if target is not None:
            sender.cwnd = sender._quantize_down(target, sender.config.min_cwnd_bytes)
        if action.pacing_interval_ns is not None:
            bridge.pacer.interval_ns = int(action.pacing_interval_ns)
