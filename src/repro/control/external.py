"""The sender host for external (scripted / agent-driven) policies.

:class:`ExternalPolicySender` is the one sender class behind every
``external:<policy>`` strategy: a :class:`~repro.tcp.dctcp.DctcpSender`
whose four CC event methods forward to a bound
:class:`~repro.control.policies.ExternalPolicy` instance.  The host owns
the transport machinery (ledger slot, retransmission, DCTCP marked-byte
bookkeeping); the policy owns the decisions.

Construction mirrors the builtin plus-family senders: when the policy
declares ``slow_time``, the plus config's cwnd floor overrides the
transport's *before* the base ``__init__`` runs (so ``min_cwnd_bytes``
is resolved identically to :class:`~repro.core.dctcp_plus.DctcpPlusSender`),
and ``policy.bind`` runs *after* it — the program point where builtin
subclasses create their per-flow machinery, which keeps any RNG stream
draws at identical ``next_sequence`` offsets.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.config import DctcpPlusConfig
from ..metrics.flowstats import FlowStats
from ..net.host import Host
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.dctcp import DctcpSender
from ..tcp.events import CCEvent
from ..tcp.sender import TcpSender
from .policies import ExternalPolicy


class ExternalPolicySender(DctcpSender):
    """DCTCP transport with congestion decisions delegated to a policy."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        policy: ExternalPolicy,
        config: Optional[TcpConfig] = None,
        plus_config: Optional[DctcpPlusConfig] = None,
        stats: Optional[FlowStats] = None,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        deadline_ns: Optional[int] = None,
    ):
        self.policy = policy
        self.plus_config = plus_config or DctcpPlusConfig()
        config = config or TcpConfig()
        if policy.slow_time:
            config = config.with_overrides(min_cwnd_mss=self.plus_config.min_cwnd_mss)
        super().__init__(sim, host, dst_node_id, flow_id, config, stats, on_complete)
        self.deadline_ns = deadline_ns
        policy.bind(self)

    def set_deadline(self, absolute_deadline_ns: Optional[int]) -> None:
        """Set (or clear) the flow's completion deadline (workload hook)."""
        self.deadline_ns = absolute_deadline_ns

    @property
    def deadline_missed(self) -> bool:
        if self.deadline_ns is None:
            return False
        reference = self.stats.completion_time_ns if self.completed else self.sim.now
        return reference > self.deadline_ns

    @property
    def _cwnd_at_floor(self) -> bool:
        # Same semantics as the builtin plus-family senders (the invariant
        # checker's machine hook reads this): timeouts drop cwnd to 1 MSS,
        # below the nominal floor; both count as "at the minimum".
        return self.cwnd <= self.config.min_cwnd_bytes + 1e-6

    # -- CC event surface: forward everything to the policy ----------------------
    def on_ack(self, ev: CCEvent) -> None:
        self.policy.on_ack(self, ev)

    def on_ecn_echo(self, ev: CCEvent) -> None:
        self.policy.on_ecn_echo(self, ev)

    def on_rto(self, ev: CCEvent) -> None:
        self.policy.on_rto(self, ev)

    def on_send_opportunity(self, ev: CCEvent) -> int:
        return self.policy.on_send_opportunity(self, ev)

    def _reduction_penalty(self) -> float:
        return self.policy.reduction_penalty(self)
