"""repro.control — scripted CC policies and the gym-style control env.

Two public surfaces:

- :class:`ExternalPolicy` + the policy registry: congestion-control
  strategies written against the typed :class:`~repro.tcp.events.CCEvent`
  protocol instead of sender subclassing, resolvable everywhere a
  strategy name flows via ``cc="external:<policy>"``.
- :class:`ControlEnv`: a step/observe/act environment that pauses the
  simulation at controlled flows' window boundaries, yields
  :class:`~repro.telemetry.observe.Observation` snapshots and applies
  :class:`Action` adjustments — deterministic, pure-dispatch, and
  byte-identical to the uncontrolled run when every step is autopilot.
"""

from ..telemetry.observe import Observation, ObservationAssembler
from .env import Action, ControlEnv, EnvBridgePolicy
from .external import ExternalPolicySender
from .policies import (
    DctcpPlusScripted,
    DeadlineGreedy,
    ExternalPolicy,
    external_cc,
    get_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "Action",
    "ControlEnv",
    "DctcpPlusScripted",
    "DeadlineGreedy",
    "EnvBridgePolicy",
    "ExternalPolicy",
    "ExternalPolicySender",
    "Observation",
    "ObservationAssembler",
    "external_cc",
    "get_policy",
    "policy_names",
    "register_policy",
]
